//! Tests of the framework extension surface: the additional protocols built on
//! the Safety trait (Fast-HotStuff, LBFT, the OHS baseline) and the
//! leader-election / configuration options beyond the headline evaluation.

use bamboo::core::{RunOptions, SimRunner};
use bamboo::types::config::LeaderPolicy;
use bamboo::types::{Config, NodeId, ProtocolKind, SimDuration};

fn config(nodes: usize) -> Config {
    Config::builder()
        .nodes(nodes)
        .block_size(100)
        .runtime(SimDuration::from_millis(400))
        .arrival_rate(4_000.0)
        .seed(5)
        .build()
        .expect("valid config")
}

#[test]
fn extension_protocols_commit_without_safety_violations() {
    for protocol in [
        ProtocolKind::FastHotStuff,
        ProtocolKind::Lbft,
        ProtocolKind::OriginalHotStuff,
    ] {
        let report = SimRunner::new(config(4), protocol, RunOptions::default()).run();
        assert_eq!(report.safety_violations, 0, "{protocol}");
        assert!(
            report.committed_blocks > 3,
            "{protocol} committed {} blocks",
            report.committed_blocks
        );
    }
}

#[test]
fn ohs_baseline_lands_in_the_same_envelope_as_bamboo_hotstuff() {
    let hs = SimRunner::new(config(4), ProtocolKind::HotStuff, RunOptions::default()).run();
    let ohs = SimRunner::new(
        config(4),
        ProtocolKind::OriginalHotStuff,
        RunOptions::default(),
    )
    .run();
    let tput_ratio = ohs.throughput_tx_per_sec / hs.throughput_tx_per_sec.max(1.0);
    let latency_ratio = ohs.latency.mean_ms / hs.latency.mean_ms.max(1e-9);
    assert!(
        tput_ratio > 0.7 && tput_ratio < 1.3,
        "OHS throughput ratio {tput_ratio}"
    );
    assert!(
        latency_ratio > 0.6 && latency_ratio < 1.6,
        "OHS latency ratio {latency_ratio}"
    );
}

#[test]
fn hashed_leader_election_also_makes_progress() {
    let mut cfg = config(7);
    cfg.leader_policy = LeaderPolicy::Hashed;
    let report = SimRunner::new(cfg, ProtocolKind::HotStuff, RunOptions::default()).run();
    assert_eq!(report.safety_violations, 0);
    assert!(report.committed_blocks > 3);
}

#[test]
fn static_leader_is_supported() {
    let mut cfg = config(4);
    cfg.leader_policy = LeaderPolicy::Static(NodeId(2));
    let report = SimRunner::new(cfg, ProtocolKind::TwoChainHotStuff, RunOptions::default()).run();
    assert_eq!(report.safety_violations, 0);
    assert!(report.committed_blocks > 3);
}

#[test]
fn fast_hotstuff_is_responsive_and_forking_resistant() {
    use bamboo::protocols::make_protocol;
    let fhs = make_protocol(ProtocolKind::FastHotStuff);
    assert!(fhs.is_responsive());
    // Its voting rule leaves the forking attacker no target.
    let forest = bamboo::forest::BlockForest::new();
    assert!(fhs.fork_parent(&forest).is_none());

    let mut cfg = config(8);
    cfg.byzantine_strategy = bamboo::types::ByzantineStrategy::Forking;
    cfg.byz_nodes = 2;
    let report = SimRunner::new(cfg, ProtocolKind::FastHotStuff, RunOptions::default()).run();
    assert_eq!(report.safety_violations, 0);
    assert!(
        report.chain_growth_rate > 0.9,
        "Fast-HotStuff CGR under forking should stay near 1, got {}",
        report.chain_growth_rate
    );
}

#[test]
fn closed_loop_workload_drives_the_system() {
    // No arrival rate -> closed-loop clients with Table-I concurrency.
    let cfg = Config::builder()
        .nodes(4)
        .block_size(20)
        .concurrency(40)
        .runtime(SimDuration::from_millis(400))
        .seed(13)
        .build()
        .expect("valid config");
    let report = SimRunner::new(cfg, ProtocolKind::HotStuff, RunOptions::default()).run();
    assert_eq!(report.safety_violations, 0);
    assert!(
        report.committed_txs > 40,
        "closed loop committed {}",
        report.committed_txs
    );
}

//! Crash-recovery with amnesia: replicas that actually come back.
//!
//! A recovered replica in earlier revisions kept its full pre-crash state —
//! an unrealistically kind failure model. These tests exercise the realistic
//! one: the replica loses everything volatile at the crash and restarts from
//! its latest checkpoint, re-learning the rest of the chain through the
//! state-transfer protocol (SyncRequest/SyncResponse).
//!
//! What must hold, on both deployment backends:
//!
//! * the recovered replica ends the run with a committed chain prefix
//!   identical to the never-crashed honest majority's — reached through
//!   checkpoints and state transfer alone, not through remembered state;
//! * on the simulator this is bit-for-bit deterministic at every engine
//!   thread count, including the recovery metrics;
//! * the run report accounts for the recovery: checkpoints taken, sync
//!   round-trips, bytes moved, and the catch-up time.

use std::time::Duration;

use bamboo::core::{FaultTrigger, NodeFault, RunOptions, RunReport, SimRunner, ThreadedCluster};
use bamboo::types::{Config, NodeId, ProtocolKind, SimDuration, SimTime};

/// An 8-node cluster with checkpointing every 8 blocks — small enough that a
/// mid-run crash leaves the victim several checkpoints behind.
fn config(seed: u64) -> Config {
    Config::builder()
        .nodes(8)
        .block_size(50)
        .runtime(SimDuration::from_millis(200))
        .arrival_rate(4_000.0)
        .timeout(SimDuration::from_millis(20))
        .checkpoint_interval(8)
        .seed(seed)
        .build()
        .expect("valid config")
}

fn amnesia_fault(node: u64, crash_ms: u64, recover_ms: u64) -> NodeFault {
    NodeFault {
        node: NodeId(node),
        crash: FaultTrigger::At(SimTime(crash_ms * 1_000_000)),
        recover: Some(FaultTrigger::At(SimTime(recover_ms * 1_000_000))),
        amnesia: true,
        durable: false,
        storage_fault: None,
    }
}

fn run(seed: u64, faults: Vec<NodeFault>, threads: usize) -> RunReport {
    SimRunner::new(
        config(seed),
        ProtocolKind::HotStuff,
        RunOptions {
            node_faults: faults,
            threads,
            ..RunOptions::default()
        },
    )
    .run()
}

#[test]
fn amnesia_recovered_replica_rejoins_the_honest_chain() {
    let report = run(7, vec![amnesia_fault(2, 60, 120)], 1);
    assert_eq!(report.safety_violations, 0);
    assert!(report.committed_txs > 0, "cluster committed nothing");

    let recovery = report.recovery;
    assert_eq!(recovery.amnesia_recoveries, 1);
    assert!(
        recovery.recovered_caught_up,
        "node 2 restarted from its checkpoint but never matched the \
         never-crashed majority's committed prefix: {recovery:?}"
    );
    assert!(recovery.checkpoints_taken > 0, "no checkpoints were cut");
    assert!(
        recovery.sync_requests > 0,
        "no state transfer was requested"
    );
    assert!(recovery.sync_responses > 0, "no state transfer was served");
    assert!(recovery.sync_bytes > 0, "no sync bytes moved");
    assert!(
        recovery.blocks_synced > 0,
        "the recovered node re-learned no blocks: {recovery:?}"
    );
    assert!(
        recovery.recovery_time_ms > 0.0,
        "catch-up cannot be instantaneous: {recovery:?}"
    );
}

/// The crash leaves the victim far enough behind (its checkpoint predates
/// the serving replica's) that catch-up must go through a full snapshot
/// install, not just a ledger suffix.
#[test]
fn deep_amnesia_recovery_installs_a_snapshot() {
    let report = run(42, vec![amnesia_fault(3, 40, 160)], 1);
    assert_eq!(report.safety_violations, 0);
    let recovery = report.recovery;
    assert!(recovery.recovered_caught_up, "{recovery:?}");
    assert!(
        recovery.snapshots_installed > 0,
        "a 120 ms gap with 8-block checkpoints must transfer a snapshot: {recovery:?}"
    );
}

/// Layout invariance extends to recovery: the ledger fingerprint *and* every
/// recovery counter must be identical at 1, 2 and 4 engine shards.
#[test]
fn amnesia_recovery_is_deterministic_at_every_thread_count() {
    for seed in [7u64, 42, 2021] {
        let base = run(seed, vec![amnesia_fault(2, 60, 120)], 1);
        assert!(
            base.recovery.amnesia_recoveries == 1 && base.recovery.recovered_caught_up,
            "seed {seed}: baseline recovery failed — the comparison would be \
             vacuous: {:?}",
            base.recovery
        );
        for threads in [2usize, 4] {
            let sharded = run(seed, vec![amnesia_fault(2, 60, 120)], threads);
            let label = format!("seed={seed} threads={threads}");
            assert_eq!(
                base.ledger_fingerprint, sharded.ledger_fingerprint,
                "{label}: ledger diverged"
            );
            assert_eq!(base.committed_txs, sharded.committed_txs, "{label}");
            assert_eq!(base.events_processed, sharded.events_processed, "{label}");
            assert_eq!(base.messages_sent, sharded.messages_sent, "{label}");
            assert_eq!(
                base.recovery, sharded.recovery,
                "{label}: recovery diverged"
            );
        }
    }
}

/// Control experiment: with no crash, the sync machinery must stay silent —
/// no requests, no checkpoint-driven behaviour change beyond taking them.
#[test]
fn healthy_runs_never_invoke_state_transfer() {
    let report = run(7, Vec::new(), 1);
    assert_eq!(report.safety_violations, 0);
    let recovery = report.recovery;
    assert_eq!(recovery.amnesia_recoveries, 0);
    assert_eq!(recovery.sync_requests, 0, "{recovery:?}");
    assert_eq!(recovery.sync_responses, 0, "{recovery:?}");
    assert_eq!(recovery.snapshots_installed, 0, "{recovery:?}");
    assert!(recovery.recovered_caught_up, "vacuously true");
    assert!(recovery.checkpoints_taken > 0, "checkpointing was on");
}

/// The same failure model on the live threaded cluster: crash a replica,
/// let the survivors extend the chain, bring the victim back with amnesia,
/// and check it re-joins through state transfer with a matching prefix.
#[test]
fn threaded_cluster_amnesia_recovery_rejoins_with_a_matching_prefix() {
    let config = Config::builder()
        .nodes(4)
        .block_size(50)
        .payload_size(16)
        .timeout(SimDuration::from_millis(50))
        .runtime(SimDuration::from_millis(300))
        .checkpoint_interval(4)
        .seed(2024)
        .build()
        .expect("valid config");
    let victim = NodeId(2);

    let cluster = ThreadedCluster::spawn(config, ProtocolKind::HotStuff);
    cluster.submit_round_robin(600, 16);
    assert!(
        cluster.run_until_committed(50, Duration::from_secs(20)),
        "cluster never got off the ground ({} txs)",
        cluster.committed_txs()
    );

    cluster.crash(victim);
    let at_crash = cluster.committed_txs();
    cluster.submit_round_robin(600, 16);
    // The 3 survivors are exactly a quorum of 4: the chain keeps growing
    // while the victim is down, so it genuinely has something to re-learn.
    assert!(
        cluster.run_until_committed(at_crash + 100, Duration::from_secs(20)),
        "survivors stalled after the crash ({} txs)",
        cluster.committed_txs()
    );

    cluster.recover(victim, true);
    cluster.submit_round_robin(600, 16);
    let at_recovery = cluster.committed_txs();
    assert!(
        cluster.run_until_committed(at_recovery + 100, Duration::from_secs(20)),
        "cluster stalled after the recovery ({} txs)",
        cluster.committed_txs()
    );
    // Wall-clock slack for the victim's final sync round-trips to land.
    cluster.run_for(Duration::from_millis(500));

    let (report, hosts) = cluster.shutdown_with_hosts();
    assert_eq!(report.safety_violations, 0);
    assert!(report.ledgers_consistent, "honest ledgers diverged");

    let recovered = hosts[victim.index()].replica();
    let stats = recovered.recovery_stats();
    assert!(stats.restarted_at.is_some(), "the victim never restarted");
    assert!(stats.sync_requests_sent > 0, "{stats:?}");
    assert!(
        stats.blocks_synced > 0 || stats.snapshots_installed > 0,
        "recovery moved no state: {stats:?}"
    );
    // Prefix agreement against a never-crashed replica. The threaded runtime
    // is wall-clock, so the exact lengths at shutdown are scheduling-
    // dependent — but the shared prefix must match block for block, and the
    // victim must have rebuilt a nontrivial chain from an empty start.
    let reference = hosts[0].replica().ledger();
    let shared = recovered.ledger().len().min(reference.len());
    assert!(
        shared > 0,
        "the recovered replica rebuilt nothing (recovered {} / reference {})",
        recovered.ledger().len(),
        reference.len()
    );
    assert_eq!(
        recovered.ledger().chain_fingerprint_prefix(shared),
        reference.chain_fingerprint_prefix(shared),
        "recovered replica's chain prefix diverged from the reference"
    );
}

//! Cross-validation between the analytical model and the simulator — the
//! repository-level version of the paper's Fig. 8 check.

use bamboo::core::{Benchmarker, RunOptions};
use bamboo::model::{ModelParams, PerfModel};
use bamboo::types::{Block, Config, ProtocolKind, SimDuration, Transaction};

fn eval_config(nodes: usize, block_size: usize) -> Config {
    Config::builder()
        .nodes(nodes)
        .block_size(block_size)
        .payload_size(0)
        .runtime(SimDuration::from_millis(400))
        .seed(42)
        .build()
        .expect("valid config")
}

fn model_params(config: &Config) -> ModelParams {
    ModelParams {
        nodes: config.nodes,
        block_size: config.block_size,
        tx_bytes: Transaction::HEADER_BYTES + config.payload_size,
        block_overhead_bytes: Block::HEADER_BYTES + 40 + 40 * config.quorum(),
        link_mean: config.link_latency_mean.as_secs_f64(),
        link_std: config.link_latency_std.as_secs_f64(),
        client_rtt: 2.0 * config.link_latency_mean.as_secs_f64(),
        t_cpu: config.cpu_delay.as_secs_f64(),
        bandwidth: config.bandwidth_bytes_per_sec as f64,
    }
}

#[test]
fn model_and_simulation_agree_on_unloaded_latency_within_a_small_factor() {
    // Low load: the queueing term is negligible and latency should be close to
    // t_L + t_s + t_commit. The band is deliberately loose (a factor of five) —
    // the paper's claim is that the model gives a back-of-the-envelope
    // estimate, and the model ignores the wait for a transaction's replica to
    // rotate into leadership, which grows with N.
    for (nodes, bsize) in [(4usize, 100usize), (4, 400), (8, 400)] {
        let config = eval_config(nodes, bsize);
        for protocol in ProtocolKind::evaluated() {
            let model = PerfModel::new(protocol, model_params(&config));
            // Streamlet's broadcast-and-echo traffic saturates the real system
            // far earlier than the model's happy-path service time predicts
            // (the paper absorbs this into re-measured parameters, §V-E), so
            // probe it at a load that is low for both model and simulator.
            let rate = if protocol == ProtocolKind::Streamlet {
                (model.saturation_rate() * 0.2).min(20_000.0)
            } else {
                model.saturation_rate() * 0.2
            };
            let report =
                Benchmarker::new(config.clone(), protocol, RunOptions::default()).run_at(rate);
            let predicted_ms = model.latency(rate) * 1e3;
            let measured_ms = report.latency.mean_ms;
            // Streamlet's broadcast-and-echo traffic is only captured by the
            // model through re-measured parameters (§V-E), so for SL we only
            // require the model to be a sane lower bound.
            let upper_factor = if protocol == ProtocolKind::Streamlet {
                10.0
            } else {
                5.0
            };
            assert!(
                measured_ms < predicted_ms * upper_factor && measured_ms > predicted_ms / 5.0,
                "{protocol} {nodes}/{bsize}: measured {measured_ms:.2} ms vs model {predicted_ms:.2} ms"
            );
        }
    }
}

#[test]
fn model_predicts_relative_latency_ordering_of_the_protocols() {
    let config = eval_config(4, 400);
    let params = model_params(&config);
    let hs = PerfModel::new(ProtocolKind::HotStuff, params);
    let two = PerfModel::new(ProtocolKind::TwoChainHotStuff, params);
    // The model predicts 2CHS is one service time faster than HS.
    assert!(two.latency(1_000.0) < hs.latency(1_000.0));

    // The simulator must show the same ordering.
    let hs_report = Benchmarker::new(
        config.clone(),
        ProtocolKind::HotStuff,
        RunOptions::default(),
    )
    .run_at(5_000.0);
    let two_report = Benchmarker::new(
        config,
        ProtocolKind::TwoChainHotStuff,
        RunOptions::default(),
    )
    .run_at(5_000.0);
    assert!(two_report.latency.mean_ms < hs_report.latency.mean_ms);
}

#[test]
fn throughput_tracks_arrival_rate_below_saturation_as_in_table_two() {
    let config = eval_config(4, 400);
    let bench = Benchmarker::new(config, ProtocolKind::HotStuff, RunOptions::default());
    for rate in [10_000.0, 30_000.0, 60_000.0] {
        let report = bench.run_at(rate);
        let error = (report.throughput_tx_per_sec - rate).abs() / rate;
        assert!(
            error < 0.15,
            "throughput {} should track arrival rate {rate} (error {:.1}%)",
            report.throughput_tx_per_sec,
            error * 100.0
        );
    }
}

#[test]
fn model_saturation_rate_brackets_simulated_peak_throughput() {
    let config = eval_config(4, 400);
    let model = PerfModel::new(ProtocolKind::HotStuff, model_params(&config));
    let saturation = model.saturation_rate();
    let bench = Benchmarker::new(config, ProtocolKind::HotStuff, RunOptions::default());
    // Well above the modelled saturation point the simulator must commit fewer
    // transactions than offered (i.e. it has indeed saturated).
    let report = bench.run_at(saturation * 3.0);
    assert!(
        report.throughput_tx_per_sec < saturation * 3.0 * 0.9,
        "simulator did not saturate: {} tx/s at offered {}",
        report.throughput_tx_per_sec,
        saturation * 3.0
    );
}

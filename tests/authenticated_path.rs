//! Cross-runtime tests of the authenticated message path.
//!
//! A Byzantine replica floods forged votes / forged quorum certificates at
//! the cluster, on both deployment backends. Every forgery must die at the
//! ingress stage (the `Authenticator` in `NodeHost` for the simulator and
//! the inline threaded mode, the `VerifyPool` workers for the default
//! threaded mode), honest ledgers must stay consistent, and commit
//! throughput must stay within tolerance of the honest baseline — the
//! attack buys the adversary nothing but wasted bandwidth.

use std::time::Duration;

use bamboo_core::{
    BufferedTransport, NodeHost, ReplicaEvent, ReplicaOptions, RunOptions, SimRunner,
    ThreadedCluster,
};
use bamboo_crypto::{AggregateSignature, KeyPair};
use bamboo_types::{
    BlockId, ByzantineStrategy, Config, Message, NodeId, ProtocolKind, QuorumCert, SimDuration,
    SimTime, View, Vote,
};

fn sim_config(strategy: ByzantineStrategy, byz: usize) -> Config {
    let mut config = Config::builder()
        .nodes(4)
        .block_size(100)
        .runtime(SimDuration::from_millis(400))
        .arrival_rate(2_000.0)
        .timeout(SimDuration::from_millis(20))
        .seed(11)
        .build()
        .unwrap();
    config.byzantine_strategy = strategy;
    config.byz_nodes = byz;
    config
}

#[test]
fn sim_forged_vote_flood_is_rejected_and_throughput_holds() {
    let honest = SimRunner::new(
        sim_config(ByzantineStrategy::Honest, 0),
        ProtocolKind::HotStuff,
        RunOptions::default(),
    )
    .run();
    assert_eq!(honest.rejected_messages, 0, "honest runs reject nothing");
    assert!(honest.committed_txs > 0);

    let attacked = SimRunner::new(
        sim_config(ByzantineStrategy::ForgedVote, 1),
        ProtocolKind::HotStuff,
        RunOptions::default(),
    )
    .run();
    assert!(
        attacked.rejected_messages > 0,
        "the flood must be observed and rejected"
    );
    assert_eq!(attacked.safety_violations, 0);
    assert!(
        attacked.committed_txs * 2 >= honest.committed_txs,
        "forged votes must not halve throughput: attacked {} vs honest {}",
        attacked.committed_txs,
        honest.committed_txs
    );
}

#[test]
fn sim_forged_qc_proposals_are_rejected_without_safety_impact() {
    let attacked = SimRunner::new(
        sim_config(ByzantineStrategy::ForgedQc, 1),
        ProtocolKind::HotStuff,
        RunOptions::default(),
    )
    .run();
    assert!(
        attacked.rejected_messages > 0,
        "forged-QC proposals must be rejected at ingress"
    );
    assert_eq!(attacked.safety_violations, 0);
    assert!(
        attacked.committed_txs > 0,
        "honest replicas keep committing around the attacker"
    );
    assert!(
        attacked.timeout_view_changes > 0,
        "the attacker's leadership views can only end by timeout"
    );
}

#[test]
fn sim_streamlet_rejects_forged_vote_broadcasts() {
    // Streamlet broadcasts (and echoes) votes, so the flood hits every
    // replica instead of just the next leader.
    let attacked = SimRunner::new(
        sim_config(ByzantineStrategy::ForgedVote, 1),
        ProtocolKind::Streamlet,
        RunOptions::default(),
    )
    .run();
    assert!(attacked.rejected_messages > 0);
    assert_eq!(attacked.safety_violations, 0);
    assert!(attacked.committed_txs > 0);
}

fn threaded_config() -> Config {
    let mut config = Config::builder()
        .nodes(4)
        .block_size(20)
        .timeout(SimDuration::from_millis(50))
        .build()
        .unwrap();
    config.byzantine_strategy = ByzantineStrategy::ForgedVote;
    config.byz_nodes = 1;
    config
}

#[test]
fn threaded_pool_rejects_forged_vote_flood() {
    let cluster = ThreadedCluster::spawn(threaded_config(), ProtocolKind::HotStuff);
    cluster.submit_round_robin(400, 16);
    assert!(
        cluster.run_until_committed(40, Duration::from_secs(20)),
        "cluster committed {} txs before the deadline",
        cluster.committed_txs()
    );
    let report = cluster.shutdown();
    assert!(
        report.auth_rejections > 0,
        "the verify pool must observe and reject the flood"
    );
    assert!(report.ledgers_consistent);
    assert_eq!(report.safety_violations, 0);
}

#[test]
fn threaded_inline_mode_rejects_forged_vote_flood() {
    // Zero verify workers: each replica thread authenticates inbound
    // messages inline on the consensus thread — same guarantee, different
    // placement of the work.
    let cluster =
        ThreadedCluster::spawn_with_verify_workers(threaded_config(), ProtocolKind::HotStuff, 0);
    cluster.submit_round_robin(400, 16);
    assert!(
        cluster.run_until_committed(40, Duration::from_secs(20)),
        "cluster committed {} txs before the deadline",
        cluster.committed_txs()
    );
    let report = cluster.shutdown();
    assert!(report.auth_rejections > 0, "inline ingress must reject");
    assert!(report.ledgers_consistent);
    assert_eq!(report.safety_violations, 0);
}

#[test]
fn threaded_honest_cluster_rejects_nothing() {
    let config = Config::builder()
        .nodes(4)
        .block_size(20)
        .timeout(SimDuration::from_millis(50))
        .build()
        .unwrap();
    let cluster = ThreadedCluster::spawn(config, ProtocolKind::HotStuff);
    cluster.submit_round_robin(200, 16);
    assert!(cluster.run_until_committed(40, Duration::from_secs(20)));
    let report = cluster.shutdown();
    assert_eq!(report.auth_rejections, 0);
    assert!(report.ledgers_consistent);
    assert_eq!(report.safety_violations, 0);
}

/// Transport-level injection: forged messages fed straight into a host never
/// reach the replica state machine, on any backend that drives `NodeHost`.
#[test]
fn transport_level_forgeries_never_reach_the_replica() {
    let config = Config::builder().nodes(4).block_size(10).build().unwrap();
    // Node 3 is a follower in view 1.
    let mut host = NodeHost::new(
        NodeId(3),
        ProtocolKind::HotStuff,
        config,
        ReplicaOptions::default(),
    );
    let mut transport = BufferedTransport::new();
    host.start(SimTime::ZERO, &mut transport);
    assert_eq!(host.replica().current_view(), View(1));
    let block = BlockId(bamboo_crypto::Digest::of(b"target"));

    // 1. A vote carrying a signature minted with the wrong key.
    let forged_vote = Vote::new(block, View(1), NodeId(1), &KeyPair::from_seed(2));
    let report = host.handle(
        ReplicaEvent::Message {
            from: NodeId(1),
            message: Message::Vote(forged_vote),
        },
        SimTime(1_000),
        &mut transport,
    );
    assert_eq!(host.auth_rejections(), 1);
    assert!(
        report.cpu > SimDuration::ZERO,
        "discovering a forgery costs modeled CPU"
    );

    // 2. A sub-quorum aggregate: two genuine signatures where three are
    // required.
    let votes: Vec<Vote> = (0..2)
        .map(|i| Vote::new(block, View(5), NodeId(i), &KeyPair::from_seed(i)))
        .collect();
    let sub_quorum = QuorumCert::from_votes(block, View(5), &votes);
    host.handle(
        ReplicaEvent::Message {
            from: NodeId(1),
            message: Message::NewView(sub_quorum),
        },
        SimTime(2_000),
        &mut transport,
    );
    assert_eq!(host.auth_rejections(), 2);

    // 3. A full-quorum QC whose signatures were all minted by a key outside
    // the validator set. If this were accepted the replica would jump to
    // view 6; it must stay in view 1.
    let junk = KeyPair::from_seed(u64::MAX);
    let mut signatures = AggregateSignature::new();
    let msg = Vote::signing_bytes(block, View(5));
    for i in 0..3u64 {
        signatures.add(i, junk.sign(&msg));
    }
    let forged_qc = QuorumCert {
        block,
        view: View(5),
        signatures,
    };
    host.handle(
        ReplicaEvent::Message {
            from: NodeId(1),
            message: Message::NewView(forged_qc),
        },
        SimTime(3_000),
        &mut transport,
    );
    assert_eq!(host.auth_rejections(), 3);
    assert_eq!(
        host.replica().current_view(),
        View(1),
        "a forged QC must not advance the view"
    );

    // 4. A genuine vote sails through and does not bump the counter.
    let honest_vote = Vote::new(block, View(1), NodeId(1), &KeyPair::from_seed(1));
    host.handle(
        ReplicaEvent::Message {
            from: NodeId(1),
            message: Message::Vote(honest_vote),
        },
        SimTime(4_000),
        &mut transport,
    );
    assert_eq!(host.auth_rejections(), 3, "honest traffic is not rejected");
}

/// The deterministic simulator with inline verification stays deterministic:
/// two identical attacked runs commit identical ledgers and reject the same
/// number of forgeries.
#[test]
fn attacked_sim_runs_are_deterministic() {
    let run = |seed: u64| {
        let mut config = sim_config(ByzantineStrategy::ForgedVote, 1);
        config.seed = seed;
        SimRunner::new(config, ProtocolKind::HotStuff, RunOptions::default()).run()
    };
    let a = run(7);
    let b = run(7);
    assert_eq!(a.committed_txs, b.committed_txs);
    assert_eq!(a.committed_blocks, b.committed_blocks);
    assert_eq!(a.rejected_messages, b.rejected_messages);
    assert_eq!(a.views_advanced, b.views_advanced);
}

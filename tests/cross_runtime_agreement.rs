//! Cross-runtime agreement: the same configuration driven through both
//! deployment backends — the deterministic simulator and the live threaded
//! cluster — must preserve safety for every protocol kind.
//!
//! Both backends drive the identical `Replica` state machine through the
//! shared `runtime`/`Transport` layer, so any divergence here points at a
//! backend bug, not a protocol bug.

use std::time::Duration;

use bamboo::core::{
    BufferedTransport, NodeHost, ReplicaEvent, ReplicaOptions, RunOptions, SimRunner,
    ThreadedCluster,
};
use bamboo::types::{
    Config, Message, NodeId, ProtocolKind, SharedBlock, SimDuration, SimTime, Transaction,
};

const ALL_PROTOCOLS: [ProtocolKind; 6] = [
    ProtocolKind::HotStuff,
    ProtocolKind::TwoChainHotStuff,
    ProtocolKind::Streamlet,
    ProtocolKind::FastHotStuff,
    ProtocolKind::Lbft,
    ProtocolKind::OriginalHotStuff,
];

fn shared_config() -> Config {
    Config::builder()
        .nodes(4)
        .block_size(50)
        .payload_size(16)
        .timeout(SimDuration::from_millis(50))
        .runtime(SimDuration::from_millis(300))
        .seed(2024)
        .build()
        .expect("valid config")
}

#[test]
fn every_protocol_is_safe_on_the_simulator() {
    for protocol in ALL_PROTOCOLS {
        let mut config = shared_config();
        config.arrival_rate = Some(3_000.0);
        let report = SimRunner::new(config, protocol, RunOptions::default()).run();
        assert_eq!(
            report.safety_violations, 0,
            "{protocol} violated safety on the simulator"
        );
        assert!(
            report.committed_blocks > 0,
            "{protocol} committed nothing on the simulator"
        );
    }
}

#[test]
fn every_protocol_is_safe_on_the_threaded_cluster() {
    for protocol in ALL_PROTOCOLS {
        let cluster = ThreadedCluster::spawn(shared_config(), protocol);
        cluster.submit_round_robin(600, 16);
        // Poll for observed commits rather than sleeping a fixed window so
        // the test does not flake on loaded CI runners.
        assert!(
            cluster.run_until_committed(50, Duration::from_secs(20)),
            "{protocol} committed only {} txs before the deadline",
            cluster.committed_txs()
        );
        let report = cluster.shutdown();
        assert_eq!(
            report.safety_violations, 0,
            "{protocol} violated safety on the threaded cluster"
        );
        assert!(
            report.ledgers_consistent,
            "{protocol} honest ledgers diverged on the threaded cluster"
        );
        assert!(
            report.max_view > 1,
            "{protocol} made no progress on the threaded cluster"
        );
        assert!(
            report.committed_blocks.iter().any(|&c| c > 0),
            "{protocol} committed nothing on the threaded cluster: {:?}",
            report.committed_blocks
        );
    }
}

/// A configuration with paper-scale proposals (block_size >= 400): every
/// committed block moves a payload of tens of kilobytes, which is exactly the
/// regime the zero-copy (Arc-backed) message path exists for. Any payload
/// truncation or aliasing bug in that path shows up here as a safety
/// violation, a ledger divergence, or missing transactions.
fn large_payload_config() -> Config {
    Config::builder()
        .nodes(4)
        .block_size(400)
        .payload_size(128)
        .timeout(SimDuration::from_millis(50))
        .runtime(SimDuration::from_millis(300))
        .seed(77)
        .build()
        .expect("valid config")
}

#[test]
fn large_payload_blocks_are_safe_on_the_simulator() {
    for protocol in ALL_PROTOCOLS {
        let mut config = large_payload_config();
        config.arrival_rate = Some(20_000.0);
        let report = SimRunner::new(config, protocol, RunOptions::default()).run();
        assert_eq!(
            report.safety_violations, 0,
            "{protocol} violated safety with 400-tx blocks on the simulator"
        );
        assert!(
            report.committed_txs > 0,
            "{protocol} committed nothing with 400-tx blocks on the simulator"
        );
    }
}

#[test]
fn large_payload_blocks_are_safe_on_the_threaded_cluster() {
    for protocol in ALL_PROTOCOLS {
        let cluster = ThreadedCluster::spawn(large_payload_config(), protocol);
        cluster.submit_round_robin(4_000, 128);
        assert!(
            cluster.run_until_committed(400, Duration::from_secs(20)),
            "{protocol} committed only {} txs before the deadline",
            cluster.committed_txs()
        );
        let report = cluster.shutdown();
        assert_eq!(
            report.safety_violations, 0,
            "{protocol} violated safety with 400-tx blocks on the threaded cluster"
        );
        assert!(
            report.ledgers_consistent,
            "{protocol} honest ledgers diverged with 400-tx blocks"
        );
    }
}

#[test]
fn broadcast_proposal_shares_its_allocation_with_the_forest() {
    // Drive a leader replica directly and check the zero-copy invariant: the
    // block inside the broadcast `Message::Proposal` and the block stored in
    // the leader's own forest are the *same allocation*, with the payload
    // fully intact — not a truncated or re-serialised copy.
    let config = large_payload_config();
    let mut host = NodeHost::new(
        NodeId(1), // node 1 leads view 1
        ProtocolKind::HotStuff,
        config,
        ReplicaOptions::default(),
    );
    let txs: Vec<Transaction> = (0..400)
        .map(|i| Transaction::new(NodeId(9), i, 128, SimTime::ZERO))
        .collect();
    let mut transport = BufferedTransport::new();
    host.handle(
        ReplicaEvent::ClientRequests(txs.clone()),
        SimTime::ZERO,
        &mut transport,
    );
    host.start(SimTime::ZERO, &mut transport);

    let proposal: &SharedBlock = transport
        .sends
        .iter()
        .find_map(|(to, message)| match (to, message.as_ref()) {
            (None, Message::Proposal(block)) => Some(block),
            _ => None,
        })
        .expect("leader broadcast a proposal");
    assert_eq!(proposal.payload.len(), 400, "payload not truncated");
    assert!(proposal.verify_id(), "payload binds to the block id");
    assert_eq!(proposal.payload, txs, "payload survives untouched");

    let stored = host
        .replica()
        .forest()
        .get_shared(proposal.id)
        .expect("leader stored its own proposal");
    assert!(
        SharedBlock::ptr_eq(proposal, stored),
        "broadcast and forest must share one allocation (zero-copy)"
    );
}

#[test]
fn both_backends_commit_comparable_work_for_hotstuff() {
    // Not a performance assertion — wall-clock and simulated time are not
    // comparable — but both backends must actually order transactions under
    // the same configuration.
    let mut sim_config = shared_config();
    sim_config.arrival_rate = Some(3_000.0);
    let sim = SimRunner::new(sim_config, ProtocolKind::HotStuff, RunOptions::default()).run();
    assert!(sim.committed_txs > 0, "simulator committed nothing");

    let cluster = ThreadedCluster::spawn(shared_config(), ProtocolKind::HotStuff);
    cluster.submit_round_robin(600, 16);
    assert!(
        cluster.run_until_committed(1, Duration::from_secs(20)),
        "threaded cluster committed nothing"
    );
    let report = cluster.shutdown();
    assert!(
        report.committed_txs > 0,
        "threaded cluster committed nothing"
    );
}

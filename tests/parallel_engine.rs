//! Layout-invariance property test for the window-barrier sharded engine.
//!
//! The determinism claim of the parallel engine is *exact*: for any thread
//! count, the simulation commits the same ledgers, processes the same events
//! and reports the same RNG-sensitive metrics as the inline `threads = 1`
//! run. This suite sweeps the full protocol matrix — all six protocol kinds,
//! three seeds, a homogeneous LAN-ish network and a heterogeneous geo-WAN
//! topology — and asserts equality at 2, 4 and 8 shards on every
//! layout-invariant report field:
//!
//! * `ledger_fingerprint` (every block id, view, commit time, payload tx id),
//! * `committed_txs` / `committed_blocks`,
//! * `events_processed` / `events_scheduled` / `messages_sent`,
//! * mean commit latency (a direct function of the RNG draw sequence).
//!
//! `queue_peak_len` is deliberately **not** compared: the per-shard queue
//! high-water marks depend on how replicas are partitioned, so its sum is
//! layout-dependent by construction (the report documents this).

use bamboo::core::{RunOptions, RunReport, SimRunner};
use bamboo::sim::{DelayDist, Topology};
use bamboo::types::{Config, NodeId, ProtocolKind, SimDuration};

const PROTOCOLS: [ProtocolKind; 6] = [
    ProtocolKind::HotStuff,
    ProtocolKind::TwoChainHotStuff,
    ProtocolKind::Streamlet,
    ProtocolKind::FastHotStuff,
    ProtocolKind::Lbft,
    ProtocolKind::OriginalHotStuff,
];

const SEEDS: [u64; 3] = [7, 42, 2021];

fn config(seed: u64) -> Config {
    Config::builder()
        .nodes(8)
        .block_size(50)
        .runtime(SimDuration::from_millis(100))
        .arrival_rate(4_000.0)
        .seed(seed)
        .build()
        .expect("valid config")
}

/// A small two-region WAN: intra-region links at the default latency,
/// cross-region links an order of magnitude slower — enough heterogeneity to
/// give the lookahead window a nontrivial minimum across link classes.
fn geo_wan_topology() -> Topology {
    let us = SimDuration::from_micros;
    let mut topo = Topology::new(DelayDist::new(us(250), us(50)));
    let west = topo.add_region(
        "west",
        (0..4u64).collect::<Vec<_>>(),
        DelayDist::new(us(200), us(30)),
    );
    let east = topo.add_region(
        "east",
        (4..8u64).collect::<Vec<_>>(),
        DelayDist::new(us(300), us(40)),
    );
    topo.set_inter(
        west,
        east,
        DelayDist::new(SimDuration::from_millis(3), us(400)),
    );
    topo.symmetrize();
    topo
}

fn run(protocol: ProtocolKind, seed: u64, geo: bool, threads: usize) -> RunReport {
    let options = RunOptions {
        topology: geo.then(geo_wan_topology),
        threads,
        ..RunOptions::default()
    };
    SimRunner::new(config(seed), protocol, options).run()
}

fn assert_layout_invariant(base: &RunReport, sharded: &RunReport, label: &str) {
    assert_eq!(
        base.ledger_fingerprint, sharded.ledger_fingerprint,
        "{label}: ledger diverged"
    );
    assert_eq!(base.committed_txs, sharded.committed_txs, "{label}");
    assert_eq!(base.committed_blocks, sharded.committed_blocks, "{label}");
    assert_eq!(base.events_processed, sharded.events_processed, "{label}");
    assert_eq!(base.events_scheduled, sharded.events_scheduled, "{label}");
    assert_eq!(base.messages_sent, sharded.messages_sent, "{label}");
    assert_eq!(base.bytes_sent, sharded.bytes_sent, "{label}");
    assert_eq!(base.views_advanced, sharded.views_advanced, "{label}");
    assert!(
        (base.latency.mean_ms - sharded.latency.mean_ms).abs() < 1e-12,
        "{label}: latency diverged ({} vs {})",
        base.latency.mean_ms,
        sharded.latency.mean_ms
    );
    assert_eq!(base.safety_violations, 0, "{label}");
    assert_eq!(sharded.threads, sharded.threads.max(1), "{label}");
}

fn sweep(geo: bool) {
    for protocol in PROTOCOLS {
        for seed in SEEDS {
            let base = run(protocol, seed, geo, 1);
            assert!(
                base.committed_txs > 0,
                "{protocol} seed {seed}: baseline committed nothing — the \
                 comparison would be vacuous"
            );
            for threads in [2usize, 4, 8] {
                let sharded = run(protocol, seed, geo, threads);
                let label = format!("{protocol} seed={seed} geo={geo} threads={threads}");
                assert_layout_invariant(&base, &sharded, &label);
            }
        }
    }
}

#[test]
fn uniform_network_runs_are_identical_across_thread_counts() {
    sweep(false);
}

#[test]
fn geo_wan_runs_are_identical_across_thread_counts() {
    sweep(true);
}

/// Crash-fault runs shard too: time-triggered crashes land in the owning
/// shard's queue and view-triggered ones resolve at barriers, so faulty
/// configurations must stay layout-invariant as well.
#[test]
fn crash_faulted_runs_are_identical_across_thread_counts() {
    use bamboo::core::{FaultTrigger, NodeFault};
    use bamboo::types::SimTime;

    let faults = vec![NodeFault {
        node: NodeId(2),
        crash: FaultTrigger::At(SimTime(30_000_000)),
        recover: Some(FaultTrigger::At(SimTime(70_000_000))),
        amnesia: false,
        durable: false,
        storage_fault: None,
    }];
    let mut cfg = config(7);
    cfg.timeout = SimDuration::from_millis(20);
    let base = SimRunner::new(
        cfg.clone(),
        ProtocolKind::HotStuff,
        RunOptions {
            node_faults: faults.clone(),
            ..RunOptions::default()
        },
    )
    .run();
    for threads in [2usize, 4, 8] {
        let sharded = SimRunner::new(
            cfg.clone(),
            ProtocolKind::HotStuff,
            RunOptions {
                node_faults: faults.clone(),
                threads,
                ..RunOptions::default()
            },
        )
        .run();
        assert_layout_invariant(&base, &sharded, &format!("crash-fault threads={threads}"));
    }
}

//! Scenario replay: the shipped scenario library is deterministic and its
//! results are pinned.
//!
//! Three named scenarios (`lan`, `geo_wan`, `crash_f`) are parsed from the
//! actual `scenarios/*.json` files, executed at the quick tier, and their
//! ledger fingerprints compared byte-for-byte against recorded values — any
//! engine, protocol or spec change that shifts scheduling shows up here
//! first (update the constants deliberately when the change is intended; to
//! re-record run `GOLDEN_DUMP=1 cargo test --test scenario_replay -- --nocapture`).
//! The pins were recorded from the window-barrier sharded engine (PR 6) at
//! `threads = 1`; every other thread count reproduces them bit-for-bit.
//! The same configurations are also driven through the live threaded
//! cluster, which must stay safe on the heterogeneous-WAN workload too.
//!
//! The geo-WAN scenario is additionally held to the orderings the paper and
//! the responsiveness literature predict: 2CHS commits with lower latency
//! than HS (one chained round less), and heterogeneous delays degrade
//! Streamlet — whose synchronous epochs must be provisioned for the worst
//! link — more than (responsive) HotStuff.

use std::path::PathBuf;
use std::time::Duration;

use bamboo::core::{Scenario, ScenarioReport, ThreadedCluster};
use bamboo::types::ProtocolKind;

fn load(name: &str) -> Scenario {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("scenarios")
        .join(format!("{name}.json"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    Scenario::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"))
}

fn run_quick(name: &str) -> ScenarioReport {
    let report = load(name).run(true);
    assert!(
        report.passed(),
        "{name} failed at the quick tier: {:?}",
        report.failures
    );
    report
}

fn fingerprint(report: &ScenarioReport, protocol: ProtocolKind) -> &str {
    &report
        .runs
        .iter()
        .find(|r| r.protocol == protocol)
        .unwrap_or_else(|| panic!("{} does not run {protocol}", report.name))
        .report
        .ledger_fingerprint
}

/// Pinned quick-tier ledger fingerprints of three named scenarios. These are
/// golden values: a diff here means replica scheduling changed — bump them
/// only for intentional behavioural changes.
const LAN_PINS: [(ProtocolKind, &str); 3] = [
    (
        ProtocolKind::HotStuff,
        "d6a4b6ef7a3c116e8fac05a92f9ba583e823ef2b9ad1c87a4805df0e1338e827",
    ),
    (
        ProtocolKind::TwoChainHotStuff,
        "59ffe0747ba792210fb18e5dbd4f70ad263ada255ad306037f7e5ce0c6ed9509",
    ),
    (
        ProtocolKind::Streamlet,
        "69daf8059379ee2ff9adf92f244c2ca6619a82b725465c7e5918a73025630dd3",
    ),
];

const GEO_WAN_PINS: [(ProtocolKind, &str); 3] = [
    (
        ProtocolKind::HotStuff,
        "5eb5d268b3f63ed1b374447b648ef5cc5bc11f88f513345d9c59960b58f0c6bb",
    ),
    (
        ProtocolKind::TwoChainHotStuff,
        "c08fb616963154294a949018631932f71f28985de841a658e2e5661096fac52e",
    ),
    (
        ProtocolKind::Streamlet,
        "408c7f4ecc506a02c0c7c5897badd8ccbb129bb56e99b547b21285aace3d9494",
    ),
];

// Re-pinned when crash recovery gained active catch-up (checkpoints + state
// transfer): recovering replicas now fetch the blocks they missed instead of
// waiting for the chain to reach them, which shifts scheduling in crash runs.
// The healthy-run pins above were unaffected.
const CRASH_F_PINS: [(ProtocolKind, &str); 2] = [
    (
        ProtocolKind::HotStuff,
        "ac212354d26b7509a4063b11754b33666033ec2a6486a396f162cb731d218cfe",
    ),
    (
        ProtocolKind::TwoChainHotStuff,
        "50423c007af9324572236f3093e29702eaf8cbba1f1c40e8263c6c1bcdd695a8",
    ),
];

/// Checks (or, under `GOLDEN_DUMP=1`, prints paste-ready rows for) one
/// scenario's pins.
fn check_pins(name: &str, pins: &[(ProtocolKind, &str)]) {
    let report = run_quick(name);
    if std::env::var_os("GOLDEN_DUMP").is_some() {
        for (protocol, _) in pins {
            println!(
                "({name}) (ProtocolKind::{protocol:?}, \"{}\"),",
                fingerprint(&report, *protocol)
            );
        }
        return;
    }
    for (protocol, pin) in pins {
        assert_eq!(fingerprint(&report, *protocol), *pin, "{name}/{protocol}");
    }
}

#[test]
fn lan_scenario_fingerprints_are_pinned() {
    check_pins("lan", &LAN_PINS);
}

#[test]
fn geo_wan_scenario_fingerprints_are_pinned() {
    check_pins("geo_wan", &GEO_WAN_PINS);
}

#[test]
fn crash_f_scenario_fingerprints_are_pinned() {
    check_pins("crash_f", &CRASH_F_PINS);
}

#[test]
fn geo_wan_reproduces_the_expected_protocol_ordering() {
    let lan = run_quick("lan");
    let geo = run_quick("geo_wan");
    let stats = |report: &ScenarioReport, protocol: ProtocolKind| {
        let run = report
            .runs
            .iter()
            .find(|r| r.protocol == protocol)
            .expect("protocol present");
        (
            run.report.latency.mean_ms,
            run.report.latency.p99_ms,
            run.report.throughput_tx_per_sec,
        )
    };
    let (hs_mean, hs_p99, hs_thr) = stats(&geo, ProtocolKind::HotStuff);
    let (chs_mean, _, _) = stats(&geo, ProtocolKind::TwoChainHotStuff);
    let (_, sl_p99, sl_thr) = stats(&geo, ProtocolKind::Streamlet);
    let (_, _, hs_lan_thr) = stats(&lan, ProtocolKind::HotStuff);
    let (_, _, sl_lan_thr) = stats(&lan, ProtocolKind::Streamlet);

    // One chained round less: 2CHS commits faster than HS on the WAN.
    assert!(
        chs_mean < hs_mean,
        "2CHS mean commit latency {chs_mean:.1} ms should beat HS {hs_mean:.1} ms"
    );
    // Heterogeneous delays tax Streamlet's synchronous epochs on every view,
    // while responsive HotStuff only pays for the links it actually crosses:
    // SL keeps a smaller fraction of its LAN throughput than HS does, and
    // its latency tail in the WAN is heavier than HotStuff's.
    let hs_kept = hs_thr / hs_lan_thr;
    let sl_kept = sl_thr / sl_lan_thr;
    assert!(
        sl_kept < hs_kept,
        "SL should keep a smaller throughput fraction than HS ({sl_kept:.3} vs {hs_kept:.3})"
    );
    assert!(
        sl_p99 > hs_p99,
        "SL p99 {sl_p99:.1} ms should exceed HS p99 {hs_p99:.1} ms in the WAN"
    );
}

#[test]
fn lan_scenario_config_is_safe_on_the_threaded_cluster() {
    // Cross-runtime: the same configuration the simulator scenario compiles
    // must stay safe on the live threaded runtime (wall-clock, so no
    // fingerprint pinning — the determinism claims are simulator-side).
    let scenario = load("lan");
    let (mut config, _) = scenario.build(true);
    config.block_size = 50;
    let cluster = ThreadedCluster::spawn(config, ProtocolKind::HotStuff);
    cluster.submit_round_robin(400, 16);
    cluster.run_for(Duration::from_millis(300));
    let report = cluster.shutdown();
    assert_eq!(report.safety_violations, 0);
    assert!(report.ledgers_consistent);
    assert!(
        report.committed_txs > 0,
        "threaded cluster committed nothing"
    );
}

//! Scenario replay: the shipped scenario library is deterministic and its
//! results are pinned.
//!
//! Three named scenarios (`lan`, `geo_wan`, `crash_f`) are parsed from the
//! actual `scenarios/*.json` files, executed at the quick tier, and their
//! ledger fingerprints compared byte-for-byte against recorded values — any
//! engine, protocol or spec change that shifts scheduling shows up here
//! first (update the constants deliberately when the change is intended).
//! The same configurations are also driven through the live threaded
//! cluster, which must stay safe on the heterogeneous-WAN workload too.
//!
//! The geo-WAN scenario is additionally held to the orderings the paper and
//! the responsiveness literature predict: 2CHS commits with lower latency
//! than HS (one chained round less), and heterogeneous delays degrade
//! Streamlet — whose synchronous epochs must be provisioned for the worst
//! link — more than (responsive) HotStuff.

use std::path::PathBuf;
use std::time::Duration;

use bamboo::core::{Scenario, ScenarioReport, ThreadedCluster};
use bamboo::types::ProtocolKind;

fn load(name: &str) -> Scenario {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("scenarios")
        .join(format!("{name}.json"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    Scenario::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"))
}

fn run_quick(name: &str) -> ScenarioReport {
    let report = load(name).run(true);
    assert!(
        report.passed(),
        "{name} failed at the quick tier: {:?}",
        report.failures
    );
    report
}

fn fingerprint(report: &ScenarioReport, protocol: ProtocolKind) -> &str {
    &report
        .runs
        .iter()
        .find(|r| r.protocol == protocol)
        .unwrap_or_else(|| panic!("{} does not run {protocol}", report.name))
        .report
        .ledger_fingerprint
}

/// Pinned quick-tier ledger fingerprints of three named scenarios. These are
/// golden values: a diff here means replica scheduling changed — bump them
/// only for intentional behavioural changes.
const LAN_PINS: [(ProtocolKind, &str); 3] = [
    (
        ProtocolKind::HotStuff,
        "364a0f71d97cf7027c686d93afc8d22e949d9ac56b038571231a484c6448a61a",
    ),
    (
        ProtocolKind::TwoChainHotStuff,
        "5f90b7ea07b14ede8988cc06dd9ac4f564fbed5baac705c0ed502bd3aa1c1ec5",
    ),
    (
        ProtocolKind::Streamlet,
        "b5cbaa04195298a99e6c461ab8b6273907fe1c2b59f38ac069f889ab8c3a77c2",
    ),
];

const GEO_WAN_PINS: [(ProtocolKind, &str); 3] = [
    (
        ProtocolKind::HotStuff,
        "0671d1dae1edf79601b9691daf2eb29286aca49b74d9674e5c289e4ce0587caa",
    ),
    (
        ProtocolKind::TwoChainHotStuff,
        "7622095f4b4fb82f24e44e242b8ab76ee6e2cee3160f6c9d3aae7b8cc032137a",
    ),
    (
        ProtocolKind::Streamlet,
        "e84bbf18d29e4fd76e4984ef3a83ce15257983c6c1cc6a2277d6b8df8a1701eb",
    ),
];

const CRASH_F_PINS: [(ProtocolKind, &str); 2] = [
    (
        ProtocolKind::HotStuff,
        "e869765a036d73f88bf3f0f41d28279219fad12e7a8a6ee4e442c33ab439eab3",
    ),
    (
        ProtocolKind::TwoChainHotStuff,
        "59a68713b5e8bd1b23b612da8138857c23902fc9175c9c917efca3b89a4656e1",
    ),
];

#[test]
fn lan_scenario_fingerprints_are_pinned() {
    let report = run_quick("lan");
    for (protocol, pin) in LAN_PINS {
        assert_eq!(fingerprint(&report, protocol), pin, "lan/{protocol}");
    }
}

#[test]
fn geo_wan_scenario_fingerprints_are_pinned() {
    let report = run_quick("geo_wan");
    for (protocol, pin) in GEO_WAN_PINS {
        assert_eq!(fingerprint(&report, protocol), pin, "geo_wan/{protocol}");
    }
}

#[test]
fn crash_f_scenario_fingerprints_are_pinned() {
    let report = run_quick("crash_f");
    for (protocol, pin) in CRASH_F_PINS {
        assert_eq!(fingerprint(&report, protocol), pin, "crash_f/{protocol}");
    }
}

#[test]
fn geo_wan_reproduces_the_expected_protocol_ordering() {
    let lan = run_quick("lan");
    let geo = run_quick("geo_wan");
    let stats = |report: &ScenarioReport, protocol: ProtocolKind| {
        let run = report
            .runs
            .iter()
            .find(|r| r.protocol == protocol)
            .expect("protocol present");
        (
            run.report.latency.mean_ms,
            run.report.latency.p99_ms,
            run.report.throughput_tx_per_sec,
        )
    };
    let (hs_mean, hs_p99, hs_thr) = stats(&geo, ProtocolKind::HotStuff);
    let (chs_mean, _, _) = stats(&geo, ProtocolKind::TwoChainHotStuff);
    let (_, sl_p99, sl_thr) = stats(&geo, ProtocolKind::Streamlet);
    let (_, _, hs_lan_thr) = stats(&lan, ProtocolKind::HotStuff);
    let (_, _, sl_lan_thr) = stats(&lan, ProtocolKind::Streamlet);

    // One chained round less: 2CHS commits faster than HS on the WAN.
    assert!(
        chs_mean < hs_mean,
        "2CHS mean commit latency {chs_mean:.1} ms should beat HS {hs_mean:.1} ms"
    );
    // Heterogeneous delays tax Streamlet's synchronous epochs on every view,
    // while responsive HotStuff only pays for the links it actually crosses:
    // SL keeps a smaller fraction of its LAN throughput than HS does, and
    // its latency tail in the WAN is heavier than HotStuff's.
    let hs_kept = hs_thr / hs_lan_thr;
    let sl_kept = sl_thr / sl_lan_thr;
    assert!(
        sl_kept < hs_kept,
        "SL should keep a smaller throughput fraction than HS ({sl_kept:.3} vs {hs_kept:.3})"
    );
    assert!(
        sl_p99 > hs_p99,
        "SL p99 {sl_p99:.1} ms should exceed HS p99 {hs_p99:.1} ms in the WAN"
    );
}

#[test]
fn lan_scenario_config_is_safe_on_the_threaded_cluster() {
    // Cross-runtime: the same configuration the simulator scenario compiles
    // must stay safe on the live threaded runtime (wall-clock, so no
    // fingerprint pinning — the determinism claims are simulator-side).
    let scenario = load("lan");
    let (mut config, _) = scenario.build(true);
    config.block_size = 50;
    let cluster = ThreadedCluster::spawn(config, ProtocolKind::HotStuff);
    cluster.submit_round_robin(400, 16);
    cluster.run_for(Duration::from_millis(300));
    let report = cluster.shutdown();
    assert_eq!(report.safety_violations, 0);
    assert!(report.ledgers_consistent);
    assert!(
        report.committed_txs > 0,
        "threaded cluster committed nothing"
    );
}

//! Golden-replay determinism tests for the simulation engine.
//!
//! The fingerprints below were recorded from the window-barrier sharded
//! engine (PR 6), which replaced the single-queue global-RNG engine: latency
//! draws moved to **per-replica RNG streams** (`derive(node)` of the run
//! seed) so randomness consumption is independent of shard layout, and all
//! replica-to-replica deliveries are exchanged at conservative-lookahead
//! window barriers in a canonical `(deliver_at, origin, seq)` order. That
//! re-pin was a one-time, deliberate break from the PR 3 fingerprints —
//! byte-reproducing a global RNG stream across thread counts is impossible.
//! From here on every engine change must again commit **byte-identical
//! ledgers** for the same seeds at *every* thread count: every block id,
//! proposal view, commit view, commit time and payload transaction id,
//! across all six protocol kinds. Any divergence in event ordering, RNG call
//! order or delivery timing changes the fingerprint and fails the test.
//!
//! To re-record after an *intentional* behaviour change, run:
//! `GOLDEN_DUMP=1 cargo test --test engine_replay -- --nocapture`
//! and paste the printed table.

use bamboo::core::{RunOptions, RunReport, SimRunner};
use bamboo::types::{Config, ProtocolKind, SimDuration};

fn run(protocol: ProtocolKind, nodes: usize, runtime_ms: u64, rate: f64, seed: u64) -> RunReport {
    let config = Config::builder()
        .nodes(nodes)
        .block_size(50)
        .runtime(SimDuration::from_millis(runtime_ms))
        .arrival_rate(rate)
        .seed(seed)
        .build()
        .expect("valid config");
    SimRunner::new(config, protocol, RunOptions::default()).run()
}

/// `(protocol, nodes, runtime_ms, rate, seed, committed_txs, fingerprint)`
/// recorded from the window-barrier sharded engine at `threads = 1`.
/// Higher thread counts must reproduce the same values (see
/// `tests/parallel_engine.rs`).
const GOLDEN: &[(ProtocolKind, usize, u64, f64, u64, u64, &str)] = &[
    (
        ProtocolKind::HotStuff,
        4,
        300,
        3_000.0,
        7,
        917,
        "11874219f970ca87dba47d9aaf29b373cb71cb351eab7a751ac4d798d95301db",
    ),
    (
        ProtocolKind::TwoChainHotStuff,
        4,
        300,
        3_000.0,
        7,
        919,
        "ec80c17c8b665c42b25379b006eb390f45c193f9876c9fd2c1ae06ead6906765",
    ),
    (
        ProtocolKind::Streamlet,
        4,
        300,
        3_000.0,
        7,
        918,
        "777544340b112d8d822a23ebad4353cfec959d4870ed5e20e22e6a546d0e15de",
    ),
    (
        ProtocolKind::FastHotStuff,
        4,
        300,
        3_000.0,
        7,
        919,
        "ec80c17c8b665c42b25379b006eb390f45c193f9876c9fd2c1ae06ead6906765",
    ),
    (
        ProtocolKind::Lbft,
        4,
        300,
        3_000.0,
        7,
        920,
        "339645a97413adc287a66d1db6f1f028d741f22682ed8450ec885dc803c88879",
    ),
    (
        ProtocolKind::OriginalHotStuff,
        4,
        300,
        3_000.0,
        7,
        917,
        "11874219f970ca87dba47d9aaf29b373cb71cb351eab7a751ac4d798d95301db",
    ),
    // A broadcast-heavy mid-size run: covers the shared-envelope fan-out,
    // bucket-wheel and barrier-exchange paths under real event pressure.
    (
        ProtocolKind::HotStuff,
        16,
        100,
        8_000.0,
        2021,
        726,
        "7a02f354eb7313c7f36881e5d40826244bf7c6e06c01b89ea87dc37192629287",
    ),
];

#[test]
fn engine_replays_the_pinned_golden_ledgers_byte_for_byte() {
    let dump = std::env::var_os("GOLDEN_DUMP").is_some();
    for &(protocol, nodes, runtime_ms, rate, seed, txs, fingerprint) in GOLDEN {
        let report = run(protocol, nodes, runtime_ms, rate, seed);
        if dump {
            println!(
                "({protocol:?}, {nodes}, {runtime_ms}, {rate:.1}, {seed}, {}, \"{}\"),",
                report.committed_txs, report.ledger_fingerprint
            );
            continue;
        }
        assert_eq!(
            report.ledger_fingerprint, fingerprint,
            "{protocol} n={nodes}: ledger diverged from the pinned golden run"
        );
        assert_eq!(
            report.committed_txs, txs,
            "{protocol} n={nodes}: committed work diverged"
        );
        assert_eq!(report.safety_violations, 0, "{protocol} n={nodes}");
    }
}

/// Two fresh runs of the rebuilt engine at n = 256 must agree exactly — the
/// scalability sweep's largest point is deterministic, not just the small
/// golden configurations.
#[test]
fn n256_run_is_deterministic() {
    let a = run(ProtocolKind::HotStuff, 256, 20, 4_000.0, 11);
    let b = run(ProtocolKind::HotStuff, 256, 20, 4_000.0, 11);
    assert_eq!(a.ledger_fingerprint, b.ledger_fingerprint);
    assert_eq!(a.committed_txs, b.committed_txs);
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.messages_sent, b.messages_sent);
    assert!(a.committed_blocks > 0, "n=256 must make progress");
    assert_eq!(a.safety_violations, 0);
}

//! Golden-replay determinism tests for the simulation engine.
//!
//! The fingerprints below were recorded from the heap-based event queue and
//! deep-copy delivery path (the engine as of PR 3). The rebuilt engine —
//! slab/bucket-wheel event queue, `Arc`-backed shared-envelope delivery,
//! reusable workload buckets — must commit **byte-identical ledgers** for the
//! same seeds: every block id, proposal view, commit view, commit time and
//! payload transaction id, across all six protocol kinds. Any divergence in
//! event ordering, RNG call order or delivery timing changes the fingerprint
//! and fails the test.
//!
//! To re-record after an *intentional* behaviour change, run:
//! `GOLDEN_DUMP=1 cargo test --test engine_replay -- --nocapture`
//! and paste the printed table.

use bamboo::core::{RunOptions, RunReport, SimRunner};
use bamboo::types::{Config, ProtocolKind, SimDuration};

fn run(protocol: ProtocolKind, nodes: usize, runtime_ms: u64, rate: f64, seed: u64) -> RunReport {
    let config = Config::builder()
        .nodes(nodes)
        .block_size(50)
        .runtime(SimDuration::from_millis(runtime_ms))
        .arrival_rate(rate)
        .seed(seed)
        .build()
        .expect("valid config");
    SimRunner::new(config, protocol, RunOptions::default()).run()
}

/// `(protocol, nodes, runtime_ms, rate, seed, committed_txs, fingerprint)`
/// recorded from the pre-rewrite (BinaryHeap + deep-copy) engine.
const GOLDEN: &[(ProtocolKind, usize, u64, f64, u64, u64, &str)] = &[
    (
        ProtocolKind::HotStuff,
        4,
        300,
        3_000.0,
        7,
        873,
        "7b252a751dcae6ea82e183a4e661bd8db016c4e68016d2afae7a35f736c0ae6f",
    ),
    (
        ProtocolKind::TwoChainHotStuff,
        4,
        300,
        3_000.0,
        7,
        858,
        "aedfbce51b7b400478bcb8838826efc92f97c2351602ad288fcd5f7f909f04d7",
    ),
    (
        ProtocolKind::Streamlet,
        4,
        300,
        3_000.0,
        7,
        908,
        "9156e9d51a17afd687a997046e9e75377688003987a5d47ff564af964db544dc",
    ),
    (
        ProtocolKind::FastHotStuff,
        4,
        300,
        3_000.0,
        7,
        858,
        "aedfbce51b7b400478bcb8838826efc92f97c2351602ad288fcd5f7f909f04d7",
    ),
    (
        ProtocolKind::Lbft,
        4,
        300,
        3_000.0,
        7,
        896,
        "607684fe40dc641c94622f59dd96429f9182328700f384b9ad0e1ba2c509d972",
    ),
    (
        ProtocolKind::OriginalHotStuff,
        4,
        300,
        3_000.0,
        7,
        873,
        "7b252a751dcae6ea82e183a4e661bd8db016c4e68016d2afae7a35f736c0ae6f",
    ),
    // A broadcast-heavy mid-size run: covers the shared-envelope fan-out and
    // bucket-wheel paths under real event pressure.
    (
        ProtocolKind::HotStuff,
        16,
        100,
        8_000.0,
        2021,
        770,
        "780058d47436bebbfede1f7d74210f589d3928dedcbc2acf273b717458cd7f4b",
    ),
];

#[test]
fn new_engine_replays_the_heap_engine_ledgers_byte_for_byte() {
    let dump = std::env::var_os("GOLDEN_DUMP").is_some();
    for &(protocol, nodes, runtime_ms, rate, seed, txs, fingerprint) in GOLDEN {
        let report = run(protocol, nodes, runtime_ms, rate, seed);
        if dump {
            println!(
                "({protocol:?}, {nodes}, {runtime_ms}, {rate:.1}, {seed}, {}, \"{}\"),",
                report.committed_txs, report.ledger_fingerprint
            );
            continue;
        }
        assert_eq!(
            report.ledger_fingerprint, fingerprint,
            "{protocol} n={nodes}: ledger diverged from the heap-based engine"
        );
        assert_eq!(
            report.committed_txs, txs,
            "{protocol} n={nodes}: committed work diverged"
        );
        assert_eq!(report.safety_violations, 0, "{protocol} n={nodes}");
    }
}

/// Two fresh runs of the rebuilt engine at n = 256 must agree exactly — the
/// scalability sweep's largest point is deterministic, not just the small
/// golden configurations.
#[test]
fn n256_run_is_deterministic() {
    let a = run(ProtocolKind::HotStuff, 256, 20, 4_000.0, 11);
    let b = run(ProtocolKind::HotStuff, 256, 20, 4_000.0, 11);
    assert_eq!(a.ledger_fingerprint, b.ledger_fingerprint);
    assert_eq!(a.committed_txs, b.committed_txs);
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.messages_sent, b.messages_sent);
    assert!(a.committed_blocks > 0, "n=256 must make progress");
    assert_eq!(a.safety_violations, 0);
}

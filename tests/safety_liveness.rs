//! End-to-end safety and liveness tests across the three evaluated protocols,
//! run on the deterministic simulator.

use bamboo::core::{RunOptions, SimRunner};
use bamboo::types::{ByzantineStrategy, Config, ProtocolKind, SimDuration};

fn config(nodes: usize) -> Config {
    Config::builder()
        .nodes(nodes)
        .block_size(100)
        .payload_size(32)
        .runtime(SimDuration::from_millis(500))
        .arrival_rate(5_000.0)
        .seed(77)
        .build()
        .expect("valid config")
}

#[test]
fn every_protocol_commits_and_preserves_safety_in_the_happy_path() {
    for protocol in ProtocolKind::evaluated() {
        let report = SimRunner::new(config(4), protocol, RunOptions::default()).run();
        assert_eq!(report.safety_violations, 0, "{protocol}");
        assert!(
            report.committed_blocks > 5,
            "{protocol} committed too little"
        );
        assert!(report.committed_txs > 0, "{protocol}");
        assert!(
            report.chain_growth_rate > 0.5,
            "{protocol} CGR {}",
            report.chain_growth_rate
        );
    }
}

#[test]
fn larger_clusters_still_commit() {
    for protocol in [ProtocolKind::HotStuff, ProtocolKind::TwoChainHotStuff] {
        let report = SimRunner::new(config(16), protocol, RunOptions::default()).run();
        assert_eq!(report.safety_violations, 0);
        assert!(report.committed_blocks > 3, "{protocol}");
    }
}

#[test]
fn commit_latency_ordering_matches_commit_rules() {
    // 2CHS commits one certified block earlier than HS; Streamlet commits on
    // consecutive-view chains. Under an unloaded, fault-free network, block
    // intervals must therefore order as: 2CHS < HS, and 2CHS <= SL.
    let hs = SimRunner::new(config(4), ProtocolKind::HotStuff, RunOptions::default()).run();
    let two = SimRunner::new(
        config(4),
        ProtocolKind::TwoChainHotStuff,
        RunOptions::default(),
    )
    .run();
    let sl = SimRunner::new(config(4), ProtocolKind::Streamlet, RunOptions::default()).run();
    assert!(
        two.block_interval < hs.block_interval,
        "2CHS BI {} vs HS BI {}",
        two.block_interval,
        hs.block_interval
    );
    assert!(two.latency.mean_ms < hs.latency.mean_ms);
    assert!(sl.block_interval <= hs.block_interval + 0.5);
}

#[test]
fn liveness_is_retained_under_silence_attack_with_adequate_timeouts() {
    for protocol in ProtocolKind::evaluated() {
        let mut cfg = config(8);
        cfg.byzantine_strategy = ByzantineStrategy::Silence;
        cfg.byz_nodes = 2;
        cfg.timeout = SimDuration::from_millis(20);
        cfg.runtime = SimDuration::from_millis(800);
        let report = SimRunner::new(cfg, protocol, RunOptions::default()).run();
        assert_eq!(report.safety_violations, 0, "{protocol}");
        assert!(
            report.committed_blocks > 3,
            "{protocol} lost liveness under silence attack ({} blocks)",
            report.committed_blocks
        );
        assert!(
            report.timeout_view_changes > 0,
            "{protocol} should have timed out on silent leaders"
        );
    }
}

#[test]
fn forking_attack_never_causes_conflicting_commits() {
    for protocol in ProtocolKind::evaluated() {
        let mut cfg = config(8);
        cfg.byzantine_strategy = ByzantineStrategy::Forking;
        cfg.byz_nodes = 2;
        let report = SimRunner::new(cfg, protocol, RunOptions::default()).run();
        assert_eq!(report.safety_violations, 0, "{protocol}");
        assert!(report.committed_blocks > 0, "{protocol}");
    }
}

#[test]
fn streamlet_is_immune_to_forking_while_hotstuff_is_not() {
    let mut cfg = config(8);
    cfg.byzantine_strategy = ByzantineStrategy::Forking;
    cfg.byz_nodes = 2;
    cfg.runtime = SimDuration::from_millis(800);
    let hs = SimRunner::new(cfg.clone(), ProtocolKind::HotStuff, RunOptions::default()).run();
    let sl = SimRunner::new(cfg, ProtocolKind::Streamlet, RunOptions::default()).run();
    assert!(
        sl.chain_growth_rate > 0.9,
        "Streamlet CGR under forking was {}",
        sl.chain_growth_rate
    );
    assert!(
        hs.chain_growth_rate < sl.chain_growth_rate,
        "HotStuff CGR {} should be below Streamlet's {}",
        hs.chain_growth_rate,
        sl.chain_growth_rate
    );
}

#[test]
fn two_chain_is_more_forking_resilient_than_three_chain() {
    let mut cfg = config(8);
    cfg.byzantine_strategy = ByzantineStrategy::Forking;
    cfg.byz_nodes = 2;
    cfg.runtime = SimDuration::from_millis(800);
    let hs = SimRunner::new(cfg.clone(), ProtocolKind::HotStuff, RunOptions::default()).run();
    let two = SimRunner::new(cfg, ProtocolKind::TwoChainHotStuff, RunOptions::default()).run();
    assert!(
        two.chain_growth_rate >= hs.chain_growth_rate,
        "2CHS CGR {} should be at least HS CGR {}",
        two.chain_growth_rate,
        hs.chain_growth_rate
    );
}

//! Crash-recovery from the durable segment log: replicas that restart from
//! their own disk, not from thin air.
//!
//! PR 7's amnesia model wipes everything volatile and rebuilds the victim
//! through state transfer alone. These tests exercise the stronger model: the
//! replica persisted committed blocks, QCs, checkpoint images and — before
//! every vote — its `SafetyRecord{voted_view, locked_qc}` watermark, and a
//! restart replays that log so only the unpersisted *tail* has to come over
//! the network.
//!
//! What must hold, on both deployment backends:
//!
//! * the restarted replica re-joins the honest chain with a matching
//!   committed prefix, and the run report accounts for the replay
//!   (`records_replayed`, `corrupt_records_discarded`, `log_replay_ms`);
//! * every crash-point storage fault — torn tail, truncated segment, flipped
//!   CRC, dropped fsync batch — recovers the longest valid prefix without
//!   panicking, falling back to state transfer for whatever was mangled;
//! * the restored voted-view watermark makes double-voting impossible: every
//!   post-restart vote is strictly above it (a `debug_assert` in the vote
//!   path enforces this during `cargo test`, and the safety auditor would
//!   count any conflicting commit);
//! * on the simulator the whole story is bit-for-bit deterministic at every
//!   engine thread count, including the replay counters.

use std::time::Duration;

use bamboo::core::{
    FaultTrigger, NodeFault, RunOptions, RunReport, SimRunner, StorageFault, ThreadedCluster,
};
use bamboo::types::{Config, NodeId, ProtocolKind, SimDuration, SimTime};

/// An 8-node cluster with the durable log on: tight 4 KiB segments and a
/// 4-record fsync batch so a 200 ms run exercises rotation, batching, and a
/// genuinely unsynced tail at the crash point.
fn config(seed: u64) -> Config {
    Config::builder()
        .nodes(8)
        .block_size(50)
        .runtime(SimDuration::from_millis(200))
        .arrival_rate(4_000.0)
        .timeout(SimDuration::from_millis(20))
        .checkpoint_interval(8)
        .durable_log(true)
        .fsync_interval(4)
        .segment_bytes(4096)
        .seed(seed)
        .build()
        .expect("valid config")
}

fn durable_fault(
    node: u64,
    crash_ms: u64,
    recover_ms: u64,
    storage_fault: Option<StorageFault>,
) -> NodeFault {
    NodeFault {
        node: NodeId(node),
        crash: FaultTrigger::At(SimTime(crash_ms * 1_000_000)),
        recover: Some(FaultTrigger::At(SimTime(recover_ms * 1_000_000))),
        amnesia: false,
        durable: true,
        storage_fault,
    }
}

fn run(seed: u64, faults: Vec<NodeFault>, threads: usize) -> RunReport {
    SimRunner::new(
        config(seed),
        ProtocolKind::HotStuff,
        RunOptions {
            node_faults: faults,
            threads,
            ..RunOptions::default()
        },
    )
    .run()
}

#[test]
fn durable_restart_replays_the_log_and_rejoins() {
    let report = run(7, vec![durable_fault(2, 60, 120, None)], 1);
    assert_eq!(report.safety_violations, 0);
    assert!(report.committed_txs > 0, "cluster committed nothing");

    let recovery = report.recovery;
    assert_eq!(recovery.durable_restarts, 1, "{recovery:?}");
    assert!(
        recovery.records_replayed > 0,
        "a clean crash after 60 ms must leave a replayable log: {recovery:?}"
    );
    assert!(
        recovery.log_replay_ms > 0.0,
        "replay has a modeled disk-I/O cost: {recovery:?}"
    );
    assert!(
        recovery.recovered_caught_up,
        "node 2 replayed its log but never matched the never-crashed \
         majority's committed prefix: {recovery:?}"
    );
}

/// With a short outage the replayed log covers everything but the tail:
/// state transfer may top up the newest blocks, but a full snapshot install
/// — the amnesia path's hallmark for any real gap — must not be needed.
#[test]
fn short_durable_outage_syncs_the_tail_without_a_snapshot() {
    let report = run(7, vec![durable_fault(2, 60, 70, None)], 1);
    assert_eq!(report.safety_violations, 0);
    let recovery = report.recovery;
    assert_eq!(recovery.durable_restarts, 1, "{recovery:?}");
    assert!(recovery.recovered_caught_up, "{recovery:?}");
    assert_eq!(
        recovery.snapshots_installed, 0,
        "a 10 ms gap after a log replay must not need a snapshot: {recovery:?}"
    );
}

/// Every crash-point storage fault recovers without panicking: the replay
/// keeps the longest valid prefix, counts the mangled suffix as discarded,
/// and state transfer covers the difference.
#[test]
fn every_crash_point_fault_recovers_without_panicking() {
    let faults = [
        ("torn_tail", StorageFault::TornTail),
        ("truncate_segment", StorageFault::TruncateSegment),
        ("corrupt_crc", StorageFault::CorruptCrc { record: 3 }),
        ("drop_fsync", StorageFault::DropFsync { index: 2 }),
    ];
    for (label, fault) in faults {
        let report = run(42, vec![durable_fault(3, 60, 120, Some(fault))], 1);
        assert_eq!(report.safety_violations, 0, "{label}");
        let recovery = report.recovery;
        assert_eq!(recovery.durable_restarts, 1, "{label}: {recovery:?}");
        assert!(
            recovery.recovered_caught_up,
            "{label}: the victim never re-joined the honest chain: {recovery:?}"
        );
    }
}

/// A torn tail and a flipped CRC byte must surface in the report as
/// discarded records — corruption is counted, never silently absorbed.
#[test]
fn corrupting_faults_are_counted_as_discarded_records() {
    for (label, fault) in [
        ("torn_tail", StorageFault::TornTail),
        ("corrupt_crc", StorageFault::CorruptCrc { record: 3 }),
    ] {
        let report = run(42, vec![durable_fault(3, 60, 120, Some(fault))], 1);
        assert!(
            report.recovery.corrupt_records_discarded > 0,
            "{label}: corruption left no trace in the report: {:?}",
            report.recovery
        );
    }
}

/// Layout invariance extends to durable recovery: the ledger fingerprint and
/// every replay counter must be identical at 1, 2 and 4 engine shards, for a
/// clean restart and for the nastiest corruption fault alike.
#[test]
fn durable_recovery_is_deterministic_at_every_thread_count() {
    for seed in [7u64, 42, 2021] {
        for storage_fault in [None, Some(StorageFault::TornTail)] {
            let fault = || vec![durable_fault(2, 60, 120, storage_fault)];
            let base = run(seed, fault(), 1);
            assert!(
                base.recovery.durable_restarts == 1 && base.recovery.recovered_caught_up,
                "seed {seed}: baseline recovery failed — the comparison would \
                 be vacuous: {:?}",
                base.recovery
            );
            for threads in [2usize, 4] {
                let sharded = run(seed, fault(), threads);
                let label = format!("seed={seed} threads={threads} fault={storage_fault:?}");
                assert_eq!(
                    base.ledger_fingerprint, sharded.ledger_fingerprint,
                    "{label}: ledger diverged"
                );
                assert_eq!(base.committed_txs, sharded.committed_txs, "{label}");
                assert_eq!(base.events_processed, sharded.events_processed, "{label}");
                assert_eq!(base.messages_sent, sharded.messages_sent, "{label}");
                assert_eq!(
                    base.recovery, sharded.recovery,
                    "{label}: recovery counters diverged"
                );
            }
        }
    }
}

/// The same failure model on the live threaded cluster, with real files in a
/// per-cluster temp directory: crash a replica, let the survivors extend the
/// chain, restart the victim from its own on-disk segment log, and check it
/// re-joins with a matching prefix and a restored vote watermark.
#[test]
fn threaded_cluster_durable_restart_restores_the_vote_watermark() {
    let config = Config::builder()
        .nodes(4)
        .block_size(50)
        .payload_size(16)
        .timeout(SimDuration::from_millis(50))
        .runtime(SimDuration::from_millis(300))
        .checkpoint_interval(4)
        .durable_log(true)
        .fsync_interval(4)
        .seed(2026)
        .build()
        .expect("valid config");
    let victim = NodeId(2);

    let cluster = ThreadedCluster::spawn(config, ProtocolKind::HotStuff);
    cluster.submit_round_robin(600, 16);
    assert!(
        cluster.run_until_committed(50, Duration::from_secs(20)),
        "cluster never got off the ground ({} txs)",
        cluster.committed_txs()
    );

    cluster.crash(victim);
    let at_crash = cluster.committed_txs();
    cluster.submit_round_robin(600, 16);
    // The 3 survivors are exactly a quorum of 4: the chain keeps growing
    // while the victim is down, so its log is genuinely stale on restart.
    assert!(
        cluster.run_until_committed(at_crash + 100, Duration::from_secs(20)),
        "survivors stalled after the crash ({} txs)",
        cluster.committed_txs()
    );

    cluster.recover_durable(victim, None);
    cluster.submit_round_robin(600, 16);
    let at_recovery = cluster.committed_txs();
    assert!(
        cluster.run_until_committed(at_recovery + 100, Duration::from_secs(20)),
        "cluster stalled after the recovery ({} txs)",
        cluster.committed_txs()
    );
    // Wall-clock slack for the victim's final sync round-trips to land.
    cluster.run_for(Duration::from_millis(500));

    let (report, hosts) = cluster.shutdown_with_hosts();
    assert_eq!(report.safety_violations, 0);
    assert!(report.ledgers_consistent, "honest ledgers diverged");

    let recovered = hosts[victim.index()].replica();
    let stats = recovered.recovery_stats();
    assert_eq!(stats.durable_restarts, 1, "{stats:?}");
    assert!(
        stats.records_replayed > 0,
        "the on-disk log replayed nothing: {stats:?}"
    );
    assert!(stats.restarted_at.is_some(), "the victim never restarted");
    // The watermark satellite: the replay restored a voted-view floor, and
    // the vote-path `debug_assert` (active under `cargo test`) would have
    // fired on any vote at or below it during the post-restart run.
    assert!(
        recovered.restored_voted_view().is_some(),
        "no SafetyRecord survived to restore the vote watermark: {stats:?}"
    );

    // Prefix agreement against a never-crashed replica. The threaded runtime
    // is wall-clock, so exact lengths at shutdown are scheduling-dependent —
    // but the shared prefix must match block for block.
    let reference = hosts[0].replica().ledger();
    let shared = recovered.ledger().len().min(reference.len());
    assert!(
        shared > 0,
        "the recovered replica rebuilt nothing (recovered {} / reference {})",
        recovered.ledger().len(),
        reference.len()
    );
    assert_eq!(
        recovered.ledger().chain_fingerprint_prefix(shared),
        reference.chain_fingerprint_prefix(shared),
        "recovered replica's chain prefix diverged from the reference"
    );
}

//! Cross-runtime agreement over real sockets: the same configurations the
//! simulator and the threaded cluster agree on (`cross_runtime_agreement.rs`)
//! must also preserve safety when the replicas talk loopback TCP through the
//! `bamboo-net` transport — framed streams, per-peer writer threads with
//! reconnect, per-node verify pools.
//!
//! Prefix agreement is checked with the same ledger oracle the simulator
//! uses ([`chain_fingerprint_prefix`]): all honest replicas must have
//! committed byte-identical chains up to the shortest committed length.
//! Full-chain equality across backends is impossible — block packing depends
//! on wall-clock arrival timing — which is exactly why the oracle hashes the
//! chain-intrinsic prefix and not commit-time metadata.

use std::time::Duration;

use bamboo::net::{BackoffPolicy, ClusterSpec, ProcessCluster, TcpCluster};
use bamboo::types::{Config, NodeId, ProtocolKind, SimDuration};

const ALL_PROTOCOLS: [ProtocolKind; 6] = [
    ProtocolKind::HotStuff,
    ProtocolKind::TwoChainHotStuff,
    ProtocolKind::Streamlet,
    ProtocolKind::FastHotStuff,
    ProtocolKind::Lbft,
    ProtocolKind::OriginalHotStuff,
];

fn shared_config() -> Config {
    Config::builder()
        .nodes(4)
        .block_size(50)
        .payload_size(16)
        .timeout(SimDuration::from_millis(50))
        .runtime(SimDuration::from_millis(300))
        .seed(2024)
        .build()
        .expect("valid config")
}

/// A backoff small enough that reconnect storms resolve within test budgets.
fn fast_backoff() -> BackoffPolicy {
    BackoffPolicy {
        initial: Duration::from_millis(5),
        max: Duration::from_millis(100),
    }
}

#[test]
fn every_protocol_reaches_prefix_agreement_over_loopback_tcp() {
    for protocol in ALL_PROTOCOLS {
        let mut cluster =
            TcpCluster::spawn(protocol, shared_config()).expect("cluster spawns on loopback");
        cluster.submit_round_robin(600, 16);
        assert!(
            cluster.run_until_committed(100, Duration::from_secs(30)),
            "{protocol} committed only {} txs cluster-wide before the deadline",
            cluster.committed_txs_floor()
        );
        let (report, hosts) = cluster.shutdown_with_hosts();
        assert_eq!(
            report.cluster.safety_violations, 0,
            "{protocol} violated safety over TCP"
        );
        assert!(
            report.cluster.ledgers_consistent,
            "{protocol} honest ledgers diverged over TCP"
        );
        assert!(
            report.cluster.max_view > 1,
            "{protocol} made no view progress over TCP"
        );

        // Explicit prefix-agreement via the ledger's cross-replica oracle.
        let ledgers: Vec<_> = hosts
            .iter()
            .flatten()
            .map(|h| h.replica().ledger())
            .collect();
        let min_len = ledgers.iter().map(|l| l.len()).min().unwrap_or(0);
        assert!(min_len > 0, "{protocol}: some replica committed nothing");
        let expected = ledgers[0].chain_fingerprint_prefix(min_len);
        for (index, ledger) in ledgers.iter().enumerate() {
            assert_eq!(
                ledger.chain_fingerprint_prefix(min_len),
                expected,
                "{protocol}: replica {index} disagrees on the first {min_len} blocks"
            );
        }
    }
}

#[test]
fn killed_peer_reconnects_with_backoff_and_catches_up() {
    let mut cluster =
        TcpCluster::spawn_with(ProtocolKind::HotStuff, shared_config(), 1, fast_backoff())
            .expect("cluster spawns on loopback");
    cluster.submit_round_robin(300, 16);
    assert!(
        cluster.run_until_committed(50, Duration::from_secs(30)),
        "cluster never reached the pre-kill target"
    );

    // Kill one replica. The three survivors are a quorum for n=4, so the
    // cluster keeps committing while the dead node's peers dial its corpse
    // on their backoff schedule and drop its frames.
    let victim = NodeId(2);
    cluster.kill(victim);
    cluster.submit_round_robin(300, 16);
    assert!(
        cluster.run_until_committed(150, Duration::from_secs(30)),
        "survivors stopped committing after the kill"
    );

    // Restart on a fresh port. The replacement starts from genesis and must
    // catch up through the sync protocol; the floor-based poll only passes
    // once the restarted replica has the target too.
    cluster.restart(victim).expect("replacement spawns");
    cluster.submit_round_robin(300, 16);
    assert!(
        cluster.run_until_committed(250, Duration::from_secs(60)),
        "restarted replica never caught up (floor {})",
        cluster.committed_txs_floor()
    );

    let (report, hosts) = cluster.shutdown_with_hosts();
    assert_eq!(report.cluster.safety_violations, 0, "safety violated");
    assert!(
        report.cluster.ledgers_consistent,
        "ledgers diverged after the restart"
    );
    let restarted = hosts[victim.index()]
        .as_ref()
        .expect("restarted replica reports");
    assert!(
        restarted.replica().ledger().committed_txs() >= 250,
        "restarted replica holds only {} committed txs",
        restarted.replica().ledger().committed_txs()
    );

    // The survivors' outbound links to the victim must have reconnected —
    // at least one extra connect beyond the initial one (to the new port).
    let reconnects_to_victim: u64 = report
        .nodes
        .iter()
        .filter(|stats| stats.node != victim.as_u64())
        .flat_map(|stats| &stats.peers)
        .filter(|(peer, _)| *peer == victim.as_u64())
        .map(|(_, link)| link.reconnects)
        .sum();
    assert!(
        reconnects_to_victim > 0,
        "no surviving link ever reconnected to the restarted replica"
    );
    // Frames queued for the dead peer were dropped, not buffered forever.
    assert!(
        report.total_dropped() > 0,
        "expected dropped frames while the victim was down"
    );
}

#[test]
fn signed_clients_commit_over_tcp() {
    let config = Config::builder()
        .nodes(4)
        .block_size(50)
        .payload_size(16)
        .timeout(SimDuration::from_millis(50))
        .runtime(SimDuration::from_millis(300))
        .seed(2024)
        .signed_requests(true)
        .build()
        .expect("valid config");
    let mut cluster =
        TcpCluster::spawn(ProtocolKind::HotStuff, config).expect("cluster spawns on loopback");
    cluster.submit_round_robin(400, 16);
    assert!(
        cluster.run_until_committed(100, Duration::from_secs(30)),
        "signed-client cluster never reached the target"
    );
    let report = cluster.shutdown();
    assert_eq!(report.cluster.safety_violations, 0);
    assert!(report.cluster.ledgers_consistent);
    assert_eq!(
        report.cluster.client_auth_rejections, 0,
        "properly signed requests were rejected at the edge"
    );
}

#[test]
fn multi_process_cluster_commits_and_prefix_agrees() {
    let exe = std::path::Path::new(env!("CARGO_BIN_EXE_tcp_replica"));
    let spec = ClusterSpec {
        nodes: 4,
        protocol: ProtocolKind::HotStuff,
        block_size: 50,
        payload_size: 16,
        timeout_ms: 50,
        seed: 2024,
        verify_workers: 1,
        checkpoint_interval: 0,
        signed_requests: false,
    };
    let mut cluster = ProcessCluster::launch(exe, spec).expect("replica processes launch");
    cluster
        .submit_round_robin(400, 16)
        .expect("client batches reach the replicas");
    assert!(
        cluster
            .run_until_committed(100, Duration::from_secs(30))
            .expect("status probes answer"),
        "replica processes never reached the commit target"
    );
    let agreed = cluster
        .check_prefix_agreement()
        .expect("prefix fingerprints match across processes");
    assert!(agreed > 0, "no common committed prefix across processes");
    let reports = cluster.shutdown().expect("replicas report on shutdown");
    assert_eq!(reports.len(), 4);
    for report in &reports {
        let safety = report
            .get("safety_violations")
            .and_then(|v| v.as_f64())
            .expect("report carries safety_violations");
        assert_eq!(safety, 0.0, "a replica process violated safety");
        let committed = report
            .get("committed_txs")
            .and_then(|v| v.as_f64())
            .expect("report carries committed_txs");
        assert!(committed >= 100.0, "a replica process lagged: {committed}");
    }
}

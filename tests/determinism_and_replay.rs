//! Determinism / reproducibility guarantees of the simulation substrate and
//! randomised end-to-end checks over a grid of configurations.

use bamboo::core::{RunOptions, SimRunner};
use bamboo::types::{ByzantineStrategy, Config, ProtocolKind, SimDuration};

fn run(seed: u64, protocol: ProtocolKind, rate: f64) -> bamboo::core::RunReport {
    let config = Config::builder()
        .nodes(4)
        .block_size(50)
        .runtime(SimDuration::from_millis(300))
        .arrival_rate(rate)
        .seed(seed)
        .build()
        .expect("valid config");
    SimRunner::new(config, protocol, RunOptions::default()).run()
}

#[test]
fn identical_seeds_give_bit_identical_reports() {
    for protocol in ProtocolKind::evaluated() {
        let a = run(123, protocol, 3_000.0);
        let b = run(123, protocol, 3_000.0);
        assert_eq!(a.committed_txs, b.committed_txs, "{protocol}");
        assert_eq!(a.committed_blocks, b.committed_blocks, "{protocol}");
        assert_eq!(a.views_advanced, b.views_advanced, "{protocol}");
        assert_eq!(a.messages_sent, b.messages_sent, "{protocol}");
        assert!(
            (a.latency.mean_ms - b.latency.mean_ms).abs() < 1e-12,
            "{protocol}"
        );
    }
}

#[test]
fn different_seeds_change_low_level_schedules_but_not_safety() {
    let a = run(1, ProtocolKind::HotStuff, 3_000.0);
    let b = run(2, ProtocolKind::HotStuff, 3_000.0);
    assert_eq!(a.safety_violations, 0);
    assert_eq!(b.safety_violations, 0);
    // Both commit a similar amount of work even though schedules differ.
    let ratio = a.committed_txs as f64 / b.committed_txs.max(1) as f64;
    assert!(ratio > 0.5 && ratio < 2.0, "ratio {ratio}");
}

/// Safety holds for arbitrary seeds, cluster sizes, block sizes and Byzantine
/// configurations (within the f < n/3 bound). The grid below replaces the
/// previous proptest harness with a deterministic sweep, so every failing
/// case is directly reproducible from the printed parameters.
#[test]
fn safety_holds_for_randomised_configurations() {
    for case in 0u64..12 {
        let seed = case * 797 + 13;
        let nodes = 4 + (case as usize * 3) % 6;
        let block_size = 10 + (case as usize * 37) % 190;
        let strategy = match case % 3 {
            0 => ByzantineStrategy::Honest,
            1 => ByzantineStrategy::Forking,
            _ => ByzantineStrategy::Silence,
        };
        let byz = (case as usize % 3).min((nodes - 1) / 3);
        let mut config = Config::builder()
            .nodes(nodes)
            .block_size(block_size)
            .runtime(SimDuration::from_millis(200))
            .arrival_rate(2_000.0)
            .timeout(SimDuration::from_millis(20))
            .seed(seed)
            .build()
            .expect("valid config");
        config.byzantine_strategy = strategy;
        config.byz_nodes = byz;
        for protocol in [ProtocolKind::HotStuff, ProtocolKind::TwoChainHotStuff] {
            let report = SimRunner::new(config.clone(), protocol, RunOptions::default()).run();
            assert_eq!(
                report.safety_violations, 0,
                "{protocol} n={nodes} bsize={block_size} byz={byz} {strategy} seed={seed}"
            );
        }
    }
}

//! End-to-end tests of the client-ingress pipeline: signed requests from a
//! large open-loop client population, edge batch-verification, sharded
//! mempool admission control, and client-observed latency reporting.
//!
//! The pipeline rides the same determinism contract as the rest of the
//! engine: with population mode, request signing and mempool sharding all
//! enabled, runs must stay bit-identical across engine thread counts, and
//! two identical runs must agree on every admission counter.

use std::time::Duration;

use bamboo_core::{
    BufferedTransport, NodeHost, ReplicaOptions, RunOptions, RunReport, SimRunner, ThreadedCluster,
    CLIENT_ID_BASE,
};
use bamboo_crypto::KeyPair;
use bamboo_types::{
    ClientRequest, Config, NodeId, ProtocolKind, SimDuration, SimTime, Transaction,
};

const SEEDS: [u64; 3] = [7, 42, 2021];

/// A full-pipeline config: a million-client population issuing signed
/// requests into a sharded mempool.
fn pipeline_config(seed: u64) -> Config {
    Config::builder()
        .nodes(8)
        .block_size(50)
        .runtime(SimDuration::from_millis(100))
        .arrival_rate(4_000.0)
        .client_population(1_000_000)
        .signed_requests(true)
        .mempool_shards(4)
        .seed(seed)
        .build()
        .expect("valid config")
}

fn run(config: Config, protocol: ProtocolKind, threads: usize) -> RunReport {
    let options = RunOptions {
        threads,
        ..RunOptions::default()
    };
    SimRunner::new(config, protocol, options).run()
}

/// The signed-population pipeline stays layout-invariant: the arrival
/// stream, admission decisions and client latencies are identical whether
/// the engine runs inline or sharded across worker threads.
#[test]
fn signed_population_runs_are_identical_across_thread_counts() {
    for protocol in [ProtocolKind::HotStuff, ProtocolKind::TwoChainHotStuff] {
        for seed in SEEDS {
            let base = run(pipeline_config(seed), protocol, 1);
            assert!(
                base.committed_txs > 0,
                "{protocol} seed {seed}: baseline committed nothing"
            );
            assert_eq!(
                base.client_auth_rejections, 0,
                "honest clients are never rejected"
            );
            assert!(base.mempool.accepted > 0, "arrivals must reach the mempool");
            for threads in [2usize, 4] {
                let sharded = run(pipeline_config(seed), protocol, threads);
                let label = format!("{protocol} seed={seed} threads={threads}");
                assert_eq!(
                    base.ledger_fingerprint, sharded.ledger_fingerprint,
                    "{label}: ledger diverged"
                );
                assert_eq!(base.committed_txs, sharded.committed_txs, "{label}");
                assert_eq!(base.events_processed, sharded.events_processed, "{label}");
                assert_eq!(base.mempool, sharded.mempool, "{label}: admission diverged");
                assert_eq!(
                    base.client_auth_rejections, sharded.client_auth_rejections,
                    "{label}"
                );
                assert!(
                    (base.client_latency.mean_ms - sharded.client_latency.mean_ms).abs() < 1e-12,
                    "{label}: client latency diverged"
                );
            }
        }
    }
}

/// Offered load far above mempool capacity: the surplus must be rejected at
/// admission, counted in the report, and accounted for exactly — nothing is
/// silently dropped, and the counters are deterministic.
#[test]
fn admission_control_counts_overflow_without_losing_transactions() {
    let tiny = |seed: u64| {
        let mut config = pipeline_config(seed);
        config.mempool_size = 64;
        config.arrival_rate = Some(50_000.0);
        config
    };
    let report = run(tiny(7), ProtocolKind::HotStuff, 1);
    assert!(
        report.mempool.rejected > 0,
        "offered load above capacity must produce counted rejections"
    );
    assert!(
        report.committed_txs > 0,
        "admission control is not an outage"
    );
    // Every dispatch pops a previously accepted (or requeued) transaction.
    assert!(
        report.mempool.dispatched <= report.mempool.accepted + report.mempool.requeued,
        "dispatched {} exceeds admitted {} + requeued {}",
        report.mempool.dispatched,
        report.mempool.accepted,
        report.mempool.requeued
    );
    assert!(
        report.committed_txs <= report.mempool.dispatched,
        "commits can only come from dispatched transactions"
    );

    // The counters are part of the deterministic surface.
    let again = run(tiny(7), ProtocolKind::HotStuff, 1);
    assert_eq!(report.mempool, again.mempool);
    assert_eq!(report.committed_txs, again.committed_txs);

    // A generously sized pool under the same load rejects nothing.
    let mut roomy = pipeline_config(7);
    roomy.arrival_rate = Some(50_000.0);
    let unconstrained = run(roomy, ProtocolKind::HotStuff, 1);
    assert_eq!(unconstrained.mempool.rejected, 0);
    assert!(unconstrained.committed_txs >= report.committed_txs);
}

/// Client-observed latency (submit → commit) is reported alongside the
/// legacy end-to-end metric (submit → response received) and is strictly
/// the shorter of the two: it omits the commit-to-client response leg.
#[test]
fn client_latency_is_reported_and_excludes_the_response_leg() {
    let report = run(pipeline_config(7), ProtocolKind::HotStuff, 1);
    assert!(report.client_latency.mean_ms > 0.0);
    assert!(report.client_latency.p50_ms <= report.client_latency.p99_ms);
    assert!(
        report.client_latency.mean_ms < report.latency.mean_ms,
        "client latency {} must undercut end-to-end latency {}",
        report.client_latency.mean_ms,
        report.latency.mean_ms
    );
}

/// A forged client signature dies at the simulator-backend edge: the
/// replica's mempool never sees the transaction and the rejection is
/// counted, while honest requests in the same batch are salvaged.
#[test]
fn forged_client_requests_die_at_the_sim_edge() {
    let config = Config::builder()
        .nodes(4)
        .block_size(10)
        .signed_requests(true)
        .build()
        .unwrap();
    let mut host = NodeHost::new(
        NodeId(3),
        ProtocolKind::HotStuff,
        config,
        ReplicaOptions::default(),
    );
    let mut transport = BufferedTransport::new();
    host.start(SimTime::ZERO, &mut transport);

    let client = NodeId(CLIENT_ID_BASE + 5);
    let genuine = ClientRequest::signed(
        Transaction::new(client, 0, 8, SimTime(1_000)),
        &KeyPair::client_from_seed(client.as_u64()),
    );
    // Signed with a validator-style key instead of the client's derived key.
    let forged = ClientRequest::signed(
        Transaction::new(client, 1, 8, SimTime(1_000)),
        &KeyPair::from_seed(client.as_u64()),
    );
    let unsigned = ClientRequest::unsigned(Transaction::new(client, 2, 8, SimTime(1_000)));

    let report = host.handle_client_batch(
        vec![genuine, forged, unsigned],
        SimTime(2_000),
        &mut transport,
    );
    assert_eq!(host.client_auth_rejections(), 2);
    assert_eq!(
        host.replica().mempool_len(),
        1,
        "only the genuine request is admitted"
    );
    assert!(
        report.cpu > SimDuration::ZERO,
        "edge verification costs modeled CPU"
    );

    // An all-genuine batch takes the 4-wide fast path and rejects nothing.
    let clean: Vec<ClientRequest> = (0..8u64)
        .map(|seq| {
            ClientRequest::signed(
                Transaction::new(client, 10 + seq, 8, SimTime(3_000)),
                &KeyPair::client_from_seed(client.as_u64()),
            )
        })
        .collect();
    host.handle_client_batch(clean, SimTime(4_000), &mut transport);
    assert_eq!(host.client_auth_rejections(), 2, "no new rejections");
    assert_eq!(host.replica().mempool_len(), 9);
}

/// The same forgery dies at the threaded-backend edge: both runtimes route
/// client traffic through `NodeHost::handle_client_batch`, so the guarantee
/// and the counter are identical.
#[test]
fn forged_client_requests_die_at_the_threaded_edge() {
    let config = Config::builder()
        .nodes(4)
        .block_size(20)
        .timeout(SimDuration::from_millis(50))
        .signed_requests(true)
        .build()
        .unwrap();
    let cluster = ThreadedCluster::spawn(config, ProtocolKind::HotStuff);

    let client = NodeId(CLIENT_ID_BASE);
    let keypair = KeyPair::client_from_seed(client.as_u64());
    let wrong_key = KeyPair::client_from_seed(client.as_u64() + 1);
    for replica in 0..4u64 {
        let genuine: Vec<ClientRequest> = (0..100u64)
            .map(|i| {
                let tx = Transaction::new(client, replica * 1_000 + i, 16, SimTime::ZERO);
                ClientRequest::signed(tx, &keypair)
            })
            .collect();
        cluster.submit_requests(NodeId(replica), genuine);
        let forged: Vec<ClientRequest> = (0..4u64)
            .map(|i| {
                let tx = Transaction::new(client, 900_000 + replica * 100 + i, 16, SimTime::ZERO);
                ClientRequest::signed(tx, &wrong_key)
            })
            .collect();
        cluster.submit_requests(NodeId(replica), forged);
    }

    assert!(
        cluster.run_until_committed(40, Duration::from_secs(20)),
        "cluster committed {} txs before the deadline",
        cluster.committed_txs()
    );
    let report = cluster.shutdown();
    assert_eq!(
        report.client_auth_rejections, 16,
        "every forged request is rejected at the edge, nothing else"
    );
    assert_eq!(report.auth_rejections, 0, "replica traffic is all honest");
    assert!(report.ledgers_consistent);
    assert_eq!(report.safety_violations, 0);
}

//! A minimal JSON document model and pretty-printer.
//!
//! The bench artifacts only need to be *written*, never parsed, so instead of
//! an external serialisation framework the harness builds [`Json`] values
//! explicitly and renders them. The [`ToJson`] trait is implemented for the
//! report types the benches serialise.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number. Non-finite values render as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(fields: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Renders the value as pretty-printed JSON (two-space indent).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, 0);
        out.push('\n');
        out
    }

    fn render(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    // JSON has no Infinity/NaN literal.
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    item.render(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    escape_into(key, out);
                    out.push_str(": ");
                    value.render(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

/// Conversion into a [`Json`] document.
pub trait ToJson {
    /// Renders `self` as a JSON value.
    fn to_json(&self) -> Json;
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::arr(self.iter().map(ToJson::to_json))
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::arr(self.iter().map(ToJson::to_json))
    }
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let doc = Json::obj([
            ("name", Json::from("bench")),
            ("ok", Json::from(true)),
            ("points", Json::arr([Json::from(1.5), Json::from(2u64)])),
            ("nothing", Json::Null),
        ]);
        let text = doc.render_pretty();
        assert!(text.contains("\"name\": \"bench\""));
        assert!(text.contains("\"ok\": true"));
        assert!(text.contains("1.5"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings() {
        let doc = Json::from("a\"b\\c\nd");
        assert_eq!(doc.render_pretty(), "\"a\\\"b\\\\c\\nd\"\n");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::INFINITY).render_pretty(), "null\n");
        assert_eq!(Json::Num(f64::NAN).render_pretty(), "null\n");
    }

    #[test]
    fn empty_collections_are_compact() {
        assert_eq!(Json::arr([]).render_pretty(), "[]\n");
        assert_eq!(Json::obj::<String>([]).render_pretty(), "{}\n");
    }
}

//! A small wall-clock micro-benchmark harness.
//!
//! Replaces the external `criterion` dependency for the component
//! micro-benches: auto-calibrating warm-up, a fixed measurement budget, and
//! nanoseconds-per-iteration output that can be saved as a JSON artifact.

use std::hint::black_box;
use std::time::{Duration, Instant};

use bamboo_types::{Json, ToJson};

/// One micro-benchmark measurement.
#[derive(Clone, Debug)]
pub struct MicroResult {
    /// Benchmark name.
    pub name: String,
    /// The measured value, in `unit`. For the default `"ns_per_iter"` unit
    /// this is mean wall-clock nanoseconds per iteration (lower is better);
    /// rate-style units such as `"events_per_sec"` invert the direction
    /// (higher is better) — the bench-diff tool uses `unit` to orient its
    /// regression check.
    pub value: f64,
    /// Number of measured iterations.
    pub iters: u64,
    /// Unit of `value`; serialised both as the value's JSON key and as a
    /// `unit` field so older snapshots (implicitly `ns_per_iter`) still diff.
    pub unit: &'static str,
}

impl MicroResult {
    /// Whether a larger `value` means better performance for this unit.
    pub fn higher_is_better(&self) -> bool {
        self.unit.ends_with("per_sec")
    }
}

impl ToJson for MicroResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::from(self.name.as_str())),
            (self.unit, Json::from(self.value)),
            ("iters", Json::from(self.iters)),
            ("unit", Json::from(self.unit)),
        ])
    }
}

const WARMUP: Duration = Duration::from_millis(50);
const MEASURE: Duration = Duration::from_millis(300);

/// Measures `op` and prints one aligned result line.
pub fn bench<R>(name: &str, mut op: impl FnMut() -> R) -> MicroResult {
    // Warm-up: let caches, branch predictors and allocator settle.
    let warmup_end = Instant::now() + WARMUP;
    while Instant::now() < warmup_end {
        black_box(op());
    }
    // Measurement: batch iterations between clock reads to amortise timer
    // overhead for very fast operations.
    let mut iters: u64 = 0;
    let mut batch: u64 = 1;
    let mut elapsed = Duration::ZERO;
    while elapsed < MEASURE {
        let start = Instant::now();
        for _ in 0..batch {
            black_box(op());
        }
        elapsed += start.elapsed();
        iters += batch;
        // Grow the batch until one batch costs about a millisecond.
        if start.elapsed() < Duration::from_millis(1) && batch < (1 << 20) {
            batch *= 2;
        }
    }
    finish(name, elapsed, iters)
}

/// Measures `routine` applied to a fresh value from `setup` per iteration;
/// only the routine is timed (the analogue of criterion's `iter_batched`).
pub fn bench_with_setup<S, R>(
    name: &str,
    mut setup: impl FnMut() -> S,
    mut routine: impl FnMut(S) -> R,
) -> MicroResult {
    let warmup_end = Instant::now() + WARMUP;
    while Instant::now() < warmup_end {
        let input = setup();
        black_box(routine(input));
    }
    let mut iters: u64 = 0;
    let mut elapsed = Duration::ZERO;
    while elapsed < MEASURE {
        let input = setup();
        let start = Instant::now();
        let output = routine(input);
        elapsed += start.elapsed();
        black_box(output);
        iters += 1;
    }
    finish(name, elapsed, iters)
}

fn finish(name: &str, elapsed: Duration, iters: u64) -> MicroResult {
    let ns_per_iter = elapsed.as_nanos() as f64 / iters.max(1) as f64;
    println!("{name:<36} {:>14.1} ns/iter   ({iters} iters)", ns_per_iter);
    MicroResult {
        name: name.to_string(),
        value: ns_per_iter,
        iters,
        unit: "ns_per_iter",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_something_positive() {
        let result = bench("noop_add", || std::hint::black_box(1u64) + 1);
        assert!(result.value > 0.0);
        assert!(result.iters > 0);
        assert!(!result.higher_is_better(), "ns_per_iter: lower is better");
    }

    #[test]
    fn bench_with_setup_times_only_the_routine() {
        let result = bench_with_setup("sum_vec", || vec![1u64; 64], |v| v.iter().sum::<u64>());
        assert!(result.value > 0.0);
        // Summing 64 integers is far below a microsecond; if setup were
        // included the per-iteration cost would be dominated by the allocation.
        assert!(result.value < 100_000.0);
    }

    #[test]
    fn rate_units_flip_the_regression_direction() {
        let rate = MicroResult {
            name: "x_per_sec".into(),
            value: 10.0,
            iters: 1,
            unit: "events_per_sec",
        };
        assert!(rate.higher_is_better());
        let json = rate.to_json().render_pretty();
        assert!(json.contains("\"events_per_sec\": 10"));
        assert!(json.contains("\"unit\": \"events_per_sec\""));
    }
}

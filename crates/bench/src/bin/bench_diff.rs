//! Compares fresh bench artifacts against the latest committed
//! `BENCH_*.json` snapshot and annotates regressions.
//!
//! Two artifacts are diffed when present under `target/bamboo-bench/`:
//!
//! * `micro_components.json` — per-micro values; rate-style micros (unit
//!   ending in `per_sec`) regress *downwards*, everything else (ns/iter)
//!   upwards;
//! * `scalability_large_n.json` — per-point committed throughput keyed by
//!   `protocol/nodes` (with a `/tN` suffix for parallel-engine points, so a
//!   multi-thread run is only ever compared against a baseline measured at
//!   the *same* thread count), plus the engine's aggregate events/s; both
//!   regress downwards;
//! * `thread_scaling.json` — the parallel engine's events/s per thread
//!   count, keyed `protocol/nN/tT`. Thread counts are never cross-compared;
//!   a multi-thread point whose artifact carries no ledger fingerprint is
//!   flagged, since without one the speedup is unaccompanied by its
//!   determinism proof;
//! * `saturation.json` — the open-loop client-pipeline sweep: per load
//!   point (keyed `protocol/nN/oRATE`, never cross-compared) committed
//!   goodput regresses *downwards* and client-observed p99 latency
//!   *upwards*;
//! * `scenario_reports.json` — the recovery series: per-run
//!   `recovery_time_ms` (worst-case amnesia catch-up) keyed by
//!   `scenario/protocol`, for runs that actually scheduled amnesia
//!   recoveries, plus `log_replay_ms` (worst-case durable-log replay,
//!   keyed `scenario/protocol log_replay`) for runs with durable
//!   restarts. Both are latencies, so they regress *upwards*;
//! * `tcp_smoke.json` — the loopback multi-process TCP run, keyed
//!   `protocol/nN/mode` so unlike points never cross-compare: committed
//!   throughput regresses *downwards*, status-probe round-trip latency
//!   (p50/p99) *upwards*, and reconnect counts *upwards* (a healthy
//!   loopback run never reconnects, so the comparison is absolute, not a
//!   ratio).
//!
//! Non-gating by design: shared-runner numbers are noisy, so the tool always
//! exits 0 — it prints aligned diff tables and emits GitHub `::warning::`
//! annotations for entries that regressed by more than 20%, making drifts
//! visible on the PR without blocking it. Artifacts that exist but cannot
//! be compared — unparsable JSON, a recognized file whose shape yields no
//! rows, or a file no differ knows about — are never skipped silently: each
//! gets a `::notice::` annotation naming the file.
//!
//! Usage: `cargo run --release -p bamboo-bench --bin bench_diff`
//! (after `cargo bench -p bamboo-bench --bench micro_components` and/or
//! `--bench scalability_large_n`).

use std::path::{Path, PathBuf};

use bamboo_bench::{results_dir, Json};

/// Regression threshold: fraction of the snapshot value.
const THRESHOLD: f64 = 0.20;

/// Every artifact filename the differs below know how to read. Anything
/// else under `target/bamboo-bench/` gets a `::notice::` instead of being
/// silently ignored.
const KNOWN_ARTIFACTS: [&str; 6] = [
    "micro_components.json",
    "scalability_large_n.json",
    "thread_scaling.json",
    "saturation.json",
    "scenario_reports.json",
    "tcp_smoke.json",
];

/// `::notice::` annotation naming a skipped artifact. A silently dropped
/// file reads as "diffed clean" on the PR when it was never compared at
/// all; the notice makes the gap visible without failing anything.
fn notice_skipped(path: &Path, reason: &str) {
    println!("::notice::bench-diff skipped {}: {reason}", path.display());
}

/// Surfaces every `*.json` in the results directory that no differ reads.
fn notice_unknown_artifacts() {
    let Ok(entries) = std::fs::read_dir(results_dir()) else {
        return;
    };
    let mut unknown: Vec<PathBuf> = entries
        .filter_map(|entry| entry.ok())
        .map(|entry| entry.path())
        .filter(|path| path.extension().is_some_and(|e| e == "json"))
        .filter(|path| {
            !path.file_name().and_then(|n| n.to_str()).is_some_and(|n| {
                // Paper-reproduction figures/tables are point-in-time
                // artifacts, deliberately outside the regression diff.
                KNOWN_ARTIFACTS.contains(&n) || n.starts_with("fig") || n.starts_with("table")
            })
        })
        .collect();
    unknown.sort();
    for path in unknown {
        notice_skipped(&path, "no differ recognizes this artifact");
    }
}

/// `(value, unit)` of one micro entry. The value's JSON key is its unit;
/// entries without a `unit` field are legacy `ns_per_iter` measurements.
fn entry_value(entry: &Json) -> Option<(f64, String)> {
    let unit = entry
        .get("unit")
        .and_then(Json::as_str)
        .unwrap_or("ns_per_iter")
        .to_string();
    let value = entry
        .get(&unit)
        .or_else(|| entry.get("ns_per_iter"))
        .and_then(Json::as_f64)?;
    Some((value, unit))
}

fn micro_entries(doc: &Json, nested: bool) -> Vec<(String, f64, String)> {
    let array = if nested {
        doc.get("benches")
            .and_then(|b| b.get("micro_components"))
            .and_then(Json::as_array)
    } else {
        doc.as_array()
    };
    array
        .unwrap_or(&[])
        .iter()
        .filter_map(|entry| {
            let name = entry.get("name")?.as_str()?.to_string();
            let (value, unit) = entry_value(entry)?;
            Some((name, value, unit))
        })
        .collect()
}

/// Orders snapshots oldest-first: `BENCH_baseline` before `BENCH_pr2` before
/// `BENCH_pr10` (numeric PR order, not lexicographic).
fn snapshot_rank(path: &Path) -> u64 {
    let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("");
    stem.strip_prefix("BENCH_pr")
        .and_then(|n| n.parse::<u64>().ok())
        .map(|n| n + 1)
        .unwrap_or(0)
}

fn latest_snapshot(root: &Path) -> Option<PathBuf> {
    let mut snapshots: Vec<PathBuf> = std::fs::read_dir(root)
        .ok()?
        .filter_map(|entry| entry.ok())
        .map(|entry| entry.path())
        .filter(|path| {
            path.extension().is_some_and(|e| e == "json")
                && path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("BENCH_"))
        })
        .collect();
    snapshots.sort_by_key(|p| snapshot_rank(p));
    snapshots.pop()
}

/// `(key, throughput, events_per_sec?)` rows of a scalability artifact.
/// Accepts both the flat-array shape of older snapshots and the
/// `{points, events_per_sec}` object shape newer artifacts use.
fn scalability_entries(doc: &Json) -> (Vec<(String, f64)>, Option<f64>) {
    let (points, rate) = match doc.get("points") {
        Some(points) => (
            points.as_array(),
            doc.get("events_per_sec").and_then(Json::as_f64),
        ),
        None => (doc.as_array(), None),
    };
    let rows = points
        .unwrap_or(&[])
        .iter()
        .filter_map(|point| {
            let protocol = point.get("protocol")?.as_str()?;
            let nodes = point.get("nodes")?.as_f64()?;
            let throughput = point.get("throughput_tx_per_sec")?.as_f64()?;
            // Parallel-engine points carry a `/tN` suffix so they only match
            // a baseline measured at the same thread count; single-thread
            // points keep the bare key older snapshots recorded.
            let threads = point.get("threads").and_then(Json::as_f64).unwrap_or(1.0) as u64;
            let suffix = if threads > 1 {
                format!("/t{threads}")
            } else {
                String::new()
            };
            Some((format!("{protocol}/n{nodes:.0}{suffix}"), throughput))
        })
        .collect();
    (rows, rate)
}

/// `(key, events_per_sec, has_fingerprint, threads)` rows of a
/// thread-scaling artifact.
fn thread_scaling_entries(doc: &Json) -> Vec<(String, f64, bool, u64)> {
    let protocol = doc
        .get("protocol")
        .and_then(Json::as_str)
        .unwrap_or("?")
        .to_string();
    let nodes = doc.get("nodes").and_then(Json::as_f64).unwrap_or(0.0);
    doc.get("points")
        .and_then(Json::as_array)
        .unwrap_or(&[])
        .iter()
        .filter_map(|point| {
            let threads = point.get("threads")?.as_f64()? as u64;
            let rate = point.get("events_per_sec")?.as_f64()?;
            let has_fp = point
                .get("fingerprint")
                .and_then(Json::as_str)
                .is_some_and(|fp| !fp.is_empty());
            Some((
                format!("{protocol}/n{nodes:.0}/t{threads}"),
                rate,
                has_fp,
                threads,
            ))
        })
        .collect()
}

fn diff_thread_scaling(snapshot: &Json, snapshot_name: &str) -> usize {
    let fresh_path = results_dir().join("thread_scaling.json");
    let Ok(fresh_text) = std::fs::read_to_string(&fresh_path) else {
        println!("\nbench-diff: no fresh thread_scaling artifact; skipping that diff");
        return 0;
    };
    let Ok(fresh) = Json::parse(&fresh_text) else {
        notice_skipped(&fresh_path, "unparsable JSON");
        return 0;
    };
    let fresh_rows = thread_scaling_entries(&fresh);
    if fresh_rows.is_empty() {
        notice_skipped(&fresh_path, "unrecognized shape (no thread-scaling rows)");
        return 0;
    }
    // The speedup claim is only as good as its determinism proof: flag any
    // parallel point shipped without the ledger fingerprint that ties it to
    // the single-thread run.
    for (key, _, has_fp, threads) in &fresh_rows {
        if *threads > 1 && !has_fp {
            println!(
                "::warning::thread-scaling point '{key}' has no ledger fingerprint — \
                 parallel speedup without its determinism proof"
            );
        }
    }
    let base_rows: Vec<(String, f64, bool, u64)> = snapshot
        .get("benches")
        .and_then(|b| b.get("thread_scaling"))
        .map(thread_scaling_entries)
        .unwrap_or_default();
    println!(
        "\nbench-diff: thread_scaling vs {snapshot_name} ({} baseline points)",
        base_rows.len()
    );
    println!(
        "{:<36} {:>14} {:>14} {:>9}",
        "point (engine events/s)", "baseline", "fresh", "delta"
    );
    let mut regressions = 0usize;
    for (key, value, _, _) in &fresh_rows {
        // Same-key comparison only: a t4 point diffs against the snapshot's
        // t4 point, never against t1 — thread counts measure different
        // parallelism, not a regression.
        let Some((_, base, _, _)) = base_rows.iter().find(|(k, _, _, _)| k == key) else {
            println!("{key:<36} {:>14} {value:>14.1} {:>9}", "(new)", "-");
            continue;
        };
        regressions += diff_rate_row(key, *base, *value, "events/s", snapshot_name);
    }
    regressions
}

/// Prints one comparison row and emits the `::warning::` annotation when a
/// lower `value` than `base` crosses the threshold. Returns 1 on regression.
fn diff_rate_row(label: &str, base: f64, value: f64, unit: &str, snapshot: &str) -> usize {
    if base <= 0.0 {
        // A zero baseline (e.g. the deliberately sub-commit-latency
        // Streamlet windows) has no meaningful ratio.
        println!("{label:<36} {base:>14.1} {value:>14.1} {:>9}", "-");
        return 0;
    }
    let delta = (value - base) / base;
    let regressed = delta < -THRESHOLD;
    let marker = if regressed { "  <-- regression" } else { "" };
    println!(
        "{label:<36} {base:>14.1} {value:>14.1} {:>+8.1}%{marker}",
        delta * 100.0
    );
    if regressed {
        println!(
            "::warning::'{label}' regressed {:+.1}% vs {snapshot} ({base:.1} -> {value:.1} {unit})",
            delta * 100.0
        );
        1
    } else {
        0
    }
}

/// `(key, goodput, client_p99_ms)` rows of a saturation artifact, keyed
/// `protocol/nN/oRATE` so a load point only ever diffs against the same
/// offered load of the same cluster size.
fn saturation_entries(doc: &Json) -> Vec<(String, f64, f64)> {
    let nodes = doc.get("nodes").and_then(Json::as_f64).unwrap_or(0.0);
    doc.get("sweeps")
        .and_then(Json::as_array)
        .unwrap_or(&[])
        .iter()
        .filter_map(|sweep| {
            let protocol = sweep.get("protocol")?.as_str()?.to_string();
            let points = sweep.get("points")?.as_array()?;
            Some((protocol, points))
        })
        .flat_map(|(protocol, points)| {
            points
                .iter()
                .filter_map(move |point| {
                    let offered = point.get("offered_tx_per_sec")?.as_f64()?;
                    let goodput = point.get("goodput_tx_per_sec")?.as_f64()?;
                    let p99 = point.get("client_p99_ms")?.as_f64()?;
                    Some((
                        format!("{protocol}/n{nodes:.0}/o{offered:.0}"),
                        goodput,
                        p99,
                    ))
                })
                .collect::<Vec<_>>()
        })
        .collect()
}

fn diff_saturation(snapshot: &Json, snapshot_name: &str) -> usize {
    let fresh_path = results_dir().join("saturation.json");
    let Ok(fresh_text) = std::fs::read_to_string(&fresh_path) else {
        println!("\nbench-diff: no fresh saturation artifact; skipping that diff");
        return 0;
    };
    let Ok(fresh) = Json::parse(&fresh_text) else {
        notice_skipped(&fresh_path, "unparsable JSON");
        return 0;
    };
    let fresh_rows = saturation_entries(&fresh);
    if fresh_rows.is_empty() {
        notice_skipped(
            &fresh_path,
            "unrecognized shape (no saturation load points)",
        );
        return 0;
    }
    let base_rows: Vec<(String, f64, f64)> = snapshot
        .get("benches")
        .and_then(|b| b.get("saturation"))
        .map(saturation_entries)
        .unwrap_or_default();
    println!(
        "\nbench-diff: saturation vs {snapshot_name} ({} baseline points)",
        base_rows.len()
    );
    println!(
        "{:<36} {:>14} {:>14} {:>9}",
        "point (goodput tx/s | p99 ms)", "baseline", "fresh", "delta"
    );
    let mut regressions = 0usize;
    for (key, goodput, p99) in &fresh_rows {
        let Some((_, base_goodput, base_p99)) = base_rows.iter().find(|(k, _, _)| k == key) else {
            println!("{key:<36} {:>14} {goodput:>14.1} {:>9}", "(new)", "-");
            continue;
        };
        // Goodput is a rate: losing it is the regression.
        regressions += diff_rate_row(key, *base_goodput, *goodput, "tx/s", snapshot_name);
        // Client p99 is a latency: growing it is the regression.
        if *base_p99 > 0.0 {
            let delta = (p99 - base_p99) / base_p99;
            let regressed = delta > THRESHOLD;
            let label = format!("{key} p99");
            let marker = if regressed { "  <-- regression" } else { "" };
            println!(
                "{label:<36} {base_p99:>14.1} {p99:>14.1} {:>+8.1}%{marker}",
                delta * 100.0
            );
            if regressed {
                println!(
                    "::warning::saturation '{label}' regressed {:+.1}% vs {snapshot_name} \
                     ({base_p99:.1} -> {p99:.1} ms)",
                    delta * 100.0
                );
                regressions += 1;
            }
        }
    }
    regressions
}

/// Recovery-latency rows of a scenario-reports artifact. Each run that
/// scheduled at least one recovery contributes its worst-case catch-up time
/// (`recovery_time_ms`); runs with durable restarts additionally contribute
/// the worst-case log-replay time (`… log_replay` rows). Runs without any
/// recovery have vacuous zeros that would only add noise, so they are
/// skipped. Both metrics are latencies: growing is the regression.
fn recovery_entries(doc: &Json) -> Vec<(String, f64)> {
    doc.as_array()
        .unwrap_or(&[])
        .iter()
        .filter_map(|scenario| {
            let name = scenario.get("name")?.as_str()?;
            let runs = scenario.get("runs")?.as_array()?;
            Some((name.to_string(), runs))
        })
        .flat_map(|(name, runs)| {
            runs.iter()
                .filter_map(move |run| {
                    let protocol = run.get("protocol")?.as_str()?;
                    let recovery = run.get("report")?.get("recovery")?;
                    let recoveries = recovery.get("amnesia_recoveries")?.as_f64()?;
                    if recoveries <= 0.0 {
                        return None;
                    }
                    let time = recovery.get("recovery_time_ms")?.as_f64()?;
                    let mut rows = vec![(format!("{name}/{protocol}"), time)];
                    let durable = recovery
                        .get("durable_restarts")
                        .and_then(Json::as_f64)
                        .unwrap_or(0.0);
                    if durable > 0.0 {
                        if let Some(replay) = recovery.get("log_replay_ms").and_then(Json::as_f64) {
                            rows.push((format!("{name}/{protocol} log_replay"), replay));
                        }
                    }
                    Some(rows)
                })
                .flatten()
                .collect::<Vec<_>>()
        })
        .collect()
}

fn diff_recovery(snapshot: &Json, snapshot_name: &str) -> usize {
    let fresh_path = results_dir().join("scenario_reports.json");
    let Ok(fresh_text) = std::fs::read_to_string(&fresh_path) else {
        println!("\nbench-diff: no fresh scenario_reports artifact; skipping the recovery diff");
        return 0;
    };
    let Ok(fresh) = Json::parse(&fresh_text) else {
        notice_skipped(&fresh_path, "unparsable JSON");
        return 0;
    };
    if fresh.as_array().is_none() {
        notice_skipped(
            &fresh_path,
            "unrecognized shape (not a scenario-report array)",
        );
        return 0;
    }
    let fresh_rows = recovery_entries(&fresh);
    if fresh_rows.is_empty() {
        // Zero rows from a well-shaped report array just means no run
        // scheduled an amnesia recovery — expected for most suites.
        println!("\nbench-diff: no amnesia recoveries in the fresh scenario reports; skipping");
        return 0;
    }
    let base_rows: Vec<(String, f64)> = snapshot
        .get("benches")
        .and_then(|b| b.get("scenario_reports"))
        .map(recovery_entries)
        .unwrap_or_default();
    println!(
        "\nbench-diff: recovery latencies vs {snapshot_name} ({} baseline points)",
        base_rows.len()
    );
    println!(
        "{:<36} {:>14} {:>14} {:>9}",
        "run (recovery / log-replay ms)", "baseline", "fresh", "delta"
    );
    let mut regressions = 0usize;
    for (key, value) in &fresh_rows {
        let Some((_, base)) = base_rows.iter().find(|(k, _)| k == key) else {
            println!("{key:<36} {:>14} {value:>14.1} {:>9}", "(new)", "-");
            continue;
        };
        if *base <= 0.0 {
            println!("{key:<36} {base:>14.1} {value:>14.1} {:>9}", "-");
            continue;
        }
        // Catch-up time is a latency: slower recovery is the regression.
        let delta = (value - base) / base;
        let regressed = delta > THRESHOLD;
        let marker = if regressed { "  <-- regression" } else { "" };
        println!(
            "{key:<36} {base:>14.1} {value:>14.1} {:>+8.1}%{marker}",
            delta * 100.0
        );
        if regressed {
            println!(
                "::warning::recovery '{key}' regressed {:+.1}% vs {snapshot_name} \
                 ({base:.1} -> {value:.1} ms)",
                delta * 100.0
            );
            regressions += 1;
        }
    }
    regressions
}

fn diff_scalability(snapshot: &Json, snapshot_name: &str) -> usize {
    let fresh_path = results_dir().join("scalability_large_n.json");
    let Ok(fresh_text) = std::fs::read_to_string(&fresh_path) else {
        println!("\nbench-diff: no fresh scalability_large_n artifact; skipping that diff");
        return 0;
    };
    let Ok(fresh) = Json::parse(&fresh_text) else {
        notice_skipped(&fresh_path, "unparsable JSON");
        return 0;
    };
    let Some(snapshot_doc) = snapshot
        .get("benches")
        .and_then(|b| b.get("scalability_large_n"))
    else {
        println!("\nbench-diff: {snapshot_name} has no scalability_large_n section; skipping");
        return 0;
    };
    let (base_rows, base_rate) = scalability_entries(snapshot_doc);
    let (fresh_rows, fresh_rate) = scalability_entries(&fresh);
    if fresh_rows.is_empty() && fresh_rate.is_none() {
        notice_skipped(&fresh_path, "unrecognized shape (no scalability points)");
        return 0;
    }
    println!(
        "\nbench-diff: scalability_large_n vs {snapshot_name} ({} baseline points)",
        base_rows.len()
    );
    println!(
        "{:<36} {:>14} {:>14} {:>9}",
        "point (throughput tx/s)", "baseline", "fresh", "delta"
    );
    let mut regressions = 0usize;
    for (key, value) in &fresh_rows {
        let Some((_, base)) = base_rows.iter().find(|(k, _)| k == key) else {
            println!("{key:<36} {:>14} {value:>14.1} {:>9}", "(new)", "-");
            continue;
        };
        regressions += diff_rate_row(key, *base, *value, "tx/s", snapshot_name);
    }
    match (base_rate, fresh_rate) {
        (Some(base), Some(fresh)) => {
            regressions += diff_rate_row(
                "engine events_per_sec",
                base,
                fresh,
                "events/s",
                snapshot_name,
            );
        }
        (None, Some(fresh)) => {
            println!(
                "{:<36} {:>14} {fresh:>14.1} {:>9}",
                "engine events_per_sec", "(new)", "-"
            );
        }
        _ => {}
    }
    regressions
}

/// `(key, throughput, rtt_p50_us, rtt_p99_us, reconnects)` rows of a
/// tcp_smoke artifact, keyed `protocol/nN/mode` so a loopback process-mode
/// point only ever diffs against the same protocol, cluster size, and mode.
/// Accepts a single run object or an array of them.
fn tcp_smoke_entries(doc: &Json) -> Vec<(String, f64, f64, f64, f64)> {
    let runs: Vec<&Json> = match doc.as_array() {
        Some(items) => items.iter().collect(),
        None => vec![doc],
    };
    runs.into_iter()
        .filter_map(|run| {
            let protocol = run.get("protocol")?.as_str()?;
            let nodes = run.get("nodes")?.as_f64()?;
            let mode = run.get("mode")?.as_str()?;
            let throughput = run.get("throughput_tx_per_sec")?.as_f64()?;
            let rtt = run.get("status_rtt_us")?;
            let p50 = rtt.get("p50")?.as_f64()?;
            let p99 = rtt.get("p99")?.as_f64()?;
            let reconnects = run.get("reconnects")?.as_f64()?;
            Some((
                format!("{protocol}/n{nodes:.0}/{mode}"),
                throughput,
                p50,
                p99,
                reconnects,
            ))
        })
        .collect()
}

fn diff_tcp_smoke(snapshot: &Json, snapshot_name: &str) -> usize {
    let fresh_path = results_dir().join("tcp_smoke.json");
    let Ok(fresh_text) = std::fs::read_to_string(&fresh_path) else {
        println!("\nbench-diff: no fresh tcp_smoke artifact; skipping that diff");
        return 0;
    };
    let Ok(fresh) = Json::parse(&fresh_text) else {
        notice_skipped(&fresh_path, "unparsable JSON");
        return 0;
    };
    let fresh_rows = tcp_smoke_entries(&fresh);
    if fresh_rows.is_empty() {
        notice_skipped(&fresh_path, "unrecognized shape (no tcp_smoke runs)");
        return 0;
    }
    let base_rows: Vec<(String, f64, f64, f64, f64)> = snapshot
        .get("benches")
        .and_then(|b| b.get("tcp_smoke"))
        .map(tcp_smoke_entries)
        .unwrap_or_default();
    println!(
        "\nbench-diff: tcp_smoke vs {snapshot_name} ({} baseline points)",
        base_rows.len()
    );
    println!(
        "{:<36} {:>14} {:>14} {:>9}",
        "point (tx/s | rtt us | reconnects)", "baseline", "fresh", "delta"
    );
    let mut regressions = 0usize;
    for (key, throughput, p50, p99, reconnects) in &fresh_rows {
        let Some((_, base_tp, base_p50, base_p99, base_rc)) =
            base_rows.iter().find(|(k, ..)| k == key)
        else {
            println!("{key:<36} {:>14} {throughput:>14.1} {:>9}", "(new)", "-");
            continue;
        };
        // Committed throughput is a rate: losing it is the regression.
        regressions += diff_rate_row(key, *base_tp, *throughput, "tx/s", snapshot_name);
        // Status round trips are latencies: growing is the regression.
        for (metric, base, value) in [("rtt_p50", base_p50, p50), ("rtt_p99", base_p99, p99)] {
            if *base <= 0.0 {
                continue;
            }
            let delta = (value - base) / base;
            let regressed = delta > THRESHOLD;
            let label = format!("{key} {metric}");
            let marker = if regressed { "  <-- regression" } else { "" };
            println!(
                "{label:<36} {base:>14.1} {value:>14.1} {:>+8.1}%{marker}",
                delta * 100.0
            );
            if regressed {
                println!(
                    "::warning::tcp_smoke '{label}' regressed {:+.1}% vs {snapshot_name} \
                     ({base:.1} -> {value:.1} us)",
                    delta * 100.0
                );
                regressions += 1;
            }
        }
        // Reconnects on healthy loopback are zero, so a ratio is
        // meaningless: any count above the baseline means links flapped.
        let label = format!("{key} reconnects");
        let regressed = reconnects > base_rc;
        let marker = if regressed { "  <-- regression" } else { "" };
        println!(
            "{label:<36} {base_rc:>14.1} {reconnects:>14.1} {:>9}{marker}",
            "-"
        );
        if regressed {
            println!(
                "::warning::tcp_smoke '{label}' rose vs {snapshot_name} \
                 ({base_rc:.0} -> {reconnects:.0} reconnects)"
            );
            regressions += 1;
        }
    }
    regressions
}

fn main() {
    let fresh_path = results_dir().join("micro_components.json");
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let Some(snapshot_path) = latest_snapshot(&root) else {
        println!("bench-diff: no BENCH_*.json snapshot found; nothing to compare");
        return;
    };
    let snapshot_text = match std::fs::read_to_string(&snapshot_path) {
        Ok(text) => text,
        Err(err) => {
            println!("bench-diff: cannot read {}: {err}", snapshot_path.display());
            return;
        }
    };
    let Ok(snapshot) = Json::parse(&snapshot_text) else {
        println!(
            "bench-diff: unparsable snapshot {}",
            snapshot_path.display()
        );
        return;
    };
    let snapshot_name = snapshot_path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("?")
        .to_string();

    let Ok(fresh_text) = std::fs::read_to_string(&fresh_path) else {
        println!(
            "bench-diff: no fresh artifact at {} (run the micro_components bench first)",
            fresh_path.display()
        );
        // The sweep artifacts may still exist (nightly runs).
        diff_scalability(&snapshot, &snapshot_name);
        diff_thread_scaling(&snapshot, &snapshot_name);
        diff_saturation(&snapshot, &snapshot_name);
        diff_recovery(&snapshot, &snapshot_name);
        diff_tcp_smoke(&snapshot, &snapshot_name);
        notice_unknown_artifacts();
        return;
    };
    let Ok(fresh) = Json::parse(&fresh_text) else {
        notice_skipped(&fresh_path, "unparsable JSON");
        return;
    };

    let baseline = micro_entries(&snapshot, true);
    println!(
        "bench-diff: fresh run vs {snapshot_name} ({} baseline micros)",
        baseline.len()
    );
    println!(
        "{:<36} {:>14} {:>14} {:>9}",
        "name", "baseline", "fresh", "delta"
    );

    let mut regressions = 0usize;
    for (name, value, unit) in micro_entries(&fresh, false) {
        let Some((base, base_unit)) = baseline
            .iter()
            .find(|(n, _, _)| *n == name)
            .map(|(_, v, u)| (*v, u.clone()))
        else {
            println!("{name:<36} {:>14} {value:>14.1} {:>9}", "(new)", "-");
            continue;
        };
        if base_unit != unit {
            // A micro that changed unit between snapshots cannot be compared
            // numerically; treat it like a new entry rather than computing a
            // meaningless cross-unit ratio.
            println!(
                "{name:<36} {:>14} {value:>14.1} {:>9}  (unit changed: {base_unit} -> {unit})",
                "(unit)", "-"
            );
            continue;
        }
        let delta = (value - base) / base;
        let higher_is_better = unit.ends_with("per_sec");
        let regressed = if higher_is_better {
            delta < -THRESHOLD
        } else {
            delta > THRESHOLD
        };
        let marker = if regressed { "  <-- regression" } else { "" };
        println!(
            "{name:<36} {base:>14.1} {value:>14.1} {:>+8.1}%{marker}",
            delta * 100.0
        );
        if regressed {
            regressions += 1;
            // GitHub Actions annotation; inert when run locally.
            println!(
                "::warning::micro '{name}' regressed {:+.1}% vs {snapshot_name} ({base:.1} -> {value:.1} {unit})",
                delta * 100.0,
            );
        }
    }

    regressions += diff_scalability(&snapshot, &snapshot_name);
    regressions += diff_thread_scaling(&snapshot, &snapshot_name);
    regressions += diff_saturation(&snapshot, &snapshot_name);
    regressions += diff_recovery(&snapshot, &snapshot_name);
    regressions += diff_tcp_smoke(&snapshot, &snapshot_name);
    notice_unknown_artifacts();

    if regressions == 0 {
        println!(
            "bench-diff: no regressions beyond {:.0}%",
            THRESHOLD * 100.0
        );
    } else {
        println!(
            "bench-diff: {regressions} entr(y/ies) regressed beyond {:.0}% (non-gating)",
            THRESHOLD * 100.0
        );
    }
}

//! Compares a fresh `micro_components` bench run against the latest
//! committed `BENCH_*.json` snapshot and annotates regressions.
//!
//! Non-gating by design: shared-runner numbers are noisy, so the tool always
//! exits 0 — it prints an aligned diff table and emits GitHub `::warning::`
//! annotations for micros that regressed by more than 20%, making drifts
//! visible on the PR without blocking it. Rate-style micros (unit ending in
//! `per_sec`) regress *downwards*; everything else (ns/iter) regresses
//! upwards.
//!
//! Usage: `cargo run --release -p bamboo-bench --bin bench_diff`
//! (after `cargo bench -p bamboo-bench --bench micro_components`).

use std::path::{Path, PathBuf};

use bamboo_bench::{results_dir, Json};

/// Regression threshold: fraction of the snapshot value.
const THRESHOLD: f64 = 0.20;

/// `(value, unit)` of one micro entry. The value's JSON key is its unit;
/// entries without a `unit` field are legacy `ns_per_iter` measurements.
fn entry_value(entry: &Json) -> Option<(f64, String)> {
    let unit = entry
        .get("unit")
        .and_then(Json::as_str)
        .unwrap_or("ns_per_iter")
        .to_string();
    let value = entry
        .get(&unit)
        .or_else(|| entry.get("ns_per_iter"))
        .and_then(Json::as_f64)?;
    Some((value, unit))
}

fn micro_entries(doc: &Json, nested: bool) -> Vec<(String, f64, String)> {
    let array = if nested {
        doc.get("benches")
            .and_then(|b| b.get("micro_components"))
            .and_then(Json::as_array)
    } else {
        doc.as_array()
    };
    array
        .unwrap_or(&[])
        .iter()
        .filter_map(|entry| {
            let name = entry.get("name")?.as_str()?.to_string();
            let (value, unit) = entry_value(entry)?;
            Some((name, value, unit))
        })
        .collect()
}

/// Orders snapshots oldest-first: `BENCH_baseline` before `BENCH_pr2` before
/// `BENCH_pr10` (numeric PR order, not lexicographic).
fn snapshot_rank(path: &Path) -> u64 {
    let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("");
    stem.strip_prefix("BENCH_pr")
        .and_then(|n| n.parse::<u64>().ok())
        .map(|n| n + 1)
        .unwrap_or(0)
}

fn latest_snapshot(root: &Path) -> Option<PathBuf> {
    let mut snapshots: Vec<PathBuf> = std::fs::read_dir(root)
        .ok()?
        .filter_map(|entry| entry.ok())
        .map(|entry| entry.path())
        .filter(|path| {
            path.extension().is_some_and(|e| e == "json")
                && path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("BENCH_"))
        })
        .collect();
    snapshots.sort_by_key(|p| snapshot_rank(p));
    snapshots.pop()
}

fn main() {
    let fresh_path = results_dir().join("micro_components.json");
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let Some(snapshot_path) = latest_snapshot(&root) else {
        println!("bench-diff: no BENCH_*.json snapshot found; nothing to compare");
        return;
    };
    let Ok(fresh_text) = std::fs::read_to_string(&fresh_path) else {
        println!(
            "bench-diff: no fresh artifact at {} (run the micro_components bench first)",
            fresh_path.display()
        );
        return;
    };
    let snapshot_text = match std::fs::read_to_string(&snapshot_path) {
        Ok(text) => text,
        Err(err) => {
            println!("bench-diff: cannot read {}: {err}", snapshot_path.display());
            return;
        }
    };
    let (fresh, snapshot) = match (Json::parse(&fresh_text), Json::parse(&snapshot_text)) {
        (Ok(f), Ok(s)) => (f, s),
        (f, s) => {
            println!(
                "bench-diff: parse failure (fresh: {:?}, snapshot: {:?})",
                f.err(),
                s.err()
            );
            return;
        }
    };

    let baseline = micro_entries(&snapshot, true);
    println!(
        "bench-diff: fresh run vs {} ({} baseline micros)",
        snapshot_path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("?"),
        baseline.len()
    );
    println!(
        "{:<36} {:>14} {:>14} {:>9}",
        "name", "baseline", "fresh", "delta"
    );

    let mut regressions = 0usize;
    for (name, value, unit) in micro_entries(&fresh, false) {
        let Some((base, base_unit)) = baseline
            .iter()
            .find(|(n, _, _)| *n == name)
            .map(|(_, v, u)| (*v, u.clone()))
        else {
            println!("{name:<36} {:>14} {value:>14.1} {:>9}", "(new)", "-");
            continue;
        };
        if base_unit != unit {
            // A micro that changed unit between snapshots cannot be compared
            // numerically; treat it like a new entry rather than computing a
            // meaningless cross-unit ratio.
            println!(
                "{name:<36} {:>14} {value:>14.1} {:>9}  (unit changed: {base_unit} -> {unit})",
                "(unit)", "-"
            );
            continue;
        }
        let delta = (value - base) / base;
        let higher_is_better = unit.ends_with("per_sec");
        let regressed = if higher_is_better {
            delta < -THRESHOLD
        } else {
            delta > THRESHOLD
        };
        let marker = if regressed { "  <-- regression" } else { "" };
        println!(
            "{name:<36} {base:>14.1} {value:>14.1} {:>+8.1}%{marker}",
            delta * 100.0
        );
        if regressed {
            regressions += 1;
            // GitHub Actions annotation; inert when run locally.
            println!(
                "::warning::micro '{name}' regressed {:+.1}% vs {} ({base:.1} -> {value:.1} {unit})",
                delta * 100.0,
                snapshot_path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .unwrap_or("?"),
            );
        }
    }
    if regressions == 0 {
        println!(
            "bench-diff: no regressions beyond {:.0}%",
            THRESHOLD * 100.0
        );
    } else {
        println!(
            "bench-diff: {regressions} micro(s) regressed beyond {:.0}% (non-gating)",
            THRESHOLD * 100.0
        );
    }
}

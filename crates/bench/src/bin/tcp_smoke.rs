//! Loopback TCP smoke benchmark: a multi-process [`ProcessCluster`] on
//! 127.0.0.1 — one OS process per replica, the driver talking to every
//! replica over real framed sockets.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bamboo-bench --bin tcp_smoke -- [--quick] [--protocol HS] [--nodes N]
//! ```
//!
//! The binary re-executes **itself** as the replica processes: a child
//! launched with the replica spec in `BAMBOO_TCP_REPLICA_SPEC` short-circuits
//! into [`bamboo_net::maybe_run_replica`] before any driver code runs.
//!
//! This measures plumbing, not consensus capacity: loopback TCP has no
//! propagation delay, so the interesting numbers are the status-probe
//! round-trip latency (a full driver→replica→driver socket round trip
//! through the frame codec), reconnect counts (zero on a healthy run), and
//! dropped outbound frames (startup races only). The artifact
//! `target/bamboo-bench/tcp_smoke.json` feeds `bench_diff`, which flags
//! round-trip latency or reconnects moving up and throughput moving down.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use bamboo_bench::{banner, save_json, Json};
use bamboo_net::{ClusterSpec, ProcessCluster};
use bamboo_types::ProtocolKind;

/// Probe round-trips measured against replica 0 after the commit target.
const RTT_PROBES: usize = 200;

fn percentile_us(sorted: &[Duration], pct: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * pct / 100.0).round() as usize;
    sorted[rank.min(sorted.len() - 1)].as_secs_f64() * 1e6
}

fn sum_report(reports: &[Json], key: &str) -> u64 {
    reports
        .iter()
        .filter_map(|r| r.get(key).and_then(|v| v.as_f64()))
        .sum::<f64>() as u64
}

fn run() -> Result<Json, String> {
    let mut quick = false;
    let mut protocol = ProtocolKind::HotStuff;
    let mut nodes: usize = 4;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--protocol" => {
                let label = args.next().ok_or("--protocol needs a label")?;
                protocol = ProtocolKind::from_label(&label)
                    .ok_or_else(|| format!("unknown protocol label {label:?}"))?;
            }
            "--nodes" => {
                nodes = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 4)
                    .ok_or("--nodes needs an integer >= 4")?;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }

    let target: u64 = if quick { 200 } else { 1000 };
    let window = Duration::from_secs(if quick { 30 } else { 120 });
    let spec = ClusterSpec {
        nodes,
        protocol,
        block_size: 50,
        payload_size: 16,
        timeout_ms: 50,
        seed: 2024,
        verify_workers: 1,
        checkpoint_interval: 0,
        signed_requests: false,
    };
    banner(&format!(
        "TCP loopback smoke — {} replica processes, {}, target {target} txs",
        nodes,
        protocol.label()
    ));

    let exe = std::env::current_exe().map_err(|e| format!("cannot find own executable: {e}"))?;
    let started = Instant::now();
    let mut cluster =
        ProcessCluster::launch(&exe, spec).map_err(|e| format!("cluster launch failed: {e}"))?;
    cluster
        .submit_round_robin(target * 4, 16)
        .map_err(|e| format!("client submission failed: {e}"))?;
    let reached = cluster
        .run_until_committed(target, window)
        .map_err(|e| format!("status polling failed: {e}"))?;
    let elapsed = started.elapsed();
    if !reached {
        return Err(format!(
            "cluster committed only {} of {target} txs within {:.0} s",
            cluster.committed_txs_floor().unwrap_or(0),
            window.as_secs_f64()
        ));
    }

    // Status round-trip latency against replica 0: a full socket round trip
    // through the frame codec, answered by the replica's reader thread.
    let mut rtts = Vec::with_capacity(RTT_PROBES);
    for _ in 0..RTT_PROBES {
        let probe_started = Instant::now();
        cluster
            .probe(0, 0)
            .map_err(|e| format!("status probe failed: {e}"))?;
        rtts.push(probe_started.elapsed());
    }
    rtts.sort();
    let p50 = percentile_us(&rtts, 50.0);
    let p99 = percentile_us(&rtts, 99.0);

    let agreed = cluster
        .check_prefix_agreement()
        .map_err(|e| format!("prefix agreement check failed: {e}"))?;
    if agreed == 0 {
        return Err("no common committed prefix across replica processes".into());
    }

    let reports = cluster
        .shutdown()
        .map_err(|e| format!("cluster shutdown failed: {e}"))?;
    let safety = sum_report(&reports, "safety_violations");
    if safety > 0 {
        return Err(format!("{safety} safety violation(s) over loopback TCP"));
    }
    let committed = reports
        .iter()
        .filter_map(|r| r.get("committed_txs").and_then(|v| v.as_f64()))
        .fold(0.0f64, f64::max) as u64;
    let throughput = committed as f64 / elapsed.as_secs_f64();
    let reconnects = sum_report(&reports, "reconnects");
    let bytes_sent = sum_report(&reports, "bytes_sent");
    let dropped = sum_report(&reports, "send_queue_dropped");

    println!(
        "  {:<5} n={nodes}  {committed} txs in {:.2} s ({throughput:.0} tx/s)  \
         prefix agreement over {agreed} blocks",
        protocol.label(),
        elapsed.as_secs_f64()
    );
    println!(
        "  status RTT p50 {p50:.0} us  p99 {p99:.0} us  reconnects {reconnects}  \
         dropped {dropped}  {bytes_sent} bytes sent"
    );

    Ok(Json::obj([
        ("mode", Json::Str("process".into())),
        ("nodes", Json::Num(nodes as f64)),
        ("protocol", Json::Str(protocol.label().into())),
        ("quick", Json::Bool(quick)),
        ("elapsed_s", Json::Num(elapsed.as_secs_f64())),
        ("committed_txs", Json::Num(committed as f64)),
        ("throughput_tx_per_sec", Json::Num(throughput)),
        (
            "status_rtt_us",
            Json::obj([("p50", Json::Num(p50)), ("p99", Json::Num(p99))]),
        ),
        ("agreed_prefix_blocks", Json::Num(agreed as f64)),
        ("reconnects", Json::Num(reconnects as f64)),
        ("bytes_sent", Json::Num(bytes_sent as f64)),
        ("send_queue_dropped", Json::Num(dropped as f64)),
    ]))
}

fn main() -> ExitCode {
    // Child processes: the env var routes execution into the replica loop.
    if bamboo_net::maybe_run_replica() {
        return ExitCode::SUCCESS;
    }
    match run() {
        Ok(artifact) => {
            save_json("tcp_smoke", &artifact);
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("tcp_smoke FAILED: {err}");
            ExitCode::FAILURE
        }
    }
}

//! Open-loop saturation sweep over the client-ingress pipeline.
//!
//! Drives a fixed offered-load ladder against clusters running the full
//! client pipeline — a million-client signed population feeding a sharded
//! mempool with admission control — and records, per load point, the
//! committed *goodput* and the client-observed (submit → commit) latency
//! distribution. The ladder deliberately runs past the saturation knee so
//! the artifact shows the collapse: goodput flattens against the admission
//! cap while client p99 latency explodes, the §V methodology of the paper
//! applied to the simulated substrate.
//!
//! Points are independent simulations, so the sweep executes on the bounded
//! std-thread pool (`run_ordered`) — wall time is governed by the slowest
//! point, not the ladder length.
//!
//! Modes:
//!
//! * default — full sweep: HS and 2CHS at n = 32, a seven-point ladder
//!   crossing collapse for both protocols (nightly CI, snapshot material);
//! * `--quick` — one protocol, n = 8, three load points spanning
//!   under/at/over saturation (gating CI smoke: the pipeline end to end in
//!   a few seconds).
//!
//! Artifact: `target/bamboo-bench/saturation.json`, diffed by `bench_diff`
//! (goodput regresses downward, client p99 upward, per `protocol/nN/oRATE`
//! key — offered loads are never cross-compared).

use bamboo_bench::{banner, eval_config, save_json, Json, ToJson};
use bamboo_core::{run_ordered, RunOptions, RunReport, SimRunner};
use bamboo_types::{Config, ProtocolKind};

/// Clients in the simulated population; far above any per-run arrival count,
/// so client keys must be derived lazily (the run would otherwise hold a
/// million-entry key table).
const POPULATION: u64 = 1_000_000;

struct LoadPoint {
    offered_tx_per_sec: f64,
    goodput_tx_per_sec: f64,
    client_p50_ms: f64,
    client_p99_ms: f64,
    committed_txs: u64,
    admission_rejected: u64,
    client_auth_rejections: u64,
}

impl ToJson for LoadPoint {
    fn to_json(&self) -> Json {
        Json::obj([
            ("offered_tx_per_sec", Json::from(self.offered_tx_per_sec)),
            ("goodput_tx_per_sec", Json::from(self.goodput_tx_per_sec)),
            ("client_p50_ms", Json::from(self.client_p50_ms)),
            ("client_p99_ms", Json::from(self.client_p99_ms)),
            ("committed_txs", Json::from(self.committed_txs)),
            ("admission_rejected", Json::from(self.admission_rejected)),
            (
                "client_auth_rejections",
                Json::from(self.client_auth_rejections),
            ),
        ])
    }
}

struct ProtocolSweep {
    protocol: ProtocolKind,
    points: Vec<LoadPoint>,
    peak_goodput_tx_per_sec: f64,
    saturation_offered_tx_per_sec: f64,
    collapsed: bool,
}

impl ToJson for ProtocolSweep {
    fn to_json(&self) -> Json {
        Json::obj([
            ("protocol", Json::from(self.protocol.label())),
            ("points", self.points.to_json()),
            (
                "peak_goodput_tx_per_sec",
                Json::from(self.peak_goodput_tx_per_sec),
            ),
            (
                "saturation_offered_tx_per_sec",
                Json::from(self.saturation_offered_tx_per_sec),
            ),
            ("collapsed", Json::from(self.collapsed)),
        ])
    }
}

/// The full-pipeline configuration of one load point.
fn point_config(nodes: usize, runtime_ms: u64, rate: f64) -> Config {
    let mut config = eval_config(nodes, 400, 128, runtime_ms);
    config.arrival_rate = Some(rate);
    config.client_population = Some(POPULATION);
    config.signed_requests = true;
    config.mempool_shards = 8;
    // A bounded pool (two blocks of headroom per replica) is what makes
    // overload visible: past the commit ceiling a replica's backlog hits the
    // cap within the run and the surplus shows up as counted admission
    // rejections instead of an ever-growing queue. Arrivals are spread
    // round-robin over the replicas, so each replica only sees 1/n of the
    // offered load — the cap must be sized against that share.
    config.mempool_size = 2 * config.block_size;
    config
}

fn measure(protocol: ProtocolKind, nodes: usize, runtime_ms: u64, rate: f64) -> LoadPoint {
    let config = point_config(nodes, runtime_ms, rate);
    let runtime_secs = config.runtime.as_secs_f64();
    let report: RunReport = SimRunner::new(config, protocol, RunOptions::default()).run();
    assert_eq!(report.safety_violations, 0, "{protocol} @ {rate} tx/s");
    LoadPoint {
        offered_tx_per_sec: rate,
        goodput_tx_per_sec: report.committed_txs as f64 / runtime_secs,
        client_p50_ms: report.client_latency.p50_ms,
        client_p99_ms: report.client_latency.p99_ms,
        committed_txs: report.committed_txs,
        admission_rejected: report.mempool.rejected,
        client_auth_rejections: report.client_auth_rejections,
    }
}

/// A sweep flattens into collapse when doubling the offered load stops
/// buying goodput (< 5% gain) — from that knee on, extra load only queues.
fn analyse(protocol: ProtocolKind, points: Vec<LoadPoint>) -> ProtocolSweep {
    let peak = points
        .iter()
        .map(|p| p.goodput_tx_per_sec)
        .fold(0.0f64, f64::max);
    let knee = points
        .windows(2)
        .find(|pair| pair[1].goodput_tx_per_sec < pair[0].goodput_tx_per_sec * 1.05)
        .map(|pair| pair[1].offered_tx_per_sec);
    let collapsed = knee.is_some();
    ProtocolSweep {
        protocol,
        saturation_offered_tx_per_sec: knee
            .unwrap_or_else(|| points.last().map(|p| p.offered_tx_per_sec).unwrap_or(0.0)),
        peak_goodput_tx_per_sec: peak,
        points,
        collapsed,
    }
}

fn sweep(
    protocol: ProtocolKind,
    nodes: usize,
    runtime_ms: u64,
    ladder: &[f64],
    workers: usize,
) -> ProtocolSweep {
    let jobs: Vec<_> = ladder
        .iter()
        .map(|&rate| move || measure(protocol, nodes, runtime_ms, rate))
        .collect();
    let points = run_ordered(jobs, workers);
    for point in &points {
        println!(
            "{:<5} offered = {:>8.0} tx/s   goodput = {:>8.0} tx/s   client p50 = {:>8.2} ms   \
             p99 = {:>8.2} ms   rejected = {}",
            protocol.label(),
            point.offered_tx_per_sec,
            point.goodput_tx_per_sec,
            point.client_p50_ms,
            point.client_p99_ms,
            point.admission_rejected,
        );
    }
    analyse(protocol, points)
}

fn main() {
    let quick = std::env::args().any(|arg| arg == "--quick");
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let (nodes, runtime_ms, protocols, ladder): (usize, u64, Vec<ProtocolKind>, Vec<f64>) = if quick
    {
        (
            8,
            100,
            vec![ProtocolKind::HotStuff],
            vec![40_000.0, 320_000.0, 1_280_000.0],
        )
    } else {
        (
            32,
            200,
            vec![ProtocolKind::HotStuff, ProtocolKind::TwoChainHotStuff],
            vec![
                20_000.0,
                40_000.0,
                80_000.0,
                160_000.0,
                320_000.0,
                640_000.0,
                1_280_000.0,
            ],
        )
    };

    banner(&format!(
        "Open-loop saturation: {} clients, signed requests, sharded mempool, n = {nodes} \
         ({} mode, {workers} pool worker(s))",
        POPULATION,
        if quick { "quick" } else { "full" },
    ));

    let sweeps: Vec<ProtocolSweep> = protocols
        .iter()
        .map(|&protocol| sweep(protocol, nodes, runtime_ms, &ladder, workers))
        .collect();

    for s in &sweeps {
        println!(
            "{:<5} peak goodput = {:>8.0} tx/s   saturation at offered = {:>8.0} tx/s{}",
            s.protocol.label(),
            s.peak_goodput_tx_per_sec,
            s.saturation_offered_tx_per_sec,
            if s.collapsed {
                ""
            } else {
                "   (no collapse inside the ladder)"
            }
        );
        // The sweep is only evidence of saturation if the ladder actually
        // crossed the knee; a ladder that never saturates measures nothing.
        assert!(
            s.collapsed,
            "{}: offered-load ladder never reached collapse — extend the ladder",
            s.protocol.label()
        );
        // Past the knee, surplus load must surface as counted admission
        // rejections, never as silent loss.
        let top = s.points.last().expect("ladder is non-empty");
        assert!(
            top.admission_rejected > 0,
            "{}: overload must produce counted admission rejections",
            s.protocol.label()
        );
        assert_eq!(top.client_auth_rejections, 0, "honest clients only");
    }

    let artifact = Json::obj([
        ("nodes", Json::from(nodes)),
        ("runtime_ms", Json::from(runtime_ms)),
        ("population", Json::from(POPULATION)),
        ("quick", Json::from(quick)),
        ("sweeps", sweeps.to_json()),
    ]);
    save_json("saturation", &artifact);
}

//! Runs a directory of declarative scenario specs and gates on the results.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bamboo-bench --bin scenario -- [--quick] [--dir DIR] [--threads N] [FILE...]
//! ```
//!
//! * with no arguments, every `*.json` under `scenarios/` (workspace root)
//!   runs at the full tier;
//! * `--quick` switches to the shortened gating tier: each scenario's
//!   `quick_runtime_ms` window with proportionally scaled fault schedules;
//! * `--threads N` overrides every spec's engine shard count. The audit
//!   replay still runs single-threaded, so with `N > 1` every pair also
//!   proves the parallel engine reproduces the sequential fingerprints —
//!   the CI quick tier runs once with `--threads 2` for exactly that;
//! * explicit `FILE` arguments replace the directory scan.
//!
//! Every `(scenario, protocol)` pair executes twice on the parallel sweep
//! pool (the second run proves the replay is deterministic) and the
//! assembled [`ScenarioReport`]s are written to
//! `target/bamboo-bench/scenario_reports.json` — a byte-stable artifact:
//! two invocations on the same tree produce identical bytes.
//!
//! The process exits non-zero on any failure: a safety violation or forked
//! ledger, a fingerprint mismatch between the paired runs, an unmet spec
//! expectation, or an unparsable spec. This is the CI gate for the scenario
//! suite.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use bamboo_bench::{banner, save_json};
use bamboo_core::parallel::{default_workers, run_ordered};
use bamboo_core::{Scenario, ScenarioReport, ScenarioRun, ScenarioTransport};
use bamboo_net::TcpCluster;
use bamboo_types::ProtocolKind;

/// The shipped scenario library: `scenarios/` at the workspace root.
fn default_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("scenarios")
}

fn spec_files(dir: &PathBuf) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
                .collect()
        })
        .unwrap_or_default();
    files.sort();
    files
}

/// Runs a `"transport": "tcp"` scenario: every protocol gets a fresh
/// loopback [`TcpCluster`], a burst of client load, and a wall-clock window
/// (the tier's `runtime_ms`) to commit the target on every replica. The
/// checks are safety and liveness — agreement across the real sockets —
/// not throughput; TCP runs have no determinism proof and an empty `runs`
/// list in the report.
fn run_tcp_scenario(scenario: &Scenario, quick: bool) -> ScenarioReport {
    let mut failures = Vec::new();
    let window = Duration::from_nanos(scenario.runtime(quick).as_nanos());
    let config = scenario.base_config().clone();
    let target = (config.block_size as u64 * 2).max(20);
    println!("\n{} — loopback TCP tier", scenario.name);
    for &protocol in &scenario.protocols {
        match TcpCluster::spawn(protocol, config.clone()) {
            Err(err) => failures.push(format!("{}: cluster spawn failed: {err}", protocol.label())),
            Ok(mut cluster) => {
                cluster.submit_round_robin(target * 4, config.payload_size);
                let reached = cluster.run_until_committed(target, window);
                let floor = cluster.committed_txs_floor();
                let report = cluster.shutdown();
                if !reached {
                    failures.push(format!(
                        "{}: only {floor} of {target} target txs committed cluster-wide \
                         within {:.1} s",
                        protocol.label(),
                        window.as_secs_f64()
                    ));
                }
                if !report.cluster.ledgers_consistent {
                    failures.push(format!(
                        "{}: committed ledgers disagree across replicas",
                        protocol.label()
                    ));
                }
                if report.cluster.safety_violations > 0 {
                    failures.push(format!(
                        "{}: {} safety violation(s) over TCP",
                        protocol.label(),
                        report.cluster.safety_violations
                    ));
                }
                println!(
                    "  {:<5} n={:<3} {:>7} txs   max view {:<4} reconnects {:<3} dropped {:<4} \
                     {:>9} bytes sent   agreement {}",
                    protocol.label(),
                    config.nodes,
                    report.cluster.committed_txs,
                    report.cluster.max_view,
                    report.total_reconnects(),
                    report.total_dropped(),
                    report.total_bytes_sent(),
                    if report.cluster.ledgers_consistent {
                        "ok"
                    } else {
                        "FORKED"
                    },
                );
            }
        }
    }
    ScenarioReport {
        name: scenario.name.clone(),
        description: scenario.description.clone(),
        quick,
        runs: Vec::new(),
        failures,
    }
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut dir = default_dir();
    let mut threads: Option<usize> = None;
    let mut explicit: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--dir" => match args.next() {
                Some(path) => dir = PathBuf::from(path),
                None => {
                    eprintln!("--dir needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--threads" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => threads = Some(n),
                _ => {
                    eprintln!("--threads needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            other => explicit.push(PathBuf::from(other)),
        }
    }
    let files = if explicit.is_empty() {
        spec_files(&dir)
    } else {
        explicit
    };
    banner(&format!(
        "Scenario suite ({} tier{}): {} spec(s) from {}",
        if quick { "quick" } else { "full" },
        threads
            .map(|n| format!(", {n} engine threads"))
            .unwrap_or_default(),
        files.len(),
        dir.display()
    ));
    if files.is_empty() {
        eprintln!("no scenario specs found");
        return ExitCode::FAILURE;
    }

    // Parse every spec up front; a broken spec fails the suite.
    let mut scenarios: Vec<Scenario> = Vec::new();
    let mut parse_failures = 0usize;
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("error: cannot read {}: {err}", file.display());
                parse_failures += 1;
                continue;
            }
        };
        match Scenario::parse(&text) {
            Ok(scenario) => scenarios.push(scenario),
            Err(err) => {
                eprintln!("error: {}: {err}", file.display());
                parse_failures += 1;
            }
        }
    }

    // Fan every simulator (scenario, protocol) pair out on the sweep pool;
    // each job runs the pair twice (determinism proof) via `run_protocol`.
    // TCP scenarios run sequentially afterwards — each one already spins a
    // whole cluster's worth of threads and measures wall-clock liveness.
    let pairs: Vec<(usize, ProtocolKind)> = scenarios
        .iter()
        .enumerate()
        .filter(|(_, s)| s.transport() == ScenarioTransport::Sim)
        .flat_map(|(index, s)| s.protocols.iter().map(move |&p| (index, p)))
        .collect();
    let started = Instant::now();
    let jobs: Vec<_> = pairs
        .iter()
        .map(|&(index, protocol)| {
            let scenario = scenarios[index].clone();
            move || scenario.run_protocol_with_threads(protocol, quick, threads)
        })
        .collect();
    let runs = run_ordered(jobs, default_workers());
    let wall = started.elapsed();

    // Reassemble per-scenario reports in spec order.
    let mut grouped: Vec<Vec<ScenarioRun>> = scenarios.iter().map(|_| Vec::new()).collect();
    for (&(index, _), run) in pairs.iter().zip(runs) {
        grouped[index].push(run);
    }
    let reports: Vec<ScenarioReport> = scenarios
        .iter()
        .zip(grouped)
        .map(|(scenario, runs)| match scenario.transport() {
            ScenarioTransport::Sim => scenario.evaluate(quick, runs),
            ScenarioTransport::Tcp => run_tcp_scenario(scenario, quick),
        })
        .collect();

    let mut failures = parse_failures;
    let mut total_events: u64 = 0;
    for report in &reports {
        println!(
            "\n{} — {}",
            report.name,
            if report.passed() { "PASS" } else { "FAIL" }
        );
        for run in &report.runs {
            total_events += run.report.events_processed;
            println!(
                "  {:<5} n={:<3} {:>9.0} tx/s   mean {:>8.2} ms   p99 {:>8.2} ms   CGR {:>5.2}   \
                 rejects {:>4}   det {}   fp {}",
                run.protocol.label(),
                run.report.nodes,
                run.report.throughput_tx_per_sec,
                run.report.latency.mean_ms,
                run.report.latency.p99_ms,
                run.report.chain_growth_rate,
                run.report.rejected_messages,
                if run.deterministic { "ok" } else { "MISMATCH" },
                &run.report.ledger_fingerprint[..16.min(run.report.ledger_fingerprint.len())],
            );
        }
        for failure in &report.failures {
            println!("  FAIL: {failure}");
            failures += 1;
        }
    }

    save_json("scenario_reports", &reports);
    println!(
        "\n{} scenario(s), {} run pair(s), {total_events} simulation events in {:.1} s wall",
        reports.len(),
        pairs.len(),
        wall.as_secs_f64()
    );
    if failures > 0 {
        println!("scenario suite FAILED: {failures} failure(s)");
        ExitCode::FAILURE
    } else {
        println!("scenario suite passed");
        ExitCode::SUCCESS
    }
}

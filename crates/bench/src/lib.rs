//! Shared harness code for the experiment benches.
//!
//! Every bench target in `benches/` regenerates one table or figure of
//! *Dissecting the Performance of Chained-BFT*: it prints the same rows /
//! series the paper reports (as aligned text and CSV) and writes a JSON
//! artifact under `target/bamboo-bench/` so EXPERIMENTS.md can reference
//! machine-readable results.
//!
//! The crate also provides the two pieces of infrastructure the benches need
//! and that the workspace deliberately does not pull in as dependencies:
//!
//! * [`json`] — a minimal JSON document model + pretty printer,
//! * [`harness`] — a wall-clock micro-benchmark harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod json;

use std::fs;
use std::path::PathBuf;

use bamboo_core::{
    Benchmarker, CurvePoint, LatencyStats, RunOptions, RunReport, SweepOptions, ThroughputSample,
};
use bamboo_model::{ModelParams, PerfModel};
use bamboo_types::{Block, Config, ProtocolKind, SimDuration, Transaction};

pub use json::{Json, ToJson};

/// Directory where benches drop their JSON artifacts: the workspace
/// `target/bamboo-bench/`, independent of the working directory cargo runs
/// the bench from.
pub fn results_dir() -> PathBuf {
    let target = std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            // crates/bench -> workspace root -> target/
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("..")
                .join("..")
                .join("target")
        });
    let dir = target.join("bamboo-bench");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Serialises `value` as pretty JSON under `target/bamboo-bench/<name>.json`.
pub fn save_json<T: ToJson + ?Sized>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    let json = value.to_json().render_pretty();
    if let Err(err) = fs::write(&path, json) {
        eprintln!("warning: could not write {}: {err}", path.display());
    } else {
        println!("# artifact: {}", path.display());
    }
}

/// Prints a figure/table banner.
pub fn banner(title: &str) {
    println!();
    println!("==============================================================");
    println!("{title}");
    println!("==============================================================");
}

/// The standard evaluation configuration used across the figures: the Table-I
/// defaults on the simulated data-centre substrate, with the measurement
/// window shortened so the whole suite runs in minutes.
pub fn eval_config(nodes: usize, block_size: usize, payload: usize, runtime_ms: u64) -> Config {
    Config::builder()
        .nodes(nodes)
        .block_size(block_size)
        .payload_size(payload)
        .runtime(SimDuration::from_millis(runtime_ms))
        .timeout(SimDuration::from_millis(100))
        .seed(2021)
        .build()
        .expect("valid benchmark configuration")
}

/// Derives the analytical-model parameters that correspond to a simulator
/// configuration, so Fig. 8 compares like with like.
pub fn model_params(config: &Config) -> ModelParams {
    let quorum = config.quorum();
    ModelParams {
        nodes: config.nodes,
        block_size: config.block_size,
        tx_bytes: Transaction::HEADER_BYTES + config.payload_size,
        block_overhead_bytes: Block::HEADER_BYTES + 40 + 40 * quorum,
        link_mean: config.link_latency_mean.as_secs_f64() + config.extra_delay.as_secs_f64(),
        link_std: config.link_latency_std.as_secs_f64(),
        client_rtt: 2.0 * config.link_latency_mean.as_secs_f64(),
        t_cpu: config.cpu_delay.as_secs_f64(),
        bandwidth: config.bandwidth_bytes_per_sec as f64,
    }
}

/// Builds the analytical model for one protocol and configuration.
pub fn model_for(protocol: ProtocolKind, config: &Config) -> PerfModel {
    PerfModel::new(protocol, model_params(config))
}

/// Runs a saturation sweep for `protocol` over `config` and returns the curve.
pub fn sweep(protocol: ProtocolKind, config: &Config, sweep: SweepOptions) -> Vec<CurvePoint> {
    Benchmarker::new(config.clone(), protocol, RunOptions::default())
        .with_sweep(sweep)
        .sweep()
}

/// Default sweep ladder used by the throughput/latency figures.
pub fn default_sweep() -> SweepOptions {
    SweepOptions {
        start_rate: 10_000.0,
        growth: 2.0,
        max_points: 9,
        saturation_gain: 0.05,
        latency_ceiling_ms: 150.0,
    }
}

/// Prints a latency/throughput curve as CSV rows: `label, offered, tput, latency`.
pub fn print_curve(label: &str, points: &[CurvePoint]) {
    for point in points {
        println!(
            "{label}, offered={:.0} tx/s, throughput={:.1} ktx/s, latency={:.2} ms (p99 {:.2} ms)",
            point.offered_tx_per_sec,
            point.throughput_tx_per_sec / 1_000.0,
            point.latency_ms,
            point.p99_latency_ms
        );
    }
}

/// A serialisable labelled curve, shared by several artifacts.
pub struct LabelledCurve {
    /// Series label (e.g. "HS-b400").
    pub label: String,
    /// Curve points.
    pub points: Vec<CurvePoint>,
}

/// The three protocols compared throughout the evaluation.
pub fn evaluated_protocols() -> [ProtocolKind; 3] {
    ProtocolKind::evaluated()
}

// ---- JSON views of the report types --------------------------------------

impl ToJson for LabelledCurve {
    fn to_json(&self) -> Json {
        Json::obj([
            ("label", Json::from(self.label.as_str())),
            ("points", self.points.to_json()),
        ])
    }
}

impl ToJson for CurvePoint {
    fn to_json(&self) -> Json {
        Json::obj([
            ("offered_tx_per_sec", Json::from(self.offered_tx_per_sec)),
            (
                "throughput_tx_per_sec",
                Json::from(self.throughput_tx_per_sec),
            ),
            ("latency_ms", Json::from(self.latency_ms)),
            ("p99_latency_ms", Json::from(self.p99_latency_ms)),
            ("report", self.report.to_json()),
        ])
    }
}

impl ToJson for LatencyStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::from(self.count)),
            ("mean_ms", Json::from(self.mean_ms)),
            ("p50_ms", Json::from(self.p50_ms)),
            ("p99_ms", Json::from(self.p99_ms)),
            ("max_ms", Json::from(self.max_ms)),
        ])
    }
}

impl ToJson for ThroughputSample {
    fn to_json(&self) -> Json {
        Json::obj([
            ("at_ms", Json::from(self.at.as_millis_f64())),
            ("tx_per_sec", Json::from(self.tx_per_sec)),
        ])
    }
}

impl ToJson for RunReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("protocol", Json::from(self.protocol.label())),
            ("nodes", Json::from(self.nodes)),
            ("byz_nodes", Json::from(self.byz_nodes)),
            ("duration_secs", Json::from(self.duration_secs)),
            (
                "throughput_tx_per_sec",
                Json::from(self.throughput_tx_per_sec),
            ),
            ("latency", self.latency.to_json()),
            ("committed_txs", Json::from(self.committed_txs)),
            ("committed_blocks", Json::from(self.committed_blocks)),
            ("views_advanced", Json::from(self.views_advanced)),
            ("chain_growth_rate", Json::from(self.chain_growth_rate)),
            ("block_interval", Json::from(self.block_interval)),
            (
                "timeout_view_changes",
                Json::from(self.timeout_view_changes),
            ),
            ("messages_sent", Json::from(self.messages_sent)),
            ("bytes_sent", Json::from(self.bytes_sent)),
            ("throughput_series", self.throughput_series.to_json()),
            ("safety_violations", Json::from(self.safety_violations)),
            ("rejected_messages", Json::from(self.rejected_messages)),
            ("pending_txs", Json::from(self.pending_txs)),
            ("events_processed", Json::from(self.events_processed)),
            ("events_scheduled", Json::from(self.events_scheduled)),
            ("queue_peak_len", Json::from(self.queue_peak_len)),
            (
                "ledger_fingerprint",
                Json::from(self.ledger_fingerprint.as_str()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_config_matches_table_one_defaults() {
        let config = eval_config(4, 400, 128, 500);
        assert_eq!(config.nodes, 4);
        assert_eq!(config.block_size, 400);
        assert_eq!(config.payload_size, 128);
        assert_eq!(config.timeout, SimDuration::from_millis(100));
    }

    #[test]
    fn model_params_follow_config() {
        let config = eval_config(8, 400, 128, 500);
        let params = model_params(&config);
        assert_eq!(params.nodes, 8);
        assert_eq!(params.tx_bytes, Transaction::HEADER_BYTES + 128);
        assert!(params.link_mean > 0.0);
        assert!(params.bandwidth > 0.0);
        let model = model_for(ProtocolKind::HotStuff, &config);
        assert!(model.saturation_rate() > 0.0);
    }

    #[test]
    fn results_dir_is_creatable() {
        let dir = results_dir();
        assert!(dir.ends_with("bamboo-bench"));
    }

    #[test]
    fn labelled_curve_serialises_to_json() {
        let curve = LabelledCurve {
            label: "HS-b400".to_string(),
            points: Vec::new(),
        };
        let rendered = curve.to_json().render_pretty();
        assert!(rendered.contains("\"label\": \"HS-b400\""));
        assert!(rendered.contains("\"points\": []"));
    }
}

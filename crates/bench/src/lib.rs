//! Shared harness code for the experiment benches.
//!
//! Every bench target in `benches/` regenerates one table or figure of
//! *Dissecting the Performance of Chained-BFT*: it prints the same rows /
//! series the paper reports (as aligned text and CSV) and writes a JSON
//! artifact under `target/bamboo-bench/` so EXPERIMENTS.md can reference
//! machine-readable results.
//!
//! The crate also provides the wall-clock micro-benchmark harness
//! ([`harness`]) the `micro_components` bench is built on. The JSON document
//! model the artifacts are written with lives in `bamboo_types::json` (it is
//! shared with the scenario engine) and is re-exported here as [`Json`] /
//! [`ToJson`] for the bench targets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;

use std::fs;
use std::path::PathBuf;

use bamboo_core::{Benchmarker, CurvePoint, RunOptions, SweepOptions};
use bamboo_model::{ModelParams, PerfModel};
use bamboo_types::{Block, Config, ProtocolKind, SimDuration, Transaction};

pub use bamboo_types::{Json, ToJson};

/// Directory where benches drop their JSON artifacts: the workspace
/// `target/bamboo-bench/`, independent of the working directory cargo runs
/// the bench from.
pub fn results_dir() -> PathBuf {
    let target = std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            // crates/bench -> workspace root -> target/
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("..")
                .join("..")
                .join("target")
        });
    let dir = target.join("bamboo-bench");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Serialises `value` as pretty JSON under `target/bamboo-bench/<name>.json`.
pub fn save_json<T: ToJson + ?Sized>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    let json = value.to_json().render_pretty();
    if let Err(err) = fs::write(&path, json) {
        eprintln!("warning: could not write {}: {err}", path.display());
    } else {
        println!("# artifact: {}", path.display());
    }
}

/// Prints a figure/table banner.
pub fn banner(title: &str) {
    println!();
    println!("==============================================================");
    println!("{title}");
    println!("==============================================================");
}

/// The standard evaluation configuration used across the figures: the Table-I
/// defaults on the simulated data-centre substrate, with the measurement
/// window shortened so the whole suite runs in minutes.
pub fn eval_config(nodes: usize, block_size: usize, payload: usize, runtime_ms: u64) -> Config {
    Config::builder()
        .nodes(nodes)
        .block_size(block_size)
        .payload_size(payload)
        .runtime(SimDuration::from_millis(runtime_ms))
        .timeout(SimDuration::from_millis(100))
        .seed(2021)
        .build()
        .expect("valid benchmark configuration")
}

/// Derives the analytical-model parameters that correspond to a simulator
/// configuration, so Fig. 8 compares like with like.
pub fn model_params(config: &Config) -> ModelParams {
    let quorum = config.quorum();
    ModelParams {
        nodes: config.nodes,
        block_size: config.block_size,
        tx_bytes: Transaction::HEADER_BYTES + config.payload_size,
        block_overhead_bytes: Block::HEADER_BYTES + 40 + 40 * quorum,
        link_mean: config.link_latency_mean.as_secs_f64() + config.extra_delay.as_secs_f64(),
        link_std: config.link_latency_std.as_secs_f64(),
        client_rtt: 2.0 * config.link_latency_mean.as_secs_f64(),
        t_cpu: config.cpu_delay.as_secs_f64(),
        bandwidth: config.bandwidth_bytes_per_sec as f64,
    }
}

/// Builds the analytical model for one protocol and configuration.
pub fn model_for(protocol: ProtocolKind, config: &Config) -> PerfModel {
    PerfModel::new(protocol, model_params(config))
}

/// Runs a saturation sweep for `protocol` over `config` and returns the curve.
pub fn sweep(protocol: ProtocolKind, config: &Config, sweep: SweepOptions) -> Vec<CurvePoint> {
    Benchmarker::new(config.clone(), protocol, RunOptions::default())
        .with_sweep(sweep)
        .sweep()
}

/// Default sweep ladder used by the throughput/latency figures.
pub fn default_sweep() -> SweepOptions {
    SweepOptions {
        start_rate: 10_000.0,
        growth: 2.0,
        max_points: 9,
        saturation_gain: 0.05,
        latency_ceiling_ms: 150.0,
    }
}

/// Prints a latency/throughput curve as CSV rows: `label, offered, tput, latency`.
pub fn print_curve(label: &str, points: &[CurvePoint]) {
    for point in points {
        println!(
            "{label}, offered={:.0} tx/s, throughput={:.1} ktx/s, latency={:.2} ms (p99 {:.2} ms)",
            point.offered_tx_per_sec,
            point.throughput_tx_per_sec / 1_000.0,
            point.latency_ms,
            point.p99_latency_ms
        );
    }
}

/// A serialisable labelled curve, shared by several artifacts.
pub struct LabelledCurve {
    /// Series label (e.g. "HS-b400").
    pub label: String,
    /// Curve points.
    pub points: Vec<CurvePoint>,
}

/// The three protocols compared throughout the evaluation.
pub fn evaluated_protocols() -> [ProtocolKind; 3] {
    ProtocolKind::evaluated()
}

// ---- JSON views -----------------------------------------------------------
//
// The report types (`RunReport`, `LatencyStats`, `ThroughputSample`,
// `CurvePoint`, the scenario reports) implement `ToJson` in `bamboo-core`,
// next to their definitions; only bench-local types are rendered here.

impl ToJson for LabelledCurve {
    fn to_json(&self) -> Json {
        Json::obj([
            ("label", Json::from(self.label.as_str())),
            ("points", self.points.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_config_matches_table_one_defaults() {
        let config = eval_config(4, 400, 128, 500);
        assert_eq!(config.nodes, 4);
        assert_eq!(config.block_size, 400);
        assert_eq!(config.payload_size, 128);
        assert_eq!(config.timeout, SimDuration::from_millis(100));
    }

    #[test]
    fn model_params_follow_config() {
        let config = eval_config(8, 400, 128, 500);
        let params = model_params(&config);
        assert_eq!(params.nodes, 8);
        assert_eq!(params.tx_bytes, Transaction::HEADER_BYTES + 128);
        assert!(params.link_mean > 0.0);
        assert!(params.bandwidth > 0.0);
        let model = model_for(ProtocolKind::HotStuff, &config);
        assert!(model.saturation_rate() > 0.0);
    }

    #[test]
    fn results_dir_is_creatable() {
        let dir = results_dir();
        assert!(dir.ends_with("bamboo-bench"));
    }

    #[test]
    fn labelled_curve_serialises_to_json() {
        let curve = LabelledCurve {
            label: "HS-b400".to_string(),
            points: Vec::new(),
        };
        let rendered = curve.to_json().render_pretty();
        assert!(rendered.contains("\"label\": \"HS-b400\""));
        assert!(rendered.contains("\"points\": []"));
    }
}

//! Figure 15 — responsiveness test.
//!
//! Paper setting: 4 nodes, high request rate, two timeout settings (10 ms and
//! 100 ms). A 10-second window of network fluctuation (delays between 10 and
//! 100 ms) is injected, after which one node crashes (performs a silence
//! attack). The output is the committed-throughput time series.
//!
//! Expected shape: with t=10 ms every protocol stalls during the fluctuation;
//! the responsive protocol (HotStuff) resumes at network speed immediately
//! after it ends, while the non-responsive protocols recover only via timeouts
//! (and may stall entirely once the crashed node's views come around). With
//! t=100 ms all protocols retain liveness but at much lower throughput.

use bamboo_bench::{banner, eval_config, evaluated_protocols, save_json, Json, ToJson};
use bamboo_core::{FluctuationWindow, RunOptions, SimRunner, ThroughputSample};
use bamboo_types::{NodeId, SimDuration, SimTime};

struct Series {
    protocol: String,
    timeout_ms: u64,
    series: Vec<ThroughputSample>,
    total_committed: u64,
}

impl ToJson for Series {
    fn to_json(&self) -> Json {
        Json::obj([
            ("protocol", Json::from(self.protocol.as_str())),
            ("timeout_ms", Json::from(self.timeout_ms)),
            ("series", self.series.to_json()),
            ("total_committed", Json::from(self.total_committed)),
        ])
    }
}

fn main() {
    banner("Figure 15: responsiveness under network fluctuation + crash (t10 vs t100)");
    // Timeline (compressed relative to the paper's 40 s wall-clock run):
    //   0-4 s    : normal operation
    //   4-8 s    : network fluctuation, one-way delays 10..100 ms
    //   10 s onw.: node 0 crashes (silence)
    let total = SimDuration::from_secs(14);
    let fluctuation = FluctuationWindow {
        start: SimTime::ZERO + SimDuration::from_secs(4),
        end: SimTime::ZERO + SimDuration::from_secs(8),
        min_extra: SimDuration::from_millis(10),
        max_extra: SimDuration::from_millis(100),
    };
    let crash_at = SimTime::ZERO + SimDuration::from_secs(10);

    let mut all = Vec::new();
    for timeout_ms in [10u64, 100] {
        for protocol in evaluated_protocols() {
            let mut config = eval_config(4, 400, 128, 14_000);
            config.runtime = total;
            config.timeout = SimDuration::from_millis(timeout_ms);
            config.arrival_rate = Some(30_000.0);
            let options = RunOptions {
                fluctuations: vec![fluctuation],
                silence_node_from: Some((NodeId(0), crash_at)),
                // In the t100 setting the paper makes every protocol wait for
                // the timeout after a view change; in the t10 setting all
                // protocols propose as soon as a quorum of messages arrives.
                replica: bamboo_core::ReplicaOptions {
                    wait_for_timeout_on_view_change: timeout_ms >= 100,
                    ..Default::default()
                },
                series_bucket: SimDuration::from_millis(500),
                ..Default::default()
            };
            let report = SimRunner::new(config, protocol, options).run();
            println!(
                "\n{}-t{timeout_ms}: total committed {} txs, timeout view changes {}",
                protocol.label(),
                report.committed_txs,
                report.timeout_view_changes
            );
            print!("  tput (ktx/s per 500 ms): ");
            for sample in &report.throughput_series {
                print!("{:.0} ", sample.tx_per_sec / 1_000.0);
            }
            println!();
            all.push(Series {
                protocol: protocol.label().to_string(),
                timeout_ms,
                series: report.throughput_series.clone(),
                total_committed: report.committed_txs,
            });
        }
    }
    save_json("fig15_responsiveness", &all);
    println!(
        "\nExpected shape (paper): all protocols stall during the fluctuation window with\nt=10 ms; HotStuff (responsive) resumes immediately afterwards and rides out the\ncrash with periodic dips; non-responsive protocols recover more slowly or stall.\nWith t=100 ms everything stays live but at lower throughput."
    );
}

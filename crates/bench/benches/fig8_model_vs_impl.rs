//! Figure 8 — analytical model vs Bamboo implementation.
//!
//! Four configurations (nodes/block-size = 4/100, 8/100, 4/400, 8/400), three
//! protocols each. For every offered load the bench reports the simulator's
//! measured latency next to the model's Eq. (3) prediction, which is how the
//! paper validates the implementation.

use bamboo_bench::{banner, eval_config, evaluated_protocols, model_for, save_json, Json, ToJson};
use bamboo_core::{Benchmarker, RunOptions};

struct Point {
    protocol: String,
    nodes: usize,
    block_size: usize,
    offered_tx_per_sec: f64,
    measured_throughput_tx_per_sec: f64,
    measured_latency_ms: f64,
    model_latency_ms: f64,
}

impl ToJson for Point {
    fn to_json(&self) -> Json {
        Json::obj([
            ("protocol", Json::from(self.protocol.as_str())),
            ("nodes", Json::from(self.nodes)),
            ("block_size", Json::from(self.block_size)),
            ("offered_tx_per_sec", Json::from(self.offered_tx_per_sec)),
            (
                "measured_throughput_tx_per_sec",
                Json::from(self.measured_throughput_tx_per_sec),
            ),
            ("measured_latency_ms", Json::from(self.measured_latency_ms)),
            ("model_latency_ms", Json::from(self.model_latency_ms)),
        ])
    }
}

fn main() {
    banner("Figure 8: model vs implementation (HS, 2CHS, SL)");
    let configs = [(4usize, 100usize), (8, 100), (4, 400), (8, 400)];
    let mut points = Vec::new();

    for (nodes, bsize) in configs {
        println!("\n--- configuration {nodes}/{bsize} (nodes/block size) ---");
        let config = eval_config(nodes, bsize, 0, 500);
        for protocol in evaluated_protocols() {
            let model = model_for(protocol, &config);
            let saturation = model.saturation_rate();
            let bench = Benchmarker::new(config.clone(), protocol, RunOptions::default());
            // Sample the curve at fractions of the modelled saturation rate so
            // model and implementation are probed at the same offered loads.
            for fraction in [0.2, 0.4, 0.6, 0.8] {
                let rate = saturation * fraction;
                let report = bench.run_at(rate);
                let predicted_ms = model.latency(rate) * 1_000.0;
                println!(
                    "{:<5} {nodes}/{bsize} offered={:>9.0} tx/s  measured: {:>8.1} tx/s @ {:>7.2} ms   model: {:>7.2} ms",
                    protocol.label(),
                    rate,
                    report.throughput_tx_per_sec,
                    report.latency.mean_ms,
                    predicted_ms
                );
                points.push(Point {
                    protocol: protocol.label().to_string(),
                    nodes,
                    block_size: bsize,
                    offered_tx_per_sec: rate,
                    measured_throughput_tx_per_sec: report.throughput_tx_per_sec,
                    measured_latency_ms: report.latency.mean_ms,
                    model_latency_ms: predicted_ms,
                });
            }
        }
    }
    save_json("fig8_model_vs_impl", &points);
    println!(
        "\nExpected shape (paper): model and implementation curves track each other;\n2CHS sits below HS in latency, Streamlet saturates earlier."
    );
}

//! Figure 13 — the forking attack: throughput, latency, chain growth rate and
//! block interval with 32 nodes and 0–10 Byzantine nodes.
//!
//! Expected shape: Streamlet is flat across all four metrics (immune to
//! forking); 2CHS outperforms HS because its attacker can only overwrite one
//! block instead of two; block intervals start at 2 (2CHS) and 3 (HS); HS
//! latency grows fastest because forked transactions are re-queued.

use bamboo_bench::{banner, eval_config, evaluated_protocols, save_json, Json, ToJson};
use bamboo_core::{Benchmarker, RunOptions};
use bamboo_types::{ByzantineStrategy, ProtocolKind};

struct AttackPoint {
    protocol: String,
    byz_nodes: usize,
    throughput_tx_per_sec: f64,
    latency_ms: f64,
    chain_growth_rate: f64,
    block_interval: f64,
}

impl ToJson for AttackPoint {
    fn to_json(&self) -> Json {
        Json::obj([
            ("protocol", Json::from(self.protocol.as_str())),
            ("byz_nodes", Json::from(self.byz_nodes)),
            (
                "throughput_tx_per_sec",
                Json::from(self.throughput_tx_per_sec),
            ),
            ("latency_ms", Json::from(self.latency_ms)),
            ("chain_growth_rate", Json::from(self.chain_growth_rate)),
            ("block_interval", Json::from(self.block_interval)),
        ])
    }
}

fn main() {
    banner("Figure 13: forking attack, 32 nodes, 0..10 Byzantine");
    let mut points = Vec::new();
    for protocol in evaluated_protocols() {
        for byz in [0usize, 2, 4, 6, 8, 10] {
            let runtime_ms = if protocol == ProtocolKind::Streamlet {
                200
            } else {
                400
            };
            let mut config = eval_config(32, 400, 128, runtime_ms);
            config.byzantine_strategy = ByzantineStrategy::Forking;
            config.byz_nodes = byz;
            let report = Benchmarker::new(config, protocol, RunOptions::default()).run_at(20_000.0);
            println!(
                "{:<5} byz={:<2} throughput={:>9.0} tx/s  latency={:>8.2} ms  CGR={:>5.2}  BI={:>5.2}",
                protocol.label(),
                byz,
                report.throughput_tx_per_sec,
                report.latency.mean_ms,
                report.chain_growth_rate,
                report.block_interval
            );
            assert_eq!(report.safety_violations, 0, "forking attack broke safety");
            points.push(AttackPoint {
                protocol: protocol.label().to_string(),
                byz_nodes: byz,
                throughput_tx_per_sec: report.throughput_tx_per_sec,
                latency_ms: report.latency.mean_ms,
                chain_growth_rate: report.chain_growth_rate,
                block_interval: report.block_interval,
            });
        }
    }
    save_json("fig13_forking_attack", &points);
    println!(
        "\nExpected shape (paper): Streamlet flat (immune); 2CHS degrades less than HS;\nBI starts at 2 (2CHS) vs 3 (HS); CGR and throughput fall as Byzantine count grows."
    );
}

//! Table II — transaction arrival rate vs transaction throughput.
//!
//! Paper setting: HotStuff, block size 400, 4 replicas, arrival rates from
//! roughly 20k to 130k tx/s. The paper's observation is that committed
//! throughput tracks the arrival rate almost exactly until saturation; this
//! bench reproduces that table on the simulated substrate (absolute rates are
//! scaled to the simulator's capacity, the tracking behaviour is the result
//! under test).

use bamboo_bench::{banner, eval_config, save_json, Json, ToJson};
use bamboo_core::{Benchmarker, RunOptions};
use bamboo_types::ProtocolKind;

struct Row {
    arrival_rate_tx_per_sec: f64,
    throughput_tx_per_sec: f64,
    tracking_error_percent: f64,
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        Json::obj([
            (
                "arrival_rate_tx_per_sec",
                Json::from(self.arrival_rate_tx_per_sec),
            ),
            (
                "throughput_tx_per_sec",
                Json::from(self.throughput_tx_per_sec),
            ),
            (
                "tracking_error_percent",
                Json::from(self.tracking_error_percent),
            ),
        ])
    }
}

fn main() {
    banner("Table II: arrival rate vs throughput (HotStuff, bsize=400, 4 replicas)");
    let config = eval_config(4, 400, 0, 800);
    let bench = Benchmarker::new(config, ProtocolKind::HotStuff, RunOptions::default());

    // The paper sweeps 20k..131k tx/s on its testbed; the simulated substrate
    // saturates at a different absolute rate, so the ladder covers the same
    // relative range (sub-saturation up to just past saturation).
    let rates = [
        10_000.0, 20_000.0, 40_000.0, 60_000.0, 80_000.0, 100_000.0, 120_000.0,
    ];
    let mut rows = Vec::new();
    println!(
        "{:>22} | {:>22} | {:>10}",
        "Arrival rate (Tx/s)", "Throughput (Tx/s)", "error %"
    );
    println!("{:-<62}", "");
    for &rate in &rates {
        let report = bench.run_at(rate);
        let error = 100.0 * (report.throughput_tx_per_sec - rate).abs() / rate;
        println!(
            "{:>22.0} | {:>22.0} | {:>9.1}%",
            rate, report.throughput_tx_per_sec, error
        );
        rows.push(Row {
            arrival_rate_tx_per_sec: rate,
            throughput_tx_per_sec: report.throughput_tx_per_sec,
            tracking_error_percent: error,
        });
    }
    save_json("table2_arrival_vs_throughput", &rows);
    println!("\nExpected shape (paper): throughput ≈ arrival rate until the system saturates.");
}

//! Figure 11 — throughput vs latency under added network delays of 0 ms,
//! 5 ms ± 1 ms and 10 ms ± 2 ms (block size 400, payload 128 B, 4 replicas).
//!
//! Expected shape: every protocol suffers as delay grows; the gap between the
//! two HotStuff variants and Streamlet shrinks, and at 10 ms Streamlet becomes
//! comparable to 2CHS because propagation delay dominates the cost of its
//! message echoing.

use bamboo_bench::{
    banner, eval_config, evaluated_protocols, print_curve, save_json, sweep, LabelledCurve,
};
use bamboo_core::SweepOptions;
use bamboo_types::SimDuration;

fn main() {
    banner("Figure 11: throughput vs latency, added network delay 0/5/10 ms");
    let mut curves = Vec::new();
    for (delay_ms, jitter_ms) in [(0u64, 0u64), (5, 1), (10, 2)] {
        let mut config = eval_config(4, 400, 128, 600);
        config.extra_delay = SimDuration::from_millis(delay_ms);
        config.extra_delay_jitter = SimDuration::from_millis(jitter_ms);
        // Longer timeouts so added delay does not trigger spurious view changes.
        config.timeout = SimDuration::from_millis(200);
        let sweep_opts = SweepOptions {
            start_rate: 2_000.0,
            growth: 2.0,
            max_points: 7,
            saturation_gain: 0.05,
            latency_ceiling_ms: 600.0,
        };
        for protocol in evaluated_protocols() {
            let label = format!("{}-d{delay_ms}", protocol.label());
            let points = sweep(protocol, &config, sweep_opts.clone());
            print_curve(&label, &points);
            curves.push(LabelledCurve { label, points });
        }
    }
    save_json("fig11_network_delays", &curves);
    println!(
        "\nExpected shape (paper): all protocols degrade with added delay; the Streamlet\nvs 2CHS gap closes at 10 ms because propagation dominates message echoing."
    );
}

//! Figure 14 — the silence attack: throughput, latency, chain growth rate and
//! block interval with 32 nodes, 0–10 Byzantine nodes, timeout 50 ms.
//!
//! Expected shape: every protocol's throughput drops as silent proposers waste
//! views; HS and 2CHS share the same CGR pattern (the missing QC overwrites
//! the last block); Streamlet's CGR stays at 1 (no forks) and it degrades
//! gracefully; block intervals are higher than under the forking attack.

use bamboo_bench::{banner, eval_config, evaluated_protocols, save_json, Json, ToJson};
use bamboo_core::{Benchmarker, RunOptions};
use bamboo_types::{ByzantineStrategy, ProtocolKind, SimDuration};

struct AttackPoint {
    protocol: String,
    byz_nodes: usize,
    throughput_tx_per_sec: f64,
    latency_ms: f64,
    chain_growth_rate: f64,
    block_interval: f64,
    timeout_view_changes: u64,
}

impl ToJson for AttackPoint {
    fn to_json(&self) -> Json {
        Json::obj([
            ("protocol", Json::from(self.protocol.as_str())),
            ("byz_nodes", Json::from(self.byz_nodes)),
            (
                "throughput_tx_per_sec",
                Json::from(self.throughput_tx_per_sec),
            ),
            ("latency_ms", Json::from(self.latency_ms)),
            ("chain_growth_rate", Json::from(self.chain_growth_rate)),
            ("block_interval", Json::from(self.block_interval)),
            (
                "timeout_view_changes",
                Json::from(self.timeout_view_changes),
            ),
        ])
    }
}

fn main() {
    banner("Figure 14: silence attack, 32 nodes, 0..10 Byzantine, 50 ms timeout");
    let mut points = Vec::new();
    for protocol in evaluated_protocols() {
        for byz in [0usize, 2, 4, 6, 8, 10] {
            let runtime_ms = if protocol == ProtocolKind::Streamlet {
                250
            } else {
                500
            };
            let mut config = eval_config(32, 400, 128, runtime_ms);
            config.byzantine_strategy = ByzantineStrategy::Silence;
            config.byz_nodes = byz;
            config.timeout = SimDuration::from_millis(50);
            let report = Benchmarker::new(config, protocol, RunOptions::default()).run_at(20_000.0);
            println!(
                "{:<5} byz={:<2} throughput={:>9.0} tx/s  latency={:>8.2} ms  CGR={:>5.2}  BI={:>5.2}  timeouts={}",
                protocol.label(),
                byz,
                report.throughput_tx_per_sec,
                report.latency.mean_ms,
                report.chain_growth_rate,
                report.block_interval,
                report.timeout_view_changes
            );
            assert_eq!(report.safety_violations, 0, "silence attack broke safety");
            points.push(AttackPoint {
                protocol: protocol.label().to_string(),
                byz_nodes: byz,
                throughput_tx_per_sec: report.throughput_tx_per_sec,
                latency_ms: report.latency.mean_ms,
                chain_growth_rate: report.chain_growth_rate,
                block_interval: report.block_interval,
                timeout_view_changes: report.timeout_view_changes,
            });
        }
    }
    save_json("fig14_silence_attack", &points);
    println!(
        "\nExpected shape (paper): throughput drops with more silent proposers for all\nprotocols; Streamlet CGR stays at 1 and degrades gracefully; BI grows faster than\nunder the forking attack."
    );
}

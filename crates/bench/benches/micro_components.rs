//! Criterion micro-benchmarks of the framework components (not a paper figure;
//! used as an ablation of where time goes inside a replica).
//!
//! Covers: SHA-256 hashing, signing/verification, block-forest insertion and
//! chain predicates, quorum accumulation, and mempool batching.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use bamboo_crypto::{sha256, KeyPair};
use bamboo_forest::BlockForest;
use bamboo_mempool::Mempool;
use bamboo_types::{Block, BlockId, NodeId, QuorumCert, SimTime, Transaction, View, Vote};

fn chain_blocks(len: u64, txs_per_block: u64) -> Vec<Block> {
    let mut blocks = Vec::new();
    let mut parent = BlockId::GENESIS;
    let mut height = bamboo_types::Height(0);
    for view in 1..=len {
        let payload: Vec<Transaction> = (0..txs_per_block)
            .map(|i| Transaction::new(NodeId(9), view * 10_000 + i, 128, SimTime::ZERO))
            .collect();
        let block = Block::new(
            View(view),
            height.next(),
            parent,
            NodeId(view % 4),
            QuorumCert::genesis(),
            payload,
        );
        parent = block.id;
        height = block.height;
        blocks.push(block);
    }
    blocks
}

fn bench_crypto(c: &mut Criterion) {
    let data = vec![0xa5u8; 1024];
    c.bench_function("sha256_1k", |b| b.iter(|| sha256(&data)));

    let kp = KeyPair::from_seed(1);
    c.bench_function("sign", |b| b.iter(|| kp.sign(&data)));
    let sig = kp.sign(&data);
    c.bench_function("verify", |b| b.iter(|| kp.public_key().verify(&data, &sig)));
}

fn bench_forest(c: &mut Criterion) {
    let blocks = chain_blocks(200, 10);
    c.bench_function("forest_insert_200_blocks", |b| {
        b.iter_batched(
            BlockForest::new,
            |mut forest| {
                for block in &blocks {
                    forest.insert(block.clone()).unwrap();
                }
                forest
            },
            BatchSize::SmallInput,
        )
    });

    let mut forest = BlockForest::new();
    for block in &blocks {
        forest.insert(block.clone()).unwrap();
        forest
            .register_qc(QuorumCert {
                block: block.id,
                view: block.view,
                signatures: Default::default(),
            })
            .unwrap();
    }
    let tip = blocks.last().unwrap().id;
    c.bench_function("forest_certified_chain_length", |b| {
        b.iter(|| forest.certified_chain_length(tip))
    });
    c.bench_function("forest_extends_deep", |b| {
        b.iter(|| forest.extends(tip, BlockId::GENESIS))
    });
}

fn bench_quorum(c: &mut Criterion) {
    let keys: Vec<KeyPair> = (0..32).map(KeyPair::from_seed).collect();
    let block = BlockId(bamboo_crypto::Digest::of(b"bench"));
    let votes: Vec<Vote> = keys
        .iter()
        .enumerate()
        .map(|(i, kp)| Vote::new(block, View(5), NodeId(i as u64), kp))
        .collect();
    c.bench_function("quorum_accumulate_32_votes", |b| {
        b.iter_batched(
            || bamboo_core::QuorumTracker::new(32),
            |mut tracker| {
                for vote in &votes {
                    let _ = tracker.add_vote(vote.clone());
                }
                tracker
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_mempool(c: &mut Criterion) {
    let txs: Vec<Transaction> = (0..4_000)
        .map(|i| Transaction::new(NodeId(1), i, 128, SimTime::ZERO))
        .collect();
    c.bench_function("mempool_push_4000_batch_400", |b| {
        b.iter_batched(
            || Mempool::new(10_000),
            |mut pool| {
                for tx in &txs {
                    pool.push(tx.clone());
                }
                while !pool.is_empty() {
                    pool.next_batch(400);
                }
                pool
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_crypto, bench_forest, bench_quorum, bench_mempool
);
criterion_main!(benches);

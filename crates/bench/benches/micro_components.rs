//! Micro-benchmarks of the framework components (not a paper figure; used as
//! an ablation of where time goes inside a replica).
//!
//! Covers: SHA-256 hashing, signing/verification, block-forest insertion and
//! chain predicates, quorum accumulation, and mempool batching. Uses the
//! wall-clock harness from `bamboo_bench::harness` (no external bench
//! framework) and saves a JSON artifact for trend tracking.

use bamboo_bench::harness::{bench, bench_with_setup, MicroResult};
use bamboo_bench::{banner, save_json};
use bamboo_core::{RecordKind, RunOptions, SegmentLog, SimRunner, VerifyPool};
use bamboo_crypto::{sha256, BatchVerifier, KeyPair};
use bamboo_forest::BlockForest;
use bamboo_mempool::Mempool;
use bamboo_sim::{EventQueue, SimRng};
use bamboo_types::{
    Authenticator, Block, BlockId, Config, Message, NodeId, ProtocolKind, QuorumCert, SharedBlock,
    SimDuration, SimTime, Transaction, View, Vote,
};

fn chain_blocks(len: u64, txs_per_block: u64) -> Vec<Block> {
    let mut blocks = Vec::new();
    let mut parent = BlockId::GENESIS;
    let mut height = bamboo_types::Height(0);
    for view in 1..=len {
        let payload: Vec<Transaction> = (0..txs_per_block)
            .map(|i| Transaction::new(NodeId(9), view * 10_000 + i, 128, SimTime::ZERO))
            .collect();
        let block = Block::new(
            View(view),
            height.next(),
            parent,
            NodeId(view % 4),
            QuorumCert::genesis(),
            payload,
        );
        parent = block.id;
        height = block.height;
        blocks.push(block);
    }
    blocks
}

fn bench_crypto(results: &mut Vec<MicroResult>) {
    let data = vec![0xa5u8; 1024];
    results.push(bench("sha256_1k", || sha256(&data)));

    let kp = KeyPair::from_seed(1);
    results.push(bench("sign", || kp.sign(&data)));
    let sig = kp.sign(&data);
    results.push(bench("verify", || kp.public_key().verify(&data, &sig)));

    // The consensus hot path signs and verifies 40-byte vote messages, not
    // kilobyte payloads — these are the numbers the cost model's `t_CPU`
    // stands in for.
    let block = BlockId(bamboo_crypto::Digest::of(b"bench-vote"));
    results.push(bench("sign_vote", || {
        Vote::new(block, View(7), NodeId(1), &kp)
    }));
    let vote = Vote::new(block, View(7), NodeId(1), &kp);
    let pk = kp.public_key();
    results.push(bench("verify_vote", || vote.verify(&pk)));

    // Batched verification of 64 votes over one reused arena vs. 64
    // individual checks (each of which allocates its signing-bytes buffer).
    let keys: Vec<KeyPair> = (0..64).map(KeyPair::from_seed).collect();
    let votes: Vec<Vote> = keys
        .iter()
        .enumerate()
        .map(|(i, k)| Vote::new(block, View(7), NodeId(i as u64), k))
        .collect();
    let mut batch = BatchVerifier::with_capacity(64);
    results.push(bench("batch_verify_64", || {
        for (vote, key) in votes.iter().zip(&keys) {
            batch.push(
                key.public_key(),
                &Vote::signing_bytes(vote.block, vote.view),
                vote.signature,
            );
        }
        batch.verify_all()
    }));
    results.push(bench("verify_64_individual", || {
        votes
            .iter()
            .zip(&keys)
            .all(|(vote, key)| vote.verify(&key.public_key()))
    }));
}

/// The authenticated ingress stage at n = 32: a proposal carrying a
/// 22-signer justify QC is broadcast to 31 peers.
///
/// * `verify_inline_throughput` — what per-replica inline ingress costs: all
///   31 recipients verify the certificate independently.
/// * `verify_pool_throughput` — the cluster-level verify pool: each unique
///   message is verified once by a worker and the proof token is fanned out.
///
/// The pool wins on redundancy elimination alone (31x less signature work
/// per broadcast), before any thread-level parallelism is counted.
fn bench_verify_stage(results: &mut Vec<MicroResult>) {
    const NODES: usize = 32;
    const MSGS_PER_ITER: u64 = 4;
    let keys: Vec<KeyPair> = (0..NODES as u64).map(KeyPair::from_seed).collect();
    let parent = BlockId(bamboo_crypto::Digest::of(b"certified-parent"));
    let quorum_votes: Vec<Vote> = keys
        .iter()
        .enumerate()
        .take(bamboo_types::ids::quorum_threshold(NODES))
        .map(|(i, k)| Vote::new(parent, View(1), NodeId(i as u64), k))
        .collect();
    let justify = QuorumCert::from_votes(parent, View(1), &quorum_votes);
    let messages: Vec<Message> = (0..MSGS_PER_ITER)
        .map(|i| {
            Message::Proposal(SharedBlock::new(Block::new(
                View(2),
                bamboo_types::Height(2),
                parent,
                NodeId(i % NODES as u64),
                justify.clone(),
                Vec::new(),
            )))
        })
        .collect();

    let mut auth = Authenticator::for_nodes(NODES);
    results.push(bench("verify_inline_throughput", || {
        let mut accepted = 0u32;
        for message in &messages {
            // Every one of the 31 recipients re-verifies the same broadcast.
            for _ in 1..NODES {
                if auth.authenticate(NodeId(0), message.clone()).is_ok() {
                    accepted += 1;
                }
            }
        }
        accepted
    }));

    let pool = VerifyPool::new(NODES, 2, |_to, _verified| {});
    let handle = pool.handle();
    let mut submitted = 0u64;
    results.push(bench("verify_pool_throughput", || {
        for message in &messages {
            handle.submit_broadcast(NodeId(0), message.clone());
        }
        submitted += MSGS_PER_ITER;
        // Wait until the pool has drained this iteration's submissions;
        // yield so the workers get the core on small machines.
        while pool.processed() < submitted {
            std::thread::yield_now();
        }
    }));
    drop(handle);
    pool.shutdown();
}

fn bench_forest(results: &mut Vec<MicroResult>) {
    let blocks = chain_blocks(200, 10);
    // Insert the shared handles the way the replica does with blocks received
    // off the wire: each insert is a pointer bump, never a payload copy.
    let shared: Vec<SharedBlock> = blocks.iter().cloned().map(SharedBlock::new).collect();
    results.push(bench_with_setup(
        "forest_insert_200_blocks",
        BlockForest::new,
        |mut forest| {
            for block in &shared {
                forest.insert(block.clone()).unwrap();
            }
            forest
        },
    ));

    let mut forest = BlockForest::new();
    for block in &blocks {
        forest.insert(block.clone()).unwrap();
        forest
            .register_qc(QuorumCert {
                block: block.id,
                view: block.view,
                signatures: Default::default(),
            })
            .unwrap();
    }
    let tip = blocks.last().unwrap().id;
    results.push(bench("forest_certified_chain_length", || {
        forest.certified_chain_length(tip)
    }));
    results.push(bench("forest_extends_deep", || {
        forest.extends(tip, BlockId::GENESIS)
    }));

    // QC registration over a long chain: with the incremental
    // highest-certified tracking this is O(1) per QC regardless of forest
    // size (the seed implementation fell back to a full-vertex scan).
    let qc_blocks = chain_blocks(1_000, 1);
    let mut uncertified = BlockForest::new();
    for block in &qc_blocks {
        uncertified.insert(block.clone()).unwrap();
    }
    let qcs: Vec<QuorumCert> = qc_blocks
        .iter()
        .map(|block| QuorumCert {
            block: block.id,
            view: block.view,
            signatures: Default::default(),
        })
        .collect();
    results.push(bench_with_setup(
        "forest_register_qc_1k",
        || uncertified.clone(),
        |mut forest| {
            for qc in &qcs {
                forest.register_qc(qc.clone()).unwrap();
            }
            forest
        },
    ));
}

fn bench_broadcast(results: &mut Vec<MicroResult>) {
    // A 400-transaction proposal fanned out to 32 peers — the hot path of
    // every view at n = 32. The message holds the block behind a shared
    // handle, so each per-peer clone is a pointer bump, not a payload copy.
    let payload: Vec<Transaction> = (0..400)
        .map(|i| Transaction::new(NodeId(1), i, 128, SimTime::ZERO))
        .collect();
    let block = Block::new(
        View(1),
        bamboo_types::Height(1),
        BlockId::GENESIS,
        NodeId(0),
        QuorumCert::genesis(),
        payload,
    );
    let message = Message::Proposal(SharedBlock::new(block.clone()));
    results.push(bench("broadcast_fanout_32_peers", || {
        let mut outbox: Vec<Message> = Vec::with_capacity(32);
        for _ in 0..32 {
            outbox.push(message.clone());
        }
        outbox
    }));

    // Reference point: what the same fan-out costs when every peer gets a
    // deep copy of the block (the pre-zero-copy behaviour). Kept in the
    // artifact so the speedup stays visible in the bench trajectory.
    results.push(bench("broadcast_fanout_32_peers_deepcopy", || {
        let mut outbox: Vec<Message> = Vec::with_capacity(32);
        for _ in 0..32 {
            outbox.push(Message::Proposal(SharedBlock::new(block.clone())));
        }
        outbox
    }));
}

fn bench_quorum(results: &mut Vec<MicroResult>) {
    let keys: Vec<KeyPair> = (0..32).map(KeyPair::from_seed).collect();
    let block = BlockId(bamboo_crypto::Digest::of(b"bench"));
    let votes: Vec<Vote> = keys
        .iter()
        .enumerate()
        .map(|(i, kp)| Vote::new(block, View(5), NodeId(i as u64), kp))
        .collect();
    results.push(bench_with_setup(
        "quorum_accumulate_32_votes",
        || bamboo_core::QuorumTracker::new(32),
        |mut tracker| {
            for vote in &votes {
                let _ = tracker.add_vote(vote.clone());
            }
            tracker
        },
    ));
}

fn bench_mempool(results: &mut Vec<MicroResult>) {
    let txs: Vec<Transaction> = (0..4_000)
        .map(|i| Transaction::new(NodeId(1), i, 128, SimTime::ZERO))
        .collect();
    results.push(bench_with_setup(
        "mempool_push_4000_batch_400",
        || Mempool::new(10_000),
        |mut pool| {
            // The client-ingest hot path: workload arrivals land in batches,
            // so capacity is reserved once and each id is hashed once.
            pool.push_batch(txs.iter().cloned());
            while !pool.is_empty() {
                pool.next_batch(400);
            }
            pool
        },
    ));
}

/// The durable segment log: the write-ahead path every committed block and
/// pre-vote safety record takes in durable-log mode, and the replay path a
/// restarting replica walks. In-memory backend, so the micro times the
/// framing/CRC/rotation machinery rather than the disk.
fn bench_storage(results: &mut Vec<MicroResult>) {
    const RECORDS: u64 = 1_024;
    // Payload shaped like a small committed-block record.
    let payload = vec![0xb7u8; 256];
    let append = bench_with_setup(
        "log_append_1k",
        || SegmentLog::in_memory(1 << 20, 8),
        |mut log| {
            for _ in 0..RECORDS {
                log.append(RecordKind::CommittedBlock, &payload);
            }
            log.sync();
            log
        },
    );
    let records_per_sec = RECORDS as f64 / (append.value / 1e9);
    println!(
        "{:<36} {records_per_sec:>14.0} records/s",
        "log_append_throughput"
    );
    results.push(MicroResult {
        name: "log_append_throughput".to_string(),
        value: records_per_sec,
        iters: append.iters,
        unit: "records_per_sec",
    });
    results.push(append);

    // Replay of a 1k-record log (what a durable restart pays before it can
    // rejoin), decoded across several rotated segments.
    let mut log = SegmentLog::in_memory(64 * 1024, 8);
    for _ in 0..1_000 {
        log.append(RecordKind::CommittedBlock, &payload);
    }
    log.sync();
    results.push(bench("log_replay_1k", || {
        let replayed = log.replay();
        assert_eq!(replayed.records.len(), 1_000);
        replayed
    }));
}

/// The event queue under a simulator-shaped schedule: 64k events pushed as a
/// mix of near-future deliveries (µs-scale deltas), same-instant ties and
/// far-out timers, interleaved with pops — the access pattern of one
/// `SimRunner` run compressed into a micro.
fn bench_event_queue(results: &mut Vec<MicroResult>) {
    const EVENTS: u64 = 65_536;
    let mut rng = SimRng::new(42);
    // Pre-generate the schedule so the micro times the queue, not the RNG.
    let mut deltas: Vec<u64> = Vec::with_capacity(EVENTS as usize);
    for i in 0..EVENTS {
        deltas.push(match i % 16 {
            // Far timer (pacemaker view timeout scale).
            0 => 100_000_000 + rng.choose_index(1_000_000) as u64,
            // Same-instant tie with the previous event.
            1 | 2 => 0,
            // Near-future delivery: NIC + link latency scale.
            _ => 50_000 + rng.choose_index(400_000) as u64,
        });
    }
    results.push(bench("event_queue_schedule_pop_64k", || {
        let mut queue: EventQueue<u64> = EventQueue::new();
        let mut now = SimTime::ZERO;
        let mut last = SimTime::ZERO;
        let mut popped = 0u64;
        for (i, delta) in deltas.iter().enumerate() {
            let at = if *delta == 0 {
                last
            } else {
                last = SimTime(now.as_nanos() + delta);
                last
            };
            queue.schedule(at, i as u64);
            // Keep roughly half the schedule in flight, like a live run.
            if i % 2 == 1 {
                let (t, _) = queue.pop().expect("queue is non-empty");
                now = t;
                popped += 1;
            }
        }
        while queue.pop().is_some() {
            popped += 1;
        }
        popped
    }));
}

/// End-to-end engine throughput: a broadcast-heavy n = 64 HotStuff run,
/// reported both as wall-clock per run and as simulation events per second
/// (the engine's headline speed metric; higher is better).
fn bench_sim_engine(results: &mut Vec<MicroResult>) {
    let config = Config::builder()
        .nodes(64)
        .block_size(400)
        .payload_size(128)
        .runtime(SimDuration::from_millis(100))
        .arrival_rate(30_000.0)
        .timeout(SimDuration::from_millis(100))
        .seed(2021)
        .build()
        .expect("valid benchmark configuration");
    // The run is deterministic, so the event count is a constant of the
    // configuration; take it from one untimed run.
    let events = SimRunner::new(
        config.clone(),
        ProtocolKind::HotStuff,
        RunOptions::default(),
    )
    .run()
    .events_processed;
    let run = bench("sim_run_n64_hotstuff", || {
        SimRunner::new(
            config.clone(),
            ProtocolKind::HotStuff,
            RunOptions::default(),
        )
        .run()
    });
    let events_per_sec = events as f64 / (run.value / 1e9);
    println!(
        "{:<36} {events_per_sec:>14.0} events/s  ({events} events per run)",
        "sim_events_per_sec_n64"
    );
    results.push(MicroResult {
        name: "sim_events_per_sec_n64".to_string(),
        value: events_per_sec,
        iters: run.iters,
        unit: "events_per_sec",
    });
    results.push(run);
}

fn main() {
    banner("Micro-benchmarks: component costs inside a replica");
    let mut results = Vec::new();
    bench_crypto(&mut results);
    bench_verify_stage(&mut results);
    bench_forest(&mut results);
    bench_broadcast(&mut results);
    bench_quorum(&mut results);
    bench_mempool(&mut results);
    bench_storage(&mut results);
    bench_event_queue(&mut results);
    bench_sim_engine(&mut results);
    save_json("micro_components", &results);
}

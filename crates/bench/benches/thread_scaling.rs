//! Thread-scaling bench for the window-barrier parallel engine.
//!
//! Runs the *same* n = 256 HotStuff configuration at 1, 2 and 4 engine
//! shards, timing each run individually and asserting that every thread
//! count commits the **identical ledger fingerprint** — the speedup claim is
//! only meaningful because the answer is bit-for-bit the same.
//!
//! The artifact (`target/bamboo-bench/thread_scaling.json`) records, per
//! thread count: events processed, wall seconds, events/s, the fingerprint,
//! and the queue statistics (summed and per-shard peak). `bench_diff`
//! compares events/s per `threads` key against the matching key of the
//! latest snapshot — never across thread counts, since those measure
//! different parallelism, not a regression.
//!
//! The absolute speedup is machine-dependent: on a single-core runner the
//! 2- and 4-shard points measure barrier overhead (expect ~1x or below);
//! the >= 3x headline materialises on the multi-core CI runners. The
//! `host_cpus` field records what the measurement ran on so readers can
//! interpret the ratios.

use std::time::Instant;

use bamboo_bench::{banner, eval_config, save_json, Json, ToJson};
use bamboo_core::{RunOptions, SimRunner};
use bamboo_types::ProtocolKind;

struct ScalingPoint {
    threads: usize,
    events_processed: u64,
    wall_secs: f64,
    events_per_sec: f64,
    fingerprint: String,
    queue_peak_len: u64,
    max_shard_queue_peak: u64,
}

impl ToJson for ScalingPoint {
    fn to_json(&self) -> Json {
        Json::obj([
            ("threads", Json::from(self.threads)),
            ("events_processed", Json::from(self.events_processed)),
            ("wall_secs", Json::from(self.wall_secs)),
            ("events_per_sec", Json::from(self.events_per_sec)),
            ("fingerprint", Json::from(self.fingerprint.as_str())),
            ("queue_peak_len", Json::from(self.queue_peak_len)),
            (
                "max_shard_queue_peak",
                Json::from(self.max_shard_queue_peak),
            ),
        ])
    }
}

fn main() {
    let nodes = 256usize;
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    banner(&format!(
        "Thread scaling: HS at n = {nodes}, threads = 1 / 2 / 4 ({host_cpus} host cpu(s))"
    ));

    let mut points: Vec<ScalingPoint> = Vec::new();
    for threads in [1usize, 2, 4] {
        // A longer window than the scalability sweep's n = 256 point so the
        // rate is dominated by steady-state window execution, not by the
        // fixed per-run setup (key generation, shard construction).
        let mut config = eval_config(nodes, 400, 128, 250);
        config.arrival_rate = Some(60_000.0 / (nodes as f64 / 4.0).sqrt());
        let options = RunOptions {
            threads,
            ..RunOptions::default()
        };
        let started = Instant::now();
        let report = SimRunner::new(config, ProtocolKind::HotStuff, options).run();
        let wall = started.elapsed().as_secs_f64();
        assert_eq!(report.safety_violations, 0, "threads={threads}");
        let events_per_sec = report.events_processed as f64 / wall;
        println!(
            "threads={threads}   events = {:>10}   wall = {:>6.2} s   rate = {:>10.0} events/s   fp {}",
            report.events_processed,
            wall,
            events_per_sec,
            &report.ledger_fingerprint[..16],
        );
        points.push(ScalingPoint {
            threads,
            events_processed: report.events_processed,
            wall_secs: wall,
            events_per_sec,
            fingerprint: report.ledger_fingerprint,
            queue_peak_len: report.queue_peak_len,
            max_shard_queue_peak: report.max_shard_queue_peak,
        });
    }

    // The determinism contract is part of the bench: a speedup that changes
    // the answer is not a speedup.
    let base_fp = points[0].fingerprint.clone();
    for point in &points[1..] {
        assert_eq!(
            point.fingerprint, base_fp,
            "threads={} diverged from the single-thread ledger",
            point.threads
        );
    }
    let speedup =
        points.last().map(|p| p.events_per_sec).unwrap_or(0.0) / points[0].events_per_sec.max(1e-9);

    let artifact = Json::obj([
        ("protocol", Json::from("HS")),
        ("nodes", Json::from(nodes)),
        ("host_cpus", Json::from(host_cpus)),
        ("points", points.to_json()),
        ("speedup_4_vs_1", Json::from(speedup)),
    ]);
    save_json("thread_scaling", &artifact);
    println!(
        "\nspeedup (4 threads vs 1) = {speedup:.2}x on {host_cpus} host cpu(s); \
         all fingerprints identical"
    );
}

//! Figure 10 — throughput vs latency for transaction payloads of 0, 128 and
//! 1024 bytes (block size 400, 4 replicas).
//!
//! Expected shape: larger payloads reduce throughput for every protocol;
//! Streamlet is the most sensitive because every message is echoed; the
//! latency gap between HS and 2CHS narrows as the payload grows (transmission
//! delay starts to dominate).

use bamboo_bench::{
    banner, default_sweep, eval_config, evaluated_protocols, print_curve, save_json, sweep,
    LabelledCurve,
};

fn main() {
    banner("Figure 10: throughput vs latency, payload sizes 0/128/1024 B");
    let mut curves = Vec::new();
    for payload in [0usize, 128, 1024] {
        let config = eval_config(4, 400, payload, 500);
        for protocol in evaluated_protocols() {
            let label = format!("{}-p{payload}", protocol.label());
            let points = sweep(protocol, &config, default_sweep());
            print_curve(&label, &points);
            curves.push(LabelledCurve { label, points });
        }
    }
    save_json("fig10_payload_sizes", &curves);
    println!(
        "\nExpected shape (paper): throughput falls as payload grows; Streamlet is most\nsensitive; the HS vs 2CHS latency gap narrows at 1024-byte payloads."
    );
}

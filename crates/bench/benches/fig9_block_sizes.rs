//! Figure 9 — throughput vs latency for block sizes 100, 400 and 800,
//! including the independent "original HotStuff" (OHS) baseline.
//!
//! Paper setting: 4 replicas, zero-payload transactions, client load increased
//! until saturation. Expected shape: L-shaped curves; a large gain from
//! b100 → b400, a much smaller one from b400 → b800; OHS lands in the same
//! envelope as Bamboo-HS; Streamlet has the lowest throughput at every block
//! size.

use bamboo_bench::{
    banner, default_sweep, eval_config, evaluated_protocols, print_curve, save_json, sweep,
    LabelledCurve,
};
use bamboo_types::ProtocolKind;

fn main() {
    banner("Figure 9: throughput vs latency, block sizes 100/400/800 (+ OHS baseline)");
    let mut curves = Vec::new();
    for bsize in [100usize, 400, 800] {
        let config = eval_config(4, bsize, 0, 500);
        for protocol in evaluated_protocols() {
            let label = format!("{}-b{bsize}", protocol.label());
            let points = sweep(protocol, &config, default_sweep());
            print_curve(&label, &points);
            curves.push(LabelledCurve { label, points });
        }
    }
    // The paper only shows the OHS baseline at block sizes 100 and 800.
    for bsize in [100usize, 800] {
        let config = eval_config(4, bsize, 0, 500);
        let label = format!("OHS-b{bsize}");
        let points = sweep(ProtocolKind::OriginalHotStuff, &config, default_sweep());
        print_curve(&label, &points);
        curves.push(LabelledCurve { label, points });
    }
    save_json("fig9_block_sizes", &curves);
    println!(
        "\nExpected shape (paper): large gain from b100 to b400, small gain beyond;\nOHS comparable to Bamboo-HS; Streamlet lowest throughput."
    );
}

//! Large-n scalability sweep: HotStuff, 2CHS and Streamlet at
//! n ∈ {16, 64, 128, 256} — the figure-class experiment the pre-PR-4 engine
//! was too slow to run routinely. All points execute as one parallel batch
//! on the bounded sweep pool (`Benchmarker::run_all`); results come back in
//! input order, so the JSON artifact is byte-stable across worker counts.
//!
//! Beyond throughput/latency, each point records the *engine's* speed
//! (simulation events per wall-clock second) and the event-queue memory
//! high-water mark, so the scalability of the simulator itself is tracked
//! alongside the scalability of the protocols.
//!
//! Expected shape (paper, Fig. 12 extended): throughput falls and latency
//! rises with n for every protocol; HS and 2CHS stay comparable while
//! Streamlet's cubic message complexity makes its large-n points explode in
//! cost — its measurement windows are shortened accordingly, and the paper
//! makes the same caveat for n > 64.

use std::time::Instant;

use bamboo_bench::{banner, eval_config, save_json, Json, ToJson};
use bamboo_core::{Benchmarker, RunOptions};
use bamboo_types::{Config, ProtocolKind};

struct ScalePoint {
    protocol: String,
    nodes: usize,
    threads: usize,
    throughput_tx_per_sec: f64,
    latency_ms: f64,
    committed_blocks: u64,
    events_processed: u64,
    queue_peak_len: u64,
    safety_violations: u64,
}

impl ToJson for ScalePoint {
    fn to_json(&self) -> Json {
        Json::obj([
            ("protocol", Json::from(self.protocol.as_str())),
            ("nodes", Json::from(self.nodes)),
            ("threads", Json::from(self.threads)),
            (
                "throughput_tx_per_sec",
                Json::from(self.throughput_tx_per_sec),
            ),
            ("latency_ms", Json::from(self.latency_ms)),
            ("committed_blocks", Json::from(self.committed_blocks)),
            ("events_processed", Json::from(self.events_processed)),
            ("queue_peak_len", Json::from(self.queue_peak_len)),
            ("safety_violations", Json::from(self.safety_violations)),
        ])
    }
}

/// Measurement window per point. Streamlet's O(n^3) vote echoing means a
/// *single view* at n = 256 is ~16M message deliveries, so its two largest
/// windows are deliberately shorter than one commit latency: those points
/// measure the engine driving the cubic storm deterministically (events and
/// queue peak in the artifact), not protocol throughput — the paper makes
/// the same "of limited meaning" caveat for Streamlet beyond n = 64.
fn runtime_ms(protocol: ProtocolKind, nodes: usize) -> u64 {
    match (protocol, nodes) {
        (ProtocolKind::Streamlet, 256) => 6,
        (ProtocolKind::Streamlet, 128) => 15,
        (ProtocolKind::Streamlet, 64) => 250,
        (ProtocolKind::Streamlet, _) => 300,
        (_, 256) => 60,
        (_, 128) => 100,
        _ => 200,
    }
}

fn main() {
    banner("Scalability sweep: HS / 2CHS / SL at n = 16, 64, 128, 256");
    let sizes = [16usize, 64, 128, 256];
    let protocols = [
        ProtocolKind::HotStuff,
        ProtocolKind::TwoChainHotStuff,
        ProtocolKind::Streamlet,
    ];
    let mut grid: Vec<(ProtocolKind, usize)> = Vec::new();
    let mut points: Vec<(Config, ProtocolKind, RunOptions)> = Vec::new();
    for &protocol in &protocols {
        for &nodes in &sizes {
            let mut config = eval_config(nodes, 400, 128, runtime_ms(protocol, nodes));
            // Offered load scaled down as n grows, as in Fig. 12.
            config.arrival_rate = Some(60_000.0 / (nodes as f64 / 4.0).sqrt());
            grid.push((protocol, nodes));
            points.push((config, protocol, RunOptions::default()));
        }
    }

    let started = Instant::now();
    let reports = Benchmarker::run_all(points);
    let wall = started.elapsed();
    let total_events: u64 = reports.iter().map(|r| r.events_processed).sum();
    let events_per_sec = total_events as f64 / wall.as_secs_f64();

    let mut out = Vec::new();
    for ((protocol, nodes), report) in grid.into_iter().zip(reports) {
        println!(
            "{:<5} n={:<4} throughput = {:>9.0} tx/s   latency = {:>8.2} ms   blocks = {:>4}   events = {:>9}   queue peak = {:>7}",
            protocol.label(),
            nodes,
            report.throughput_tx_per_sec,
            report.latency.mean_ms,
            report.committed_blocks,
            report.events_processed,
            report.queue_peak_len,
        );
        assert_eq!(
            report.safety_violations, 0,
            "{protocol} n={nodes} violated safety"
        );
        out.push(ScalePoint {
            protocol: protocol.label().to_string(),
            nodes,
            threads: report.threads,
            throughput_tx_per_sec: report.throughput_tx_per_sec,
            latency_ms: report.latency.mean_ms,
            committed_blocks: report.committed_blocks,
            events_processed: report.events_processed,
            queue_peak_len: report.queue_peak_len,
            safety_violations: report.safety_violations,
        });
    }
    // The artifact separates the deterministic sweep points from the
    // (wall-clock, machine-dependent) engine-rate numbers so `bench_diff`
    // can compare both: per-point throughput regresses downward, and so
    // does the aggregate events/s of the engine itself.
    let artifact = Json::obj([
        ("points", out.to_json()),
        ("total_events", Json::from(total_events)),
        ("wall_secs", Json::from(wall.as_secs_f64())),
        ("events_per_sec", Json::from(events_per_sec)),
    ]);
    save_json("scalability_large_n", &artifact);
    println!(
        "\n{} points, {total_events} simulation events in {:.1} s wall ({events_per_sec:.0} events/s end-to-end)",
        out.len(),
        wall.as_secs_f64(),
    );
}

//! Figure 12 — scalability: peak throughput and latency for 4, 8, 16, 32 and
//! 64 replicas (block size 400, payload 128 B), averaged over repeated runs.
//!
//! Expected shape: throughput falls and latency rises with the number of
//! nodes for every protocol; HotStuff and 2CHS stay comparable, Streamlet
//! degrades fastest and its large-n points are of limited meaning due to its
//! cubic message complexity (the paper makes the same caveat for n > 64).

use bamboo_bench::{banner, eval_config, evaluated_protocols, save_json, Json, ToJson};
use bamboo_core::{Benchmarker, RunOptions};
use bamboo_types::ProtocolKind;

struct ScalePoint {
    protocol: String,
    nodes: usize,
    mean_throughput_tx_per_sec: f64,
    std_throughput: f64,
    mean_latency_ms: f64,
    std_latency_ms: f64,
}

impl ToJson for ScalePoint {
    fn to_json(&self) -> Json {
        Json::obj([
            ("protocol", Json::from(self.protocol.as_str())),
            ("nodes", Json::from(self.nodes)),
            (
                "mean_throughput_tx_per_sec",
                Json::from(self.mean_throughput_tx_per_sec),
            ),
            ("std_throughput", Json::from(self.std_throughput)),
            ("mean_latency_ms", Json::from(self.mean_latency_ms)),
            ("std_latency_ms", Json::from(self.std_latency_ms)),
        ])
    }
}

fn mean_std(values: &[f64]) -> (f64, f64) {
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
    (mean, var.sqrt())
}

fn main() {
    banner("Figure 12: scalability, 4..64 nodes (block 400, payload 128 B)");
    let sizes = [4usize, 8, 16, 32, 64];
    let seeds = [2021u64, 2022, 2023];
    // Build the whole grid up front and run it as one parallel batch on the
    // bounded sweep pool; results come back in input order, so the per-point
    // aggregation below is identical to the old sequential loop.
    let mut grid: Vec<(ProtocolKind, usize)> = Vec::new();
    let mut jobs = Vec::new();
    for protocol in evaluated_protocols() {
        for &nodes in &sizes {
            // Streamlet's O(n^3) message complexity makes large-n runs very
            // slow (and, as the paper notes, not very meaningful); shorten the
            // measurement window as n grows.
            let runtime_ms = match (protocol, nodes) {
                (ProtocolKind::Streamlet, 64) => 250,
                (ProtocolKind::Streamlet, 32) => 300,
                (_, 64) => 250,
                _ => 400,
            };
            // Offered load scaled down as n grows (the paper's testbed also
            // saturates at lower rates for larger clusters).
            let rate = 60_000.0 / (nodes as f64 / 4.0).sqrt();
            grid.push((protocol, nodes));
            for &seed in &seeds {
                let mut config = eval_config(nodes, 400, 128, runtime_ms);
                config.seed = seed;
                config.arrival_rate = Some(rate);
                jobs.push((config, protocol, RunOptions::default()));
            }
        }
    }
    let reports = Benchmarker::run_all(jobs);

    let mut points = Vec::new();
    for (index, (protocol, nodes)) in grid.into_iter().enumerate() {
        let runs = &reports[index * seeds.len()..(index + 1) * seeds.len()];
        let throughputs: Vec<f64> = runs.iter().map(|r| r.throughput_tx_per_sec).collect();
        let latencies: Vec<f64> = runs.iter().map(|r| r.latency.mean_ms).collect();
        let (mean_tput, std_tput) = mean_std(&throughputs);
        let (mean_lat, std_lat) = mean_std(&latencies);
        println!(
            "{:<5} n={:<3} throughput = {:>9.0} ± {:>7.0} tx/s   latency = {:>8.2} ± {:>6.2} ms",
            protocol.label(),
            nodes,
            mean_tput,
            std_tput,
            mean_lat,
            std_lat
        );
        points.push(ScalePoint {
            protocol: protocol.label().to_string(),
            nodes,
            mean_throughput_tx_per_sec: mean_tput,
            std_throughput: std_tput,
            mean_latency_ms: mean_lat,
            std_latency_ms: std_lat,
        });
    }
    save_json("fig12_scalability", &points);
    println!(
        "\nExpected shape (paper): throughput drops and latency grows with n; HS and 2CHS\nremain comparable; Streamlet scales worst."
    );
}

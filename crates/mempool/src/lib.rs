//! Memory pool — Bamboo's `Mempool` component.
//!
//! The paper describes the mempool as "a bidirectional queue in which new
//! transactions are inserted from the back while old transactions (from
//! forked blocks) are inserted from the front" (§III-E). Each replica keeps a
//! local pool, so no cross-replica duplication check is needed.
//!
//! The pool enforces a capacity bound (`memsize` from Table I); when full it
//! rejects new arrivals (back-pressure), which is how the open-loop saturation
//! sweep drives the system past collapse — every rejection is counted and
//! surfaced as an admission-control statistic, never a silent drop.
//!
//! # Sharding
//!
//! The pool is internally split into `K` independent shards keyed by the
//! leading bits of the transaction id ([`Mempool::with_shards`]). Because a
//! transaction id is a digest, the key is uniform; because the same id always
//! maps to the same shard, per-shard duplicate detection is globally exact.
//! Each shard owns its queue, id set and a capacity slice of `memsize / K`,
//! so shards never contend by construction — the single-threaded analogue of
//! a lock-free sharded pool — and admission control degrades gracefully: one
//! hot shard rejecting does not stall the other `K − 1`. Draining is a
//! deterministic round-robin over the shards with a persistent cursor, so a
//! proposer's batch composition is a pure function of the push history.
//! `K = 1` (the default) is byte-identical to the historical single
//! bidirectional queue.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{HashSet, VecDeque};

use bamboo_types::{Transaction, TxId};

/// Statistics about mempool activity, used by the benchmarker.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MempoolStats {
    /// Transactions currently buffered.
    pub pending: usize,
    /// Total accepted since creation.
    pub accepted: u64,
    /// Total rejected because the pool (shard) was full or the transaction
    /// was a duplicate — the admission-control backpressure counter.
    pub rejected: u64,
    /// Total re-queued from forked blocks.
    pub requeued: u64,
    /// Total handed out in batches.
    pub dispatched: u64,
}

/// One independent slice of the pool: its own queue, id set and capacity.
#[derive(Clone, Debug)]
struct Shard {
    queue: VecDeque<Transaction>,
    /// Ids currently in this shard's queue, to drop duplicate re-submissions.
    in_queue: HashSet<TxId>,
    capacity: usize,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        // Pre-size both the queue and the id set: the pool runs at or near
        // capacity under saturation, and growing a HashSet re-hashes every id.
        let hint = capacity.min(4096);
        Self {
            queue: VecDeque::with_capacity(hint),
            in_queue: HashSet::with_capacity(hint),
            capacity,
        }
    }
}

/// A bounded, bidirectional transaction queue, internally sharded by
/// transaction-id bits.
///
/// # Example
///
/// ```
/// use bamboo_mempool::Mempool;
/// use bamboo_types::{NodeId, SimTime, Transaction};
///
/// let mut pool = Mempool::new(100);
/// for seq in 0..10 {
///     pool.push(Transaction::new(NodeId(1), seq, 0, SimTime::ZERO));
/// }
/// let batch = pool.next_batch(4);
/// assert_eq!(batch.len(), 4);
/// assert_eq!(pool.len(), 6);
/// ```
#[derive(Clone, Debug)]
pub struct Mempool {
    shards: Vec<Shard>,
    /// Round-robin drain cursor: the shard the next [`Mempool::next_batch`]
    /// pop starts at. Persistent across calls so consecutive small batches
    /// drain the shards evenly.
    cursor: usize,
    /// Total buffered transactions across all shards (kept incrementally so
    /// `len` is O(1) regardless of the shard count).
    len: usize,
    stats: MempoolStats,
}

impl Mempool {
    /// Creates an unsharded pool bounded to `capacity` transactions —
    /// equivalent to [`Mempool::with_shards`] with one shard.
    pub fn new(capacity: usize) -> Self {
        Self::with_shards(capacity, 1)
    }

    /// Creates a pool of `shards` independent slices with a total bound of
    /// `capacity` transactions; each shard holds at most
    /// `max(1, capacity / shards)`.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        assert!(shards > 0, "mempool needs at least one shard");
        let per_shard = (capacity / shards).max(1);
        Self {
            shards: (0..shards).map(|_| Shard::new(per_shard)).collect(),
            cursor: 0,
            len: 0,
            stats: MempoolStats::default(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a transaction id belongs to: the leading 64 bits of the
    /// digest modulo the shard count. Uniform (the id is a hash) and stable
    /// (same id, same shard — which makes per-shard dedup globally exact).
    fn shard_of(&self, id: &TxId) -> usize {
        if self.shards.len() == 1 {
            return 0;
        }
        let lead: [u8; 8] = id.0.as_bytes()[..8].try_into().expect("digest is 32 bytes");
        (u64::from_be_bytes(lead) % self.shards.len() as u64) as usize
    }

    /// Number of buffered transactions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns true if the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns true if every shard is at capacity.
    pub fn is_full(&self) -> bool {
        self.shards
            .iter()
            .all(|shard| shard.queue.len() >= shard.capacity)
    }

    /// Remaining capacity summed over all shards. A push can still be
    /// rejected with remaining capacity left when its *own* shard is full.
    pub fn remaining_capacity(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| shard.capacity.saturating_sub(shard.queue.len()))
            .sum()
    }

    /// Appends a fresh transaction at the back of its shard's queue.
    ///
    /// Returns `false` (and drops the transaction, counting the rejection) if
    /// the shard is full or the transaction is already queued.
    pub fn push(&mut self, tx: Transaction) -> bool {
        let shard_index = self.shard_of(&tx.id);
        let shard = &mut self.shards[shard_index];
        // One hash per push: `insert` already reports duplicates, so a
        // separate `contains` pre-check would just re-hash the id.
        if shard.queue.len() >= shard.capacity || !shard.in_queue.insert(tx.id) {
            self.stats.rejected += 1;
            return false;
        }
        shard.queue.push_back(tx);
        self.len += 1;
        self.stats.accepted += 1;
        true
    }

    /// Appends a batch of fresh transactions, reserving queue and id-set
    /// capacity from the batch size up front — the client-ingest hot path
    /// (replicas receive workload arrivals in per-tick batches). Returns how
    /// many were accepted; duplicates and overflow are rejected exactly as
    /// by [`Mempool::push`].
    pub fn push_batch(&mut self, txs: impl IntoIterator<Item = Transaction>) -> usize {
        let txs = txs.into_iter();
        let (hint, _) = txs.size_hint();
        let room = hint
            .min(self.remaining_capacity())
            .div_ceil(self.shards.len());
        for shard in &mut self.shards {
            shard.queue.reserve(room);
            shard.in_queue.reserve(room);
        }
        let mut accepted = 0usize;
        for tx in txs {
            if self.push(tx) {
                accepted += 1;
            }
        }
        accepted
    }

    /// Re-inserts transactions recovered from forked (overwritten) blocks at
    /// the *front* of their shard's queue so they are re-proposed first,
    /// exactly as the paper describes. Re-queued transactions bypass the
    /// capacity bound: they were already accepted once.
    pub fn requeue_front(&mut self, txs: Vec<Transaction>) {
        // Preserve original ordering: push in reverse so the first element of
        // `txs` ends up at the very front of its shard.
        for tx in txs.into_iter().rev() {
            let shard_index = self.shard_of(&tx.id);
            let shard = &mut self.shards[shard_index];
            if shard.in_queue.insert(tx.id) {
                shard.queue.push_front(tx);
                self.len += 1;
                self.stats.requeued += 1;
            }
        }
    }

    /// Pops up to `max` transactions, round-robin across the shards from the
    /// persistent cursor — the proposer's batching strategy ("batch all the
    /// transactions in the memory pool if the amount is less than the target
    /// block size"), generalised to shards deterministically: the batch
    /// composition is a pure function of the push history, independent of
    /// when the shards were drained.
    pub fn next_batch(&mut self, max: usize) -> Vec<Transaction> {
        let take = max.min(self.len);
        let mut batch = Vec::with_capacity(take);
        let shards = self.shards.len();
        while batch.len() < take {
            // Find the next non-empty shard from the cursor. `take ≤ len`
            // guarantees one exists.
            while self.shards[self.cursor].queue.is_empty() {
                self.cursor = (self.cursor + 1) % shards;
            }
            let shard = &mut self.shards[self.cursor];
            let tx = shard.queue.pop_front().expect("shard is non-empty");
            shard.in_queue.remove(&tx.id);
            batch.push(tx);
            self.cursor = (self.cursor + 1) % shards;
        }
        self.len -= batch.len();
        self.stats.dispatched += batch.len() as u64;
        batch
    }

    /// Removes transactions that have been committed elsewhere (e.g. observed
    /// in a committed block proposed by another replica), preventing
    /// re-proposal. Returns how many were removed.
    pub fn remove_committed<'a>(&mut self, ids: impl IntoIterator<Item = &'a TxId>) -> usize {
        // Single pass over the ids: each shard's `in_queue` mirrors its queue
        // membership, so removing from the set both counts the victims and
        // marks them — one retain sweep per *touched* shard then keeps
        // exactly the ids still in its set.
        let mut removed_in: Vec<usize> = vec![0; self.shards.len()];
        let mut removed = 0usize;
        for id in ids {
            let shard_index = self.shard_of(id);
            if self.shards[shard_index].in_queue.remove(id) {
                removed_in[shard_index] += 1;
                removed += 1;
            }
        }
        if removed > 0 {
            for (shard, &hits) in self.shards.iter_mut().zip(&removed_in) {
                if hits > 0 {
                    shard.queue.retain(|tx| shard.in_queue.contains(&tx.id));
                }
            }
            self.len -= removed;
        }
        removed
    }

    /// Returns a snapshot of activity counters.
    pub fn stats(&self) -> MempoolStats {
        MempoolStats {
            pending: self.len,
            ..self.stats
        }
    }

    /// Peeks at the first `max` transactions in shard order (shard 0 front to
    /// back, then shard 1, …) without removing them.
    pub fn peek(&self, max: usize) -> impl Iterator<Item = &Transaction> {
        self.shards
            .iter()
            .flat_map(|shard| shard.queue.iter())
            .take(max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bamboo_types::{NodeId, SimTime};

    fn tx(seq: u64) -> Transaction {
        Transaction::new(NodeId(1), seq, 0, SimTime::ZERO)
    }

    #[test]
    fn fifo_order_for_fresh_transactions() {
        let mut pool = Mempool::new(10);
        for seq in 0..5 {
            assert!(pool.push(tx(seq)));
        }
        let batch = pool.next_batch(3);
        let seqs: Vec<u64> = batch.iter().map(|t| t.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn capacity_bound_rejects_overflow() {
        let mut pool = Mempool::new(3);
        for seq in 0..3 {
            assert!(pool.push(tx(seq)));
        }
        assert!(pool.is_full());
        assert!(!pool.push(tx(99)));
        assert_eq!(pool.stats().rejected, 1);
        assert_eq!(pool.len(), 3);
    }

    #[test]
    fn duplicates_are_dropped() {
        let mut pool = Mempool::new(10);
        assert!(pool.push(tx(1)));
        assert!(!pool.push(tx(1)));
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn requeued_transactions_jump_the_queue() {
        let mut pool = Mempool::new(10);
        for seq in 0..3 {
            pool.push(tx(seq));
        }
        let forked = vec![tx(100), tx(101)];
        pool.requeue_front(forked);
        let batch = pool.next_batch(10);
        let seqs: Vec<u64> = batch.iter().map(|t| t.seq).collect();
        assert_eq!(seqs, vec![100, 101, 0, 1, 2]);
        assert_eq!(pool.stats().requeued, 2);
    }

    #[test]
    fn requeue_bypasses_capacity_but_not_duplicates() {
        let mut pool = Mempool::new(2);
        pool.push(tx(0));
        pool.push(tx(1));
        pool.requeue_front(vec![tx(2), tx(0)]);
        assert_eq!(pool.len(), 3, "tx 2 added despite full pool, tx 0 deduped");
    }

    #[test]
    fn batch_can_be_reinserted_later() {
        let mut pool = Mempool::new(10);
        for seq in 0..4 {
            pool.push(tx(seq));
        }
        let batch = pool.next_batch(4);
        assert!(pool.is_empty());
        // The same transactions can come back (e.g. from a forked block).
        pool.requeue_front(batch);
        assert_eq!(pool.len(), 4);
    }

    #[test]
    fn remove_committed_drops_only_matching_ids() {
        let mut pool = Mempool::new(10);
        for seq in 0..5 {
            pool.push(tx(seq));
        }
        let victim_ids = [tx(1).id, tx(3).id, tx(77).id];
        let removed = pool.remove_committed(victim_ids.iter());
        assert_eq!(removed, 2);
        let seqs: Vec<u64> = pool.next_batch(10).iter().map(|t| t.seq).collect();
        assert_eq!(seqs, vec![0, 2, 4]);
    }

    #[test]
    fn push_batch_reserves_and_matches_per_tx_semantics() {
        let mut batched = Mempool::new(10);
        let accepted = batched.push_batch((0..8).map(tx));
        assert_eq!(accepted, 8);
        // Duplicates inside a later batch are rejected, capacity still binds.
        let accepted = batched.push_batch(vec![tx(7), tx(8), tx(9), tx(10)]);
        assert_eq!(accepted, 2, "tx 7 duplicate, tx 10 over capacity");
        assert!(batched.is_full());

        let mut one_by_one = Mempool::new(10);
        for seq in 0..8 {
            one_by_one.push(tx(seq));
        }
        for t in [tx(7), tx(8), tx(9), tx(10)] {
            one_by_one.push(t);
        }
        assert_eq!(batched.stats(), one_by_one.stats());
        assert_eq!(
            batched
                .next_batch(16)
                .iter()
                .map(|t| t.seq)
                .collect::<Vec<_>>(),
            one_by_one
                .next_batch(16)
                .iter()
                .map(|t| t.seq)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn stats_track_activity() {
        let mut pool = Mempool::new(2);
        pool.push(tx(0));
        pool.push(tx(1));
        pool.push(tx(2)); // rejected
        pool.next_batch(1);
        let stats = pool.stats();
        assert_eq!(stats.accepted, 2);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.dispatched, 1);
        assert_eq!(stats.pending, 1);
    }

    #[test]
    fn sharded_pool_preserves_every_transaction_exactly_once() {
        for shards in [1usize, 2, 4, 7] {
            let mut pool = Mempool::with_shards(1000, shards);
            assert_eq!(pool.shard_count(), shards);
            for seq in 0..200 {
                assert!(pool.push(tx(seq)), "shards={shards} seq={seq}");
            }
            assert_eq!(pool.len(), 200);
            let mut seen: Vec<u64> = Vec::new();
            while !pool.is_empty() {
                seen.extend(pool.next_batch(17).iter().map(|t| t.seq));
            }
            seen.sort_unstable();
            assert_eq!(seen, (0..200).collect::<Vec<u64>>(), "shards={shards}");
            assert_eq!(pool.stats().dispatched, 200);
        }
    }

    #[test]
    fn sharded_drain_is_deterministic() {
        let drain = |shards: usize| -> Vec<u64> {
            let mut pool = Mempool::with_shards(1000, shards);
            for seq in 0..100 {
                pool.push(tx(seq));
            }
            let mut order = Vec::new();
            while !pool.is_empty() {
                order.extend(pool.next_batch(13).iter().map(|t| t.seq));
            }
            order
        };
        assert_eq!(drain(4), drain(4));
        // One shard is the historical FIFO.
        assert_eq!(drain(1), (0..100).collect::<Vec<u64>>());
    }

    #[test]
    fn sharded_admission_control_counts_every_rejection() {
        // Per-shard capacity is total / shards; overflow in one shard is
        // rejected (and counted) even while other shards have room.
        for shards in [2usize, 4] {
            let total = 40usize;
            let mut pool = Mempool::with_shards(total, shards);
            let offered = 4 * total as u64;
            for seq in 0..offered {
                pool.push(tx(seq));
            }
            let stats = pool.stats();
            assert_eq!(
                stats.accepted + stats.rejected,
                offered,
                "shards={shards}: every offered tx is accounted"
            );
            assert!(stats.rejected > 0, "shards={shards}: overload must reject");
            assert_eq!(stats.pending as u64, stats.accepted);
            assert!(pool.len() <= total);
        }
    }

    #[test]
    fn sharded_dedup_and_removal_stay_exact() {
        let mut pool = Mempool::with_shards(100, 4);
        for seq in 0..20 {
            pool.push(tx(seq));
        }
        // Same ids land in the same shards, so duplicates are caught.
        for seq in 0..20 {
            assert!(!pool.push(tx(seq)));
        }
        let victims: Vec<TxId> = (0..10).map(|seq| tx(seq).id).collect();
        assert_eq!(pool.remove_committed(victims.iter()), 10);
        assert_eq!(pool.len(), 10);
        let mut left: Vec<u64> = pool.next_batch(20).iter().map(|t| t.seq).collect();
        left.sort_unstable();
        assert_eq!(left, (10..20).collect::<Vec<u64>>());
    }
}

//! Memory pool — Bamboo's `Mempool` component.
//!
//! The paper describes the mempool as "a bidirectional queue in which new
//! transactions are inserted from the back while old transactions (from
//! forked blocks) are inserted from the front" (§III-E). Each replica keeps a
//! local pool, so no cross-replica duplication check is needed.
//!
//! The pool enforces a capacity bound (`memsize` from Table I); when full it
//! rejects new arrivals (back-pressure), which is how the closed-loop workload
//! generator saturates the system.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{HashSet, VecDeque};

use bamboo_types::{Transaction, TxId};

/// Statistics about mempool activity, used by the benchmarker.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MempoolStats {
    /// Transactions currently buffered.
    pub pending: usize,
    /// Total accepted since creation.
    pub accepted: u64,
    /// Total rejected because the pool was full.
    pub rejected: u64,
    /// Total re-queued from forked blocks.
    pub requeued: u64,
    /// Total handed out in batches.
    pub dispatched: u64,
}

/// A bounded, bidirectional transaction queue.
///
/// # Example
///
/// ```
/// use bamboo_mempool::Mempool;
/// use bamboo_types::{NodeId, SimTime, Transaction};
///
/// let mut pool = Mempool::new(100);
/// for seq in 0..10 {
///     pool.push(Transaction::new(NodeId(1), seq, 0, SimTime::ZERO));
/// }
/// let batch = pool.next_batch(4);
/// assert_eq!(batch.len(), 4);
/// assert_eq!(pool.len(), 6);
/// ```
#[derive(Clone, Debug)]
pub struct Mempool {
    queue: VecDeque<Transaction>,
    /// Ids currently in the queue, to drop duplicate re-submissions.
    in_queue: HashSet<TxId>,
    capacity: usize,
    stats: MempoolStats,
}

impl Mempool {
    /// Creates a pool bounded to `capacity` transactions.
    pub fn new(capacity: usize) -> Self {
        // Pre-size both the queue and the id set: the pool runs at or near
        // capacity under saturation, and growing a HashSet re-hashes every id.
        let hint = capacity.min(4096);
        Self {
            queue: VecDeque::with_capacity(hint),
            in_queue: HashSet::with_capacity(hint),
            capacity,
            stats: MempoolStats::default(),
        }
    }

    /// Number of buffered transactions.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Returns true if the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Returns true if the pool is at capacity.
    pub fn is_full(&self) -> bool {
        self.queue.len() >= self.capacity
    }

    /// Remaining capacity.
    pub fn remaining_capacity(&self) -> usize {
        self.capacity.saturating_sub(self.queue.len())
    }

    /// Appends a fresh transaction at the back of the queue.
    ///
    /// Returns `false` (and drops the transaction) if the pool is full or the
    /// transaction is already queued.
    pub fn push(&mut self, tx: Transaction) -> bool {
        // One hash per push: `insert` already reports duplicates, so a
        // separate `contains` pre-check would just re-hash the id.
        if self.is_full() || !self.in_queue.insert(tx.id) {
            self.stats.rejected += 1;
            return false;
        }
        self.queue.push_back(tx);
        self.stats.accepted += 1;
        true
    }

    /// Appends a batch of fresh transactions, reserving queue and id-set
    /// capacity from the batch size up front — the client-ingest hot path
    /// (replicas receive workload arrivals in per-tick batches). Returns how
    /// many were accepted; duplicates and overflow are rejected exactly as
    /// by [`Mempool::push`].
    pub fn push_batch(&mut self, txs: impl IntoIterator<Item = Transaction>) -> usize {
        let txs = txs.into_iter();
        let (hint, _) = txs.size_hint();
        let room = hint.min(self.remaining_capacity());
        self.queue.reserve(room);
        self.in_queue.reserve(room);
        let mut accepted = 0usize;
        for tx in txs {
            if self.push(tx) {
                accepted += 1;
            }
        }
        accepted
    }

    /// Re-inserts transactions recovered from forked (overwritten) blocks at
    /// the *front* of the queue so they are re-proposed first, exactly as the
    /// paper describes. Re-queued transactions bypass the capacity bound: they
    /// were already accepted once.
    pub fn requeue_front(&mut self, txs: Vec<Transaction>) {
        // Preserve original ordering: push in reverse so the first element of
        // `txs` ends up at the very front.
        for tx in txs.into_iter().rev() {
            if self.in_queue.insert(tx.id) {
                self.queue.push_front(tx);
                self.stats.requeued += 1;
            }
        }
    }

    /// Pops up to `max` transactions from the front of the queue — the
    /// proposer's batching strategy ("batch all the transactions in the memory
    /// pool if the amount is less than the target block size").
    pub fn next_batch(&mut self, max: usize) -> Vec<Transaction> {
        let take = max.min(self.queue.len());
        let mut batch = Vec::with_capacity(take);
        // Single pass: unregister each id while draining instead of
        // re-walking the finished batch.
        for tx in self.queue.drain(..take) {
            self.in_queue.remove(&tx.id);
            batch.push(tx);
        }
        self.stats.dispatched += batch.len() as u64;
        batch
    }

    /// Removes transactions that have been committed elsewhere (e.g. observed
    /// in a committed block proposed by another replica), preventing
    /// re-proposal. Returns how many were removed.
    pub fn remove_committed<'a>(&mut self, ids: impl IntoIterator<Item = &'a TxId>) -> usize {
        // Single pass over the ids: `in_queue` mirrors queue membership, so
        // removing from the set both counts the victims and marks them —
        // the one retain sweep below keeps exactly the ids still in the set.
        let mut removed = 0usize;
        for id in ids {
            if self.in_queue.remove(id) {
                removed += 1;
            }
        }
        if removed > 0 {
            self.queue.retain(|tx| self.in_queue.contains(&tx.id));
        }
        removed
    }

    /// Returns a snapshot of activity counters.
    pub fn stats(&self) -> MempoolStats {
        MempoolStats {
            pending: self.queue.len(),
            ..self.stats
        }
    }

    /// Peeks at the first `max` transactions without removing them.
    pub fn peek(&self, max: usize) -> impl Iterator<Item = &Transaction> {
        self.queue.iter().take(max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bamboo_types::{NodeId, SimTime};

    fn tx(seq: u64) -> Transaction {
        Transaction::new(NodeId(1), seq, 0, SimTime::ZERO)
    }

    #[test]
    fn fifo_order_for_fresh_transactions() {
        let mut pool = Mempool::new(10);
        for seq in 0..5 {
            assert!(pool.push(tx(seq)));
        }
        let batch = pool.next_batch(3);
        let seqs: Vec<u64> = batch.iter().map(|t| t.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn capacity_bound_rejects_overflow() {
        let mut pool = Mempool::new(3);
        for seq in 0..3 {
            assert!(pool.push(tx(seq)));
        }
        assert!(pool.is_full());
        assert!(!pool.push(tx(99)));
        assert_eq!(pool.stats().rejected, 1);
        assert_eq!(pool.len(), 3);
    }

    #[test]
    fn duplicates_are_dropped() {
        let mut pool = Mempool::new(10);
        assert!(pool.push(tx(1)));
        assert!(!pool.push(tx(1)));
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn requeued_transactions_jump_the_queue() {
        let mut pool = Mempool::new(10);
        for seq in 0..3 {
            pool.push(tx(seq));
        }
        let forked = vec![tx(100), tx(101)];
        pool.requeue_front(forked);
        let batch = pool.next_batch(10);
        let seqs: Vec<u64> = batch.iter().map(|t| t.seq).collect();
        assert_eq!(seqs, vec![100, 101, 0, 1, 2]);
        assert_eq!(pool.stats().requeued, 2);
    }

    #[test]
    fn requeue_bypasses_capacity_but_not_duplicates() {
        let mut pool = Mempool::new(2);
        pool.push(tx(0));
        pool.push(tx(1));
        pool.requeue_front(vec![tx(2), tx(0)]);
        assert_eq!(pool.len(), 3, "tx 2 added despite full pool, tx 0 deduped");
    }

    #[test]
    fn batch_can_be_reinserted_later() {
        let mut pool = Mempool::new(10);
        for seq in 0..4 {
            pool.push(tx(seq));
        }
        let batch = pool.next_batch(4);
        assert!(pool.is_empty());
        // The same transactions can come back (e.g. from a forked block).
        pool.requeue_front(batch);
        assert_eq!(pool.len(), 4);
    }

    #[test]
    fn remove_committed_drops_only_matching_ids() {
        let mut pool = Mempool::new(10);
        for seq in 0..5 {
            pool.push(tx(seq));
        }
        let victim_ids = [tx(1).id, tx(3).id, tx(77).id];
        let removed = pool.remove_committed(victim_ids.iter());
        assert_eq!(removed, 2);
        let seqs: Vec<u64> = pool.next_batch(10).iter().map(|t| t.seq).collect();
        assert_eq!(seqs, vec![0, 2, 4]);
    }

    #[test]
    fn push_batch_reserves_and_matches_per_tx_semantics() {
        let mut batched = Mempool::new(10);
        let accepted = batched.push_batch((0..8).map(tx));
        assert_eq!(accepted, 8);
        // Duplicates inside a later batch are rejected, capacity still binds.
        let accepted = batched.push_batch(vec![tx(7), tx(8), tx(9), tx(10)]);
        assert_eq!(accepted, 2, "tx 7 duplicate, tx 10 over capacity");
        assert!(batched.is_full());

        let mut one_by_one = Mempool::new(10);
        for seq in 0..8 {
            one_by_one.push(tx(seq));
        }
        for t in [tx(7), tx(8), tx(9), tx(10)] {
            one_by_one.push(t);
        }
        assert_eq!(batched.stats(), one_by_one.stats());
        assert_eq!(
            batched
                .next_batch(16)
                .iter()
                .map(|t| t.seq)
                .collect::<Vec<_>>(),
            one_by_one
                .next_batch(16)
                .iter()
                .map(|t| t.seq)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn stats_track_activity() {
        let mut pool = Mempool::new(2);
        pool.push(tx(0));
        pool.push(tx(1));
        pool.push(tx(2)); // rejected
        pool.next_batch(1);
        let stats = pool.stats();
        assert_eq!(stats.accepted, 2);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.dispatched, 1);
        assert_eq!(stats.pending, 1);
    }
}

//! Analytical performance model for chained-BFT protocols (§V of the paper).
//!
//! The model estimates the latency and throughput of HotStuff, two-chain
//! HotStuff and Streamlet from first principles:
//!
//! * machine-related delays: a constant CPU cost `t_CPU` per crypto operation
//!   and a NIC delay `t_NIC = 2·m/b` per message of size `m` over bandwidth
//!   `b` (§V-B1),
//! * network-related delays: the client RTT `t_L` and the quorum-collection
//!   delay `t_Q`, the `(2N/3 − 1)`-th order statistic of `N − 1` i.i.d.
//!   normal link delays (§V-B2),
//! * the block service time `t_s = 3·t_CPU + 2·t_NIC + t_Q` (Eq. 4),
//! * the commit delay `t_commit` (two extra certified blocks for HotStuff, one
//!   for 2CHS and Streamlet, §V-D),
//! * the M/D/1 queueing delay `w_Q = ρ / (2u(1−ρ))` with effective service
//!   rate `u = 1/(N·t_s)` (Eq. 5),
//!
//! giving `latency = t_L + t_s + t_commit + w_Q` (Eq. 3).
//!
//! The same model is used in the benches to cross-validate the simulator
//! (Fig. 8) and as a back-of-the-envelope estimator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod normal;
pub mod order_stats;
pub mod perf;
pub mod queueing;

pub use normal::{inverse_normal_cdf, normal_cdf};
pub use order_stats::{expected_order_statistic, expected_order_statistic_monte_carlo};
pub use perf::{ModelParams, ModelPoint, PerfModel};
pub use queueing::md1_waiting_time;

//! The per-protocol latency/throughput model (Eq. 3–5 and §V-D).

use bamboo_types::ProtocolKind;

use crate::order_stats::expected_order_statistic;
use crate::queueing::md1_waiting_time;

/// Inputs of the analytical model. All times are in **seconds**, sizes in
/// bytes, rates in events per second.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ModelParams {
    /// Number of replicas `N`.
    pub nodes: usize,
    /// Transactions per block `n`.
    pub block_size: usize,
    /// Size of one transaction on the wire (payload + header), bytes.
    pub tx_bytes: usize,
    /// Fixed per-block overhead (header + QC), bytes.
    pub block_overhead_bytes: usize,
    /// Mean one-way link delay µ used for vote collection (seconds).
    pub link_mean: f64,
    /// Standard deviation of the one-way link delay (seconds).
    pub link_std: f64,
    /// Mean client⇄replica round-trip time `t_L` (seconds).
    pub client_rtt: f64,
    /// CPU time per cryptographic operation `t_CPU` (seconds).
    pub t_cpu: f64,
    /// NIC bandwidth `b` (bytes per second).
    pub bandwidth: f64,
}

impl ModelParams {
    /// Block size on the wire, `m`.
    pub fn block_bytes(&self) -> f64 {
        (self.block_overhead_bytes + self.block_size * self.tx_bytes) as f64
    }

    /// NIC delay `t_NIC = 2·m/b`.
    pub fn t_nic(&self) -> f64 {
        2.0 * self.block_bytes() / self.bandwidth
    }

    /// Quorum-collection delay `t_Q`: the `(⌈2N/3⌉ − 1)`-th order statistic of
    /// `N − 1` i.i.d. normal link delays.
    pub fn t_q(&self) -> f64 {
        if self.nodes <= 1 {
            return 0.0;
        }
        let n = self.nodes - 1;
        let quorum = bamboo_types::ids::quorum_threshold(self.nodes);
        let k = quorum.saturating_sub(1).clamp(1, n);
        expected_order_statistic(n, k, self.link_mean, self.link_std)
    }

    /// Block service time `t_s = 3·t_CPU + 2·t_NIC + t_Q` (Eq. 4).
    pub fn t_s(&self) -> f64 {
        3.0 * self.t_cpu + 2.0 * self.t_nic() + self.t_q()
    }
}

/// One predicted operating point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ModelPoint {
    /// Offered transaction arrival rate λ (tx/s).
    pub arrival_rate: f64,
    /// Predicted end-to-end latency (milliseconds); infinite past saturation.
    pub latency_ms: f64,
    /// Predicted committed throughput (tx/s) — equal to the arrival rate below
    /// saturation (Table II's observation), capped at the saturation rate.
    pub throughput_tx_per_sec: f64,
}

/// The analytical model specialised to one protocol.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PerfModel {
    /// Protocol being modelled.
    pub protocol: ProtocolKind,
    /// Model inputs.
    pub params: ModelParams,
}

impl PerfModel {
    /// Creates a model for `protocol` with the given parameters.
    pub fn new(protocol: ProtocolKind, params: ModelParams) -> Self {
        Self { protocol, params }
    }

    /// Commit delay `t_commit` after the block is certified (§V-C3, §V-D):
    /// two further certified blocks for HotStuff, one for 2CHS and Streamlet.
    pub fn t_commit(&self) -> f64 {
        let ts = self.params.t_s();
        match self.protocol {
            ProtocolKind::HotStuff | ProtocolKind::OriginalHotStuff => 2.0 * ts,
            ProtocolKind::TwoChainHotStuff
            | ProtocolKind::Streamlet
            | ProtocolKind::FastHotStuff
            | ProtocolKind::Lbft => ts,
        }
    }

    /// The M/D/1 waiting time `w_Q` at transaction arrival rate λ (Eq. 5).
    pub fn waiting_time(&self, arrival_rate: f64) -> f64 {
        let p = &self.params;
        // Blocks arrive at each replica at rate γ = λ / (n·N); each replica's
        // effective service time for a block is N·t_s.
        let gamma = arrival_rate / (p.block_size as f64 * p.nodes as f64);
        md1_waiting_time(gamma, p.nodes as f64 * p.t_s())
    }

    /// Maximum sustainable transaction arrival rate (where ρ reaches 1).
    pub fn saturation_rate(&self) -> f64 {
        let p = &self.params;
        p.block_size as f64 / p.t_s()
    }

    /// End-to-end latency at arrival rate λ (Eq. 3), in seconds; infinite past
    /// saturation.
    pub fn latency(&self, arrival_rate: f64) -> f64 {
        let p = &self.params;
        let w = self.waiting_time(arrival_rate);
        if w.is_infinite() {
            return f64::INFINITY;
        }
        p.client_rtt + p.t_s() + self.t_commit() + w
    }

    /// Predicts a set of operating points for the given arrival rates.
    pub fn curve(&self, arrival_rates: &[f64]) -> Vec<ModelPoint> {
        let saturation = self.saturation_rate();
        arrival_rates
            .iter()
            .map(|&rate| ModelPoint {
                arrival_rate: rate,
                latency_ms: self.latency(rate) * 1_000.0,
                throughput_tx_per_sec: rate.min(saturation),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(nodes: usize, block_size: usize) -> ModelParams {
        ModelParams {
            nodes,
            block_size,
            tx_bytes: 56,
            block_overhead_bytes: 200,
            link_mean: 0.00025,
            link_std: 0.00005,
            client_rtt: 0.0005,
            t_cpu: 0.00002,
            bandwidth: 1.25e9,
        }
    }

    #[test]
    fn service_time_components_are_positive_and_additive() {
        let p = params(4, 400);
        assert!(p.t_nic() > 0.0);
        assert!(p.t_q() > 0.0);
        assert!((p.t_s() - (3.0 * p.t_cpu + 2.0 * p.t_nic() + p.t_q())).abs() < 1e-12);
    }

    #[test]
    fn hotstuff_commit_takes_one_more_round_than_two_chain() {
        let hs = PerfModel::new(ProtocolKind::HotStuff, params(4, 400));
        let two = PerfModel::new(ProtocolKind::TwoChainHotStuff, params(4, 400));
        let sl = PerfModel::new(ProtocolKind::Streamlet, params(4, 400));
        assert!((hs.t_commit() - 2.0 * hs.params.t_s()).abs() < 1e-12);
        assert!((two.t_commit() - two.params.t_s()).abs() < 1e-12);
        assert!((sl.t_commit() - sl.params.t_s()).abs() < 1e-12);
        // Unloaded latency ordering: 2CHS < HS.
        assert!(two.latency(1_000.0) < hs.latency(1_000.0));
    }

    #[test]
    fn latency_grows_with_load_and_diverges_at_saturation() {
        let model = PerfModel::new(ProtocolKind::HotStuff, params(4, 400));
        let saturation = model.saturation_rate();
        let low = model.latency(saturation * 0.1);
        let mid = model.latency(saturation * 0.6);
        let high = model.latency(saturation * 0.95);
        assert!(low < mid && mid < high);
        assert!(model.latency(saturation * 1.1).is_infinite());
    }

    #[test]
    fn bigger_blocks_raise_saturation_throughput() {
        let small = PerfModel::new(ProtocolKind::HotStuff, params(4, 100));
        let large = PerfModel::new(ProtocolKind::HotStuff, params(4, 800));
        assert!(large.saturation_rate() > small.saturation_rate());
    }

    #[test]
    fn more_nodes_increase_quorum_delay() {
        let small = params(4, 400);
        let large = params(64, 400);
        assert!(large.t_q() > small.t_q());
    }

    #[test]
    fn curve_reports_throughput_capped_at_saturation() {
        let model = PerfModel::new(ProtocolKind::TwoChainHotStuff, params(4, 400));
        let saturation = model.saturation_rate();
        let points = model.curve(&[saturation * 0.5, saturation * 2.0]);
        assert_eq!(points.len(), 2);
        assert!((points[0].throughput_tx_per_sec - saturation * 0.5).abs() < 1e-6);
        assert!((points[1].throughput_tx_per_sec - saturation).abs() < 1e-6);
        assert!(points[1].latency_ms.is_infinite());
    }
}

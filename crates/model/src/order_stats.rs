//! Expected order statistics of normal samples.
//!
//! The quorum-collection delay `t_Q` is the expected value of the
//! `(2N/3 − 1)`-th order statistic of `N − 1` i.i.d. normal link delays
//! (§V-B2). Two estimators are provided:
//!
//! * a closed-form approximation using Blom's formula
//!   `E[X_(k)] ≈ µ + σ·Φ⁻¹((k − α)/(n − 2α + 1))` with `α = 0.375`, and
//! * a Monte-Carlo estimator (as suggested by the Paxi paper the model is
//!   based on), seeded deterministically.
//!
//! They agree to within a few percent, which the tests check.

use bamboo_sim::SimRng;

use crate::normal::inverse_normal_cdf;

/// Blom approximation of the expected `k`-th order statistic (1-based) of `n`
/// i.i.d. `Normal(mean, std)` samples.
///
/// # Panics
///
/// Panics if `k` is zero or greater than `n`, or if `n` is zero.
pub fn expected_order_statistic(n: usize, k: usize, mean: f64, std: f64) -> f64 {
    assert!(n > 0, "need at least one sample");
    assert!(k >= 1 && k <= n, "k={k} out of range for n={n}");
    if n == 1 {
        return mean;
    }
    const ALPHA: f64 = 0.375;
    let p = (k as f64 - ALPHA) / (n as f64 - 2.0 * ALPHA + 1.0);
    mean + std * inverse_normal_cdf(p)
}

/// Monte-Carlo estimate of the expected `k`-th order statistic (1-based) of
/// `n` i.i.d. `Normal(mean, std)` samples, using `iterations` trials.
///
/// # Panics
///
/// Panics under the same conditions as [`expected_order_statistic`].
pub fn expected_order_statistic_monte_carlo(
    n: usize,
    k: usize,
    mean: f64,
    std: f64,
    iterations: usize,
    seed: u64,
) -> f64 {
    assert!(n > 0, "need at least one sample");
    assert!(k >= 1 && k <= n, "k={k} out of range for n={n}");
    let mut rng = SimRng::new(seed);
    let mut total = 0.0;
    let mut samples = vec![0.0f64; n];
    for _ in 0..iterations {
        for slot in samples.iter_mut() {
            // Box–Muller.
            *slot = rng.normal(mean, std);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        total += samples[k - 1];
    }
    total / iterations as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_normals_is_the_mean() {
        // For odd n, the middle order statistic of a symmetric distribution is
        // the mean.
        let est = expected_order_statistic(7, 4, 10.0, 2.0);
        assert!((est - 10.0).abs() < 0.05, "got {est}");
    }

    #[test]
    fn order_statistics_increase_with_k() {
        let values: Vec<f64> = (1..=9)
            .map(|k| expected_order_statistic(9, k, 5.0, 1.0))
            .collect();
        for pair in values.windows(2) {
            assert!(pair[1] > pair[0]);
        }
        // Extremes are roughly ±1.5 sigma for n = 9.
        assert!(values[0] < 5.0 - 1.0);
        assert!(values[8] > 5.0 + 1.0);
    }

    #[test]
    fn blom_and_monte_carlo_agree() {
        for (n, k) in [(3usize, 2usize), (7, 5), (31, 21), (63, 42)] {
            let blom = expected_order_statistic(n, k, 1.0, 0.2);
            let mc = expected_order_statistic_monte_carlo(n, k, 1.0, 0.2, 4_000, 42);
            assert!(
                (blom - mc).abs() < 0.02,
                "n={n} k={k}: blom {blom} vs mc {mc}"
            );
        }
    }

    #[test]
    fn zero_variance_collapses_to_mean() {
        assert_eq!(expected_order_statistic(10, 3, 7.5, 0.0), 7.5);
        let mc = expected_order_statistic_monte_carlo(10, 3, 7.5, 0.0, 100, 1);
        assert!((mc - 7.5).abs() < 1e-9);
    }

    #[test]
    fn single_sample_is_the_mean() {
        assert_eq!(expected_order_statistic(1, 1, 3.0, 1.0), 3.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn k_out_of_range_panics() {
        let _ = expected_order_statistic(5, 6, 0.0, 1.0);
    }
}

//! Normal distribution helpers: CDF and inverse CDF.
//!
//! Implemented locally (rather than pulling a stats crate) because only two
//! functions are needed: the standard normal CDF (via an `erf` series) and its
//! inverse (Acklam's rational approximation), both accurate to well below the
//! tolerances that matter for the performance model.

/// Standard normal cumulative distribution function Φ(x).
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Error function approximation (Abramowitz & Stegun 7.1.26, |error| < 1.5e-7).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Inverse of the standard normal CDF (the probit function), using Acklam's
/// rational approximation (relative error below 1.15e-9 over (0, 1)).
///
/// # Panics
///
/// Panics if `p` is not strictly between 0 and 1.
pub fn inverse_normal_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probability must be in (0, 1), got {p}");

    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    const P_HIGH: f64 = 1.0 - P_LOW;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.0) - 0.8413447).abs() < 1e-5);
        assert!((normal_cdf(-1.0) - 0.1586553).abs() < 1e-5);
        assert!((normal_cdf(1.96) - 0.9750021).abs() < 1e-5);
        assert!(normal_cdf(6.0) > 0.999999);
    }

    #[test]
    fn inverse_cdf_known_values() {
        assert!(inverse_normal_cdf(0.5).abs() < 1e-8);
        assert!((inverse_normal_cdf(0.975) - 1.959964).abs() < 1e-5);
        assert!((inverse_normal_cdf(0.8413447) - 1.0).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.0013499) + 3.0).abs() < 1e-3);
    }

    #[test]
    fn cdf_and_inverse_are_consistent() {
        for p in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let x = inverse_normal_cdf(p);
            assert!((normal_cdf(x) - p).abs() < 1e-5, "p={p}");
        }
    }

    #[test]
    #[should_panic(expected = "probability must be in (0, 1)")]
    fn inverse_cdf_rejects_out_of_range() {
        let _ = inverse_normal_cdf(1.0);
    }
}

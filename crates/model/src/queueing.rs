//! M/D/1 queueing delay (Eq. 5 of the paper).

/// Average waiting time in an M/D/1 queue.
///
/// * `arrival_rate` — block arrival rate at one replica (`γ = λ / (n·N)`),
/// * `service_time` — effective deterministic service time (`N·t_s`),
///
/// returns `w_Q = ρ / (2·u·(1 − ρ))` where `u = 1/service_time` and
/// `ρ = γ/u`. Returns `f64::INFINITY` when the queue is unstable (`ρ ≥ 1`).
///
/// # Panics
///
/// Panics if `service_time` is not positive or `arrival_rate` is negative.
pub fn md1_waiting_time(arrival_rate: f64, service_time: f64) -> f64 {
    assert!(service_time > 0.0, "service time must be positive");
    assert!(arrival_rate >= 0.0, "arrival rate must be non-negative");
    let u = 1.0 / service_time;
    let rho = arrival_rate / u;
    if rho >= 1.0 {
        return f64::INFINITY;
    }
    rho / (2.0 * u * (1.0 - rho))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_queue_has_no_waiting_time() {
        assert_eq!(md1_waiting_time(0.0, 0.01), 0.0);
    }

    #[test]
    fn waiting_time_grows_with_load() {
        let service = 0.001; // 1 ms
        let low = md1_waiting_time(100.0, service);
        let mid = md1_waiting_time(500.0, service);
        let high = md1_waiting_time(900.0, service);
        assert!(low < mid && mid < high);
        // Known value: rho = 0.5 -> w = 0.5 / (2*1000*0.5) = 0.0005 s.
        assert!((md1_waiting_time(500.0, service) - 0.0005).abs() < 1e-12);
    }

    #[test]
    fn saturation_returns_infinity() {
        assert!(md1_waiting_time(1000.0, 0.001).is_infinite());
        assert!(md1_waiting_time(2000.0, 0.001).is_infinite());
    }

    #[test]
    #[should_panic(expected = "service time must be positive")]
    fn zero_service_time_panics() {
        let _ = md1_waiting_time(1.0, 0.0);
    }
}

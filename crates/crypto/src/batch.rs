//! Batched signature verification.
//!
//! Verifying a quorum certificate means checking `2f + 1` signatures over the
//! *same* message, and an ingress stage that authenticates every inbound
//! message checks long runs of signatures back to back. Done naively (one
//! [`crate::PublicKey::verify`] call per signature) each check allocates a
//! fresh signing-bytes buffer. [`BatchVerifier`] amortises that work: tuples
//! are staged into one reusable arena and verified in a single pass that
//! reuses one scratch buffer for the signing-bytes construction, so a batch of
//! `k` checks performs `k` hash evaluations and zero per-item allocations.
//!
//! The batch is *sound per item*: the simulated scheme has no aggregate
//! shortcut, so `verify_all` fails exactly when at least one staged tuple is
//! individually invalid (there are no false accepts introduced by batching).

use crate::aggregate::AggregateSignature;
use crate::keys::{signature_matches, signature_matches_quad, PublicKey, Signature};

/// Verifies many `(public key, message, signature)` tuples in one pass.
///
/// The verifier owns its buffers and is intended to be reused: after
/// [`BatchVerifier::verify_all`] the staged tuples are cleared but the
/// allocations are kept, so steady-state operation is allocation-free.
///
/// # Example
///
/// ```
/// use bamboo_crypto::{BatchVerifier, KeyPair};
///
/// let keys: Vec<KeyPair> = (0..4).map(KeyPair::from_seed).collect();
/// let mut batch = BatchVerifier::new();
/// for kp in &keys {
///     batch.push(kp.public_key(), b"same message", kp.sign(b"same message"));
/// }
/// assert_eq!(batch.len(), 4);
/// assert!(batch.verify_all());
///
/// // The verifier is reusable; a single bad tuple fails the whole batch.
/// batch.push(keys[0].public_key(), b"message", keys[1].sign(b"message"));
/// assert!(!batch.verify_all());
/// ```
#[derive(Debug, Default)]
pub struct BatchVerifier {
    keys: Vec<PublicKey>,
    sigs: Vec<Signature>,
    /// End offset of each staged message inside `arena` (start is the
    /// previous entry's end, or 0).
    ends: Vec<usize>,
    /// All staged message bytes, back to back.
    arena: Vec<u8>,
    /// Reusable signing-bytes buffer shared by every check in the pass.
    scratch: Vec<u8>,
    /// Per-lane signing-bytes buffers for the 4-wide interleaved passes.
    quad_scratch: [Vec<u8>; 4],
}

impl BatchVerifier {
    /// Creates an empty batch verifier.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a verifier with capacity for `items` staged tuples.
    pub fn with_capacity(items: usize) -> Self {
        Self {
            keys: Vec::with_capacity(items),
            sigs: Vec::with_capacity(items),
            ends: Vec::with_capacity(items),
            arena: Vec::with_capacity(items * 48),
            scratch: Vec::new(),
            quad_scratch: Default::default(),
        }
    }

    /// Stages one `(public key, message, signature)` tuple.
    pub fn push(&mut self, key: PublicKey, msg: &[u8], sig: Signature) {
        self.keys.push(key);
        self.sigs.push(sig);
        self.arena.extend_from_slice(msg);
        self.ends.push(self.arena.len());
    }

    /// Stages every signature of an aggregate over `msg`, resolving public
    /// keys through `key_of`.
    ///
    /// # Errors
    ///
    /// Returns the offending signer index if `key_of` does not know one of the
    /// signers; in that case none of the aggregate's signatures are staged.
    pub fn push_aggregate<F>(
        &mut self,
        msg: &[u8],
        aggregate: &AggregateSignature,
        key_of: F,
    ) -> Result<(), u64>
    where
        F: Fn(u64) -> Option<PublicKey>,
    {
        let staged = self.len();
        for (index, sig) in aggregate.entries() {
            match key_of(index) {
                Some(key) => self.push(key, msg, sig),
                None => {
                    self.truncate(staged);
                    return Err(index);
                }
            }
        }
        Ok(())
    }

    /// Number of staged tuples.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Returns true if nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Discards all staged tuples (allocations are kept for reuse).
    pub fn clear(&mut self) {
        self.truncate(0);
    }

    /// Verifies every staged tuple, then clears the batch. Returns `false`
    /// if any tuple is invalid. An empty batch verifies trivially.
    ///
    /// Four consecutive tuples whose messages have equal length — the common
    /// case, since a quorum certificate stages `2f + 1` checks over the same
    /// message — are verified in one 4-wide interleaved SHA-256 pass;
    /// stragglers and mixed-length runs fall back to the scalar path. The
    /// verdict is identical either way: the batch fails exactly when at
    /// least one tuple is individually invalid.
    pub fn verify_all(&mut self) -> bool {
        let mut ok = true;
        let mut start = 0usize;
        let mut index = 0usize;
        let total = self.keys.len();
        while index < total {
            if index + 4 <= total {
                let first_len = self.ends[index] - start;
                let ends: [usize; 4] = self.ends[index..index + 4]
                    .try_into()
                    .expect("four end offsets");
                if ends[1] - ends[0] == first_len
                    && ends[2] - ends[1] == first_len
                    && ends[3] - ends[2] == first_len
                {
                    let msgs = [
                        &self.arena[start..ends[0]],
                        &self.arena[ends[0]..ends[1]],
                        &self.arena[ends[1]..ends[2]],
                        &self.arena[ends[2]..ends[3]],
                    ];
                    let keys: [&PublicKey; 4] =
                        std::array::from_fn(|lane| &self.keys[index + lane]);
                    let sigs: [&Signature; 4] =
                        std::array::from_fn(|lane| &self.sigs[index + lane]);
                    if !signature_matches_quad(&mut self.quad_scratch, keys, msgs, sigs) {
                        ok = false;
                        break;
                    }
                    start = ends[3];
                    index += 4;
                    continue;
                }
            }
            let end = self.ends[index];
            let msg = &self.arena[start..end];
            if !signature_matches(&mut self.scratch, &self.keys[index], msg, &self.sigs[index]) {
                ok = false;
                break;
            }
            start = end;
            index += 1;
        }
        self.clear();
        ok
    }

    fn truncate(&mut self, items: usize) {
        self.keys.truncate(items);
        self.sigs.truncate(items);
        self.arena
            .truncate(self.ends.get(items.wrapping_sub(1)).copied().unwrap_or(0));
        self.ends.truncate(items);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyPair;

    fn keys(n: u64) -> Vec<KeyPair> {
        (0..n).map(KeyPair::from_seed).collect()
    }

    #[test]
    fn empty_batch_verifies() {
        assert!(BatchVerifier::new().verify_all());
    }

    #[test]
    fn valid_batch_verifies_and_clears() {
        let kps = keys(8);
        let mut batch = BatchVerifier::with_capacity(8);
        for (i, kp) in kps.iter().enumerate() {
            let msg = [i as u8; 24];
            batch.push(kp.public_key(), &msg, kp.sign(&msg));
        }
        assert_eq!(batch.len(), 8);
        assert!(batch.verify_all());
        assert!(batch.is_empty());
    }

    #[test]
    fn one_bad_tuple_fails_the_batch() {
        let kps = keys(4);
        let mut batch = BatchVerifier::new();
        for kp in &kps[..3] {
            batch.push(kp.public_key(), b"m", kp.sign(b"m"));
        }
        // Signature by key 3 presented under key 0's public key.
        batch.push(kps[0].public_key(), b"m", kps[3].sign(b"m"));
        assert!(!batch.verify_all());
        // The failed pass still cleared the batch; a fresh valid pass works.
        batch.push(kps[0].public_key(), b"m", kps[0].sign(b"m"));
        assert!(batch.verify_all());
    }

    #[test]
    fn batch_matches_individual_verification() {
        let kps = keys(16);
        let mut batch = BatchVerifier::new();
        for (i, kp) in kps.iter().enumerate() {
            let msg = [0x40 | i as u8; 40];
            let sig = kp.sign(&msg);
            assert!(kp.public_key().verify(&msg, &sig));
            batch.push(kp.public_key(), &msg, sig);
        }
        assert!(batch.verify_all());
    }

    #[test]
    fn quad_path_verdicts_match_scalar_for_every_layout() {
        // Sweep batch sizes across the 4-wide chunk boundary and message
        // layouts that force every combination of quad and scalar segments,
        // with and without a planted bad tuple at every position.
        let kps = keys(16);
        for size in 1usize..=9 {
            for bad in [None, Some(0), Some(size / 2), Some(size - 1)] {
                for mixed in [false, true] {
                    let mut batch = BatchVerifier::new();
                    for i in 0..size {
                        // Mixed lengths break lockstep mid-batch; equal
                        // lengths exercise the quad path end to end.
                        let len = if mixed && i % 3 == 1 { 40 } else { 24 };
                        let msg = vec![i as u8; len];
                        let signer = if bad == Some(i) { 15 - i } else { i };
                        batch.push(kps[i].public_key(), &msg, kps[signer].sign(&msg));
                    }
                    let expect = bad.is_none();
                    assert_eq!(
                        batch.verify_all(),
                        expect,
                        "size {size} bad {bad:?} mixed {mixed}"
                    );
                }
            }
        }
    }

    #[test]
    fn push_aggregate_stages_every_signer() {
        let kps = keys(4);
        let mut agg = AggregateSignature::new();
        for (i, kp) in kps.iter().enumerate() {
            agg.add(i as u64, kp.sign(b"certify"));
        }
        let pks: Vec<PublicKey> = kps.iter().map(|k| k.public_key()).collect();
        let mut batch = BatchVerifier::new();
        batch
            .push_aggregate(b"certify", &agg, |i| pks.get(i as usize).copied())
            .expect("all signers known");
        assert_eq!(batch.len(), 4);
        assert!(batch.verify_all());
    }

    #[test]
    fn push_aggregate_rejects_unknown_signer_and_unwinds() {
        let kps = keys(4);
        let mut agg = AggregateSignature::new();
        for (i, kp) in kps.iter().enumerate() {
            agg.add(i as u64, kp.sign(b"certify"));
        }
        let pks: Vec<PublicKey> = kps.iter().map(|k| k.public_key()).collect();
        let mut batch = BatchVerifier::new();
        batch.push(kps[0].public_key(), b"other", kps[0].sign(b"other"));
        let err = batch
            .push_aggregate(b"certify", &agg, |i| {
                if i < 2 {
                    pks.get(i as usize).copied()
                } else {
                    None
                }
            })
            .expect_err("signer 2 unknown");
        assert_eq!(err, 2);
        // Only the pre-existing tuple remains staged.
        assert_eq!(batch.len(), 1);
        assert!(batch.verify_all());
    }
}

//! Cryptographic primitives for bamboo-rs.
//!
//! The original Bamboo framework uses secp256k1 signatures for votes and
//! quorum certificates. For this reproduction the *cost* of cryptography is
//! what matters to the performance study (it is the `t_CPU` parameter of the
//! paper's analytical model), not its hardness, so this crate provides:
//!
//! * a from-scratch [`mod@sha256`] implementation used for block ids and
//!   chaining,
//! * a deterministic, simulated signature scheme ([`KeyPair`], [`Signature`])
//!   whose verification is honest-majority sound inside the simulation,
//! * quorum aggregation helpers ([`AggregateSignature`]), and
//! * batched verification ([`BatchVerifier`]) that checks many
//!   `(key, message, signature)` tuples in one allocation-free pass — the
//!   primitive behind the authenticated message path's ingress stage.
//!
//! The simulated scheme binds a signature to `(public key, message)` via the
//! hash function; it is **not** secure against a real adversary and must never
//! be used outside the simulator. The substitution is documented in
//! `DESIGN.md`.
//!
//! # Example
//!
//! ```
//! use bamboo_crypto::{KeyPair, hash_bytes};
//!
//! let kp = KeyPair::from_seed(7);
//! let digest = hash_bytes(b"block payload");
//! let sig = kp.sign(digest.as_bytes());
//! assert!(kp.public_key().verify(digest.as_bytes(), &sig));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod batch;
pub mod hash;
pub mod keys;
pub mod sha256;

pub use aggregate::AggregateSignature;
pub use batch::BatchVerifier;
pub use hash::{hash_bytes, hash_two, Digest};
pub use keys::{KeyPair, PublicKey, SecretKey, Signature};
pub use sha256::{sha256, sha256_quad, Sha256};

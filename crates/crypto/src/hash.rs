//! Digest newtype and convenience hashing helpers used across the workspace.

use std::fmt;

use crate::sha256::sha256;

/// A 32-byte SHA-256 digest.
///
/// `Digest` is used for block identifiers, transaction identifiers and
/// message binding in the simulated signature scheme.
///
/// # Example
///
/// ```
/// use bamboo_crypto::Digest;
///
/// let a = Digest::of(b"hello");
/// let b = Digest::of(b"hello");
/// assert_eq!(a, b);
/// assert_ne!(a, Digest::of(b"world"));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Digest([u8; 32]);

impl Digest {
    /// The all-zero digest, used as the parent of the genesis block.
    pub const ZERO: Digest = Digest([0u8; 32]);

    /// Hashes `data` and returns the digest.
    pub fn of(data: &[u8]) -> Self {
        Digest(sha256(data))
    }

    /// Builds a digest from raw bytes (no hashing performed).
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        Digest(bytes)
    }

    /// Returns the digest as a byte slice.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Returns a short hexadecimal prefix, convenient for logging.
    pub fn short_hex(&self) -> String {
        self.0[..4].iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Returns the full hexadecimal representation.
    pub fn to_hex(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Returns true if this is the all-zero digest.
    pub fn is_zero(&self) -> bool {
        self.0 == [0u8; 32]
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({}..)", self.short_hex())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.short_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; 32]> for Digest {
    fn from(bytes: [u8; 32]) -> Self {
        Digest(bytes)
    }
}

/// Hashes a byte slice into a [`Digest`].
pub fn hash_bytes(data: &[u8]) -> Digest {
    Digest::of(data)
}

/// Hashes the concatenation of two byte slices, used for chaining structures
/// (for example `hash(parent_id || payload)`).
pub fn hash_two(a: &[u8], b: &[u8]) -> Digest {
    let mut hasher = crate::sha256::Sha256::new();
    hasher.update(a);
    hasher.update(b);
    Digest(hasher.finalize())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_of_is_deterministic() {
        assert_eq!(Digest::of(b"x"), Digest::of(b"x"));
        assert_ne!(Digest::of(b"x"), Digest::of(b"y"));
    }

    #[test]
    fn zero_digest_is_zero() {
        assert!(Digest::ZERO.is_zero());
        assert!(!Digest::of(b"nonzero").is_zero());
    }

    #[test]
    fn hash_two_equals_concatenated_hash() {
        let direct = Digest::of(b"abcdef");
        let split = hash_two(b"abc", b"def");
        assert_eq!(direct, split);
    }

    #[test]
    fn hex_roundtrip_formats() {
        let d = Digest::of(b"abc");
        assert_eq!(d.to_hex().len(), 64);
        assert_eq!(d.short_hex().len(), 8);
        assert!(d.to_hex().starts_with(&d.short_hex()));
    }

    #[test]
    fn display_and_debug_are_nonempty() {
        let d = Digest::default();
        assert!(!format!("{d}").is_empty());
        assert!(!format!("{d:?}").is_empty());
    }
}

//! Simulated signature scheme.
//!
//! The scheme is deliberately simple: a signature over `msg` by key `k` is
//! `H(tag || pk || msg)` where `pk = H(tag' || k)`. Any party can forge such a
//! signature if it knows the public key, so this is **only** meaningful inside
//! the honest-majority simulation where Byzantine behaviour is modelled at the
//! protocol level (forking / silence strategies) rather than by forging
//! signatures. The scheme exists so that votes, quorum certificates and
//! timeout certificates carry realistic payload bytes and so that a
//! configurable CPU cost can be charged per sign/verify operation, matching
//! the `t_CPU` parameter of the paper's analytical model.

use std::fmt;

use crate::hash::{hash_two, Digest};

const SIGN_TAG: &[u8] = b"bamboo-sim-signature-v1";
const PK_TAG: &[u8] = b"bamboo-sim-public-key-v1";

/// A secret signing key.
#[derive(Clone, PartialEq, Eq)]
pub struct SecretKey(Digest);

impl fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print secret material.
        write!(f, "SecretKey(..)")
    }
}

/// A public verification key derived from a [`SecretKey`].
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct PublicKey(Digest);

impl fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PublicKey({})", self.0.short_hex())
    }
}

impl fmt::Display for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0.short_hex())
    }
}

impl PublicKey {
    /// Verifies `sig` over `msg` under this public key.
    pub fn verify(&self, msg: &[u8], sig: &Signature) -> bool {
        Signature::create(self, msg) == *sig
    }

    /// Returns the underlying digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        self.0.as_bytes()
    }
}

/// A signature over a message.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature(Digest);

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Signature({})", self.0.short_hex())
    }
}

impl Signature {
    /// Reconstructs a signature from its raw bytes (checkpoint / state
    /// transfer decoding). The bytes are not validated here; a forged value
    /// simply fails verification downstream.
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        Signature(Digest::from_bytes(bytes))
    }

    fn create(pk: &PublicKey, msg: &[u8]) -> Self {
        let mut prefix = Vec::with_capacity(SIGN_TAG.len() + 32);
        Self::create_with_scratch(&mut prefix, pk, msg)
    }

    /// Builds the signature using a caller-provided signing-bytes buffer, so a
    /// batch of checks performs zero allocations after the first.
    fn create_with_scratch(scratch: &mut Vec<u8>, pk: &PublicKey, msg: &[u8]) -> Self {
        scratch.clear();
        scratch.extend_from_slice(SIGN_TAG);
        scratch.extend_from_slice(pk.as_bytes());
        Signature(hash_two(scratch, msg))
    }

    /// Returns the signature bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        self.0.as_bytes()
    }
}

/// Checks `sig` over `msg` under `pk`, reusing `scratch` for the
/// signing-bytes construction. This is the allocation-free primitive behind
/// [`crate::BatchVerifier`]; single ad-hoc checks should keep using
/// [`PublicKey::verify`].
pub(crate) fn signature_matches(
    scratch: &mut Vec<u8>,
    pk: &PublicKey,
    msg: &[u8],
    sig: &Signature,
) -> bool {
    Signature::create_with_scratch(scratch, pk, msg) == *sig
}

/// Checks four signature tuples whose messages have **equal length** in one
/// 4-wide interleaved SHA-256 pass ([`crate::sha256::sha256_quad`]). The tag
/// and public key prefixes are fixed-size, so equal message lengths give
/// equal signing-buffer lengths — the lockstep precondition of the quad
/// hasher. `lanes` are caller-owned reusable signing-bytes buffers.
pub(crate) fn signature_matches_quad(
    lanes: &mut [Vec<u8>; 4],
    keys: [&PublicKey; 4],
    msgs: [&[u8]; 4],
    sigs: [&Signature; 4],
) -> bool {
    for lane in 0..4 {
        let buffer = &mut lanes[lane];
        buffer.clear();
        buffer.extend_from_slice(SIGN_TAG);
        buffer.extend_from_slice(keys[lane].as_bytes());
        buffer.extend_from_slice(msgs[lane]);
    }
    let digests = crate::sha256::sha256_quad([&lanes[0], &lanes[1], &lanes[2], &lanes[3]]);
    (0..4).all(|lane| sigs[lane].as_bytes() == &digests[lane])
}

/// A signing key pair for one replica.
///
/// # Example
///
/// ```
/// use bamboo_crypto::KeyPair;
///
/// let kp = KeyPair::from_seed(42);
/// let sig = kp.sign(b"vote for block 7");
/// assert!(kp.public_key().verify(b"vote for block 7", &sig));
/// assert!(!kp.public_key().verify(b"vote for block 8", &sig));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeyPair {
    secret: SecretKey,
    public: PublicKey,
}

impl KeyPair {
    /// Derives a key pair deterministically from a `u64` seed.
    ///
    /// Replicas in the simulation derive their keys from their node id so the
    /// whole system is reproducible from a single configuration seed.
    pub fn from_seed(seed: u64) -> Self {
        let secret = SecretKey(hash_two(b"bamboo-sim-secret-key-v1", &seed.to_be_bytes()));
        let public = PublicKey(hash_two(PK_TAG, secret.0.as_bytes()));
        Self { secret, public }
    }

    /// Derives the key pair of simulated client `seed`.
    ///
    /// Clients live in a domain-separated keyspace (a distinct secret tag), so
    /// no client key can ever collide with a validator key derived by
    /// [`KeyPair::from_seed`]. Derivation is two streaming hashes and performs
    /// no allocation, which lets replicas re-derive a client's key lazily per
    /// request instead of holding O(clients) key material.
    pub fn client_from_seed(seed: u64) -> Self {
        let secret = SecretKey(hash_two(
            b"bamboo-sim-client-secret-key-v1",
            &seed.to_be_bytes(),
        ));
        let public = PublicKey(hash_two(PK_TAG, secret.0.as_bytes()));
        Self { secret, public }
    }

    /// Returns the public half of the key pair.
    pub fn public_key(&self) -> PublicKey {
        self.public
    }

    /// Signs `msg`.
    pub fn sign(&self, msg: &[u8]) -> Signature {
        Signature::create(&self.public, msg)
    }

    /// Signs `msg` reusing a caller-owned signing-bytes buffer, so a stream of
    /// signatures (e.g. open-loop client arrival generation) allocates nothing
    /// after the first call.
    pub fn sign_with_scratch(&self, scratch: &mut Vec<u8>, msg: &[u8]) -> Signature {
        Signature::create_with_scratch(scratch, &self.public, msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let kp = KeyPair::from_seed(1);
        let sig = kp.sign(b"message");
        assert!(kp.public_key().verify(b"message", &sig));
    }

    #[test]
    fn verify_rejects_wrong_message() {
        let kp = KeyPair::from_seed(1);
        let sig = kp.sign(b"message");
        assert!(!kp.public_key().verify(b"other", &sig));
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let kp1 = KeyPair::from_seed(1);
        let kp2 = KeyPair::from_seed(2);
        let sig = kp1.sign(b"message");
        assert!(!kp2.public_key().verify(b"message", &sig));
    }

    #[test]
    fn keypairs_are_deterministic_per_seed() {
        assert_eq!(KeyPair::from_seed(9), KeyPair::from_seed(9));
        assert_ne!(
            KeyPair::from_seed(9).public_key(),
            KeyPair::from_seed(10).public_key()
        );
    }

    #[test]
    fn client_keys_are_domain_separated_from_validator_keys() {
        for seed in 0..64u64 {
            assert_ne!(
                KeyPair::client_from_seed(seed).public_key(),
                KeyPair::from_seed(seed).public_key(),
                "client {seed} collides with validator {seed}"
            );
        }
        assert_eq!(KeyPair::client_from_seed(3), KeyPair::client_from_seed(3));
        assert_ne!(
            KeyPair::client_from_seed(3).public_key(),
            KeyPair::client_from_seed(4).public_key()
        );
    }

    #[test]
    fn scratch_signing_matches_allocating_signing() {
        let kp = KeyPair::client_from_seed(7);
        let mut scratch = Vec::new();
        let a = kp.sign_with_scratch(&mut scratch, b"request");
        assert_eq!(a, kp.sign(b"request"));
        assert!(kp.public_key().verify(b"request", &a));
    }

    #[test]
    fn secret_key_debug_does_not_leak() {
        let kp = KeyPair::from_seed(5);
        let rendered = format!("{:?}", kp.secret);
        assert_eq!(rendered, "SecretKey(..)");
    }
}

//! Aggregation of per-replica signatures into quorum certificates.
//!
//! The paper's Quorum component exposes `voted()` and `certified()`; the
//! cryptographic side of that component lives here: an
//! [`AggregateSignature`] collects `(signer index, signature)` pairs over the
//! same message and can be verified against a set of public keys.

use std::collections::BTreeMap;

use crate::keys::{PublicKey, Signature};

/// A multi-signature over a single message, keyed by signer index.
///
/// # Example
///
/// ```
/// use bamboo_crypto::{AggregateSignature, KeyPair};
///
/// let keys: Vec<KeyPair> = (0..4).map(KeyPair::from_seed).collect();
/// let msg = b"certify block";
/// let mut agg = AggregateSignature::new();
/// for (i, kp) in keys.iter().enumerate().take(3) {
///     agg.add(i as u64, kp.sign(msg));
/// }
/// assert_eq!(agg.len(), 3);
/// let pks: Vec<_> = keys.iter().map(|k| k.public_key()).collect();
/// assert!(agg.verify(msg, |i| pks.get(i as usize).copied()));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AggregateSignature {
    signatures: BTreeMap<u64, Signature>,
}

impl AggregateSignature {
    /// Creates an empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a signature from signer `index`. Returns `false` if the signer was
    /// already present (the signature is not replaced).
    pub fn add(&mut self, index: u64, signature: Signature) -> bool {
        match self.signatures.entry(index) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(signature);
                true
            }
            std::collections::btree_map::Entry::Occupied(_) => false,
        }
    }

    /// Number of distinct signers.
    pub fn len(&self) -> usize {
        self.signatures.len()
    }

    /// Returns true if no signer has contributed yet.
    pub fn is_empty(&self) -> bool {
        self.signatures.is_empty()
    }

    /// Returns true if signer `index` has contributed.
    pub fn contains(&self, index: u64) -> bool {
        self.signatures.contains_key(&index)
    }

    /// Iterates over the signer indices in ascending order.
    pub fn signers(&self) -> impl Iterator<Item = u64> + '_ {
        self.signatures.keys().copied()
    }

    /// Iterates over `(signer index, signature)` pairs in ascending signer
    /// order (used to stage certificates into a [`crate::BatchVerifier`]).
    pub fn entries(&self) -> impl Iterator<Item = (u64, Signature)> + '_ {
        self.signatures.iter().map(|(index, sig)| (*index, *sig))
    }

    /// Verifies every contained signature over `msg`, looking public keys up
    /// via `key_of`. Returns `false` if any key is unknown or any signature is
    /// invalid.
    pub fn verify<F>(&self, msg: &[u8], key_of: F) -> bool
    where
        F: Fn(u64) -> Option<PublicKey>,
    {
        self.signatures.iter().all(|(index, sig)| {
            key_of(*index)
                .map(|pk| pk.verify(msg, sig))
                .unwrap_or(false)
        })
    }

    /// Approximate wire size in bytes (one signature plus index per signer).
    pub fn wire_size(&self) -> usize {
        self.signatures.len() * (32 + 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyPair;

    fn keys(n: u64) -> Vec<KeyPair> {
        (0..n).map(KeyPair::from_seed).collect()
    }

    #[test]
    fn collects_distinct_signers() {
        let kps = keys(4);
        let mut agg = AggregateSignature::new();
        for (i, kp) in kps.iter().enumerate() {
            assert!(agg.add(i as u64, kp.sign(b"m")));
        }
        assert_eq!(agg.len(), 4);
        assert!(agg.contains(0));
        assert!(!agg.contains(7));
    }

    #[test]
    fn duplicate_signer_is_rejected() {
        let kps = keys(2);
        let mut agg = AggregateSignature::new();
        assert!(agg.add(0, kps[0].sign(b"m")));
        assert!(!agg.add(0, kps[0].sign(b"m")));
        assert_eq!(agg.len(), 1);
    }

    #[test]
    fn verify_accepts_valid_set() {
        let kps = keys(4);
        let pks: Vec<_> = kps.iter().map(|k| k.public_key()).collect();
        let mut agg = AggregateSignature::new();
        for (i, kp) in kps.iter().enumerate() {
            agg.add(i as u64, kp.sign(b"block"));
        }
        assert!(agg.verify(b"block", |i| pks.get(i as usize).copied()));
    }

    #[test]
    fn verify_rejects_wrong_message_or_missing_key() {
        let kps = keys(3);
        let pks: Vec<_> = kps.iter().map(|k| k.public_key()).collect();
        let mut agg = AggregateSignature::new();
        for (i, kp) in kps.iter().enumerate() {
            agg.add(i as u64, kp.sign(b"block"));
        }
        assert!(!agg.verify(b"other", |i| pks.get(i as usize).copied()));
        assert!(!agg.verify(b"block", |_| None));
    }

    #[test]
    fn wire_size_scales_with_signers() {
        let kps = keys(5);
        let mut agg = AggregateSignature::new();
        assert_eq!(agg.wire_size(), 0);
        for (i, kp) in kps.iter().enumerate() {
            agg.add(i as u64, kp.sign(b"m"));
        }
        assert_eq!(agg.wire_size(), 5 * 40);
    }

    #[test]
    fn signers_are_sorted() {
        let kps = keys(5);
        let mut agg = AggregateSignature::new();
        for i in [4u64, 1, 3, 0, 2] {
            agg.add(i, kps[i as usize].sign(b"m"));
        }
        let order: Vec<u64> = agg.signers().collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }
}

//! A from-scratch implementation of the SHA-256 hash function (FIPS 180-4).
//!
//! Implemented locally so the workspace carries no external cryptography
//! dependency; correctness is checked against the published NIST test vectors
//! in the unit tests below.

/// Initial hash values: first 32 bits of the fractional parts of the square
/// roots of the first 8 primes.
const H0: [u32; 8] = [
    0x6a09_e667,
    0xbb67_ae85,
    0x3c6e_f372,
    0xa54f_f53a,
    0x510e_527f,
    0x9b05_688c,
    0x1f83_d9ab,
    0x5be0_cd19,
];

/// Round constants: first 32 bits of the fractional parts of the cube roots of
/// the first 64 primes.
const K: [u32; 64] = [
    0x428a_2f98,
    0x7137_4491,
    0xb5c0_fbcf,
    0xe9b5_dba5,
    0x3956_c25b,
    0x59f1_11f1,
    0x923f_82a4,
    0xab1c_5ed5,
    0xd807_aa98,
    0x1283_5b01,
    0x2431_85be,
    0x550c_7dc3,
    0x72be_5d74,
    0x80de_b1fe,
    0x9bdc_06a7,
    0xc19b_f174,
    0xe49b_69c1,
    0xefbe_4786,
    0x0fc1_9dc6,
    0x240c_a1cc,
    0x2de9_2c6f,
    0x4a74_84aa,
    0x5cb0_a9dc,
    0x76f9_88da,
    0x983e_5152,
    0xa831_c66d,
    0xb003_27c8,
    0xbf59_7fc7,
    0xc6e0_0bf3,
    0xd5a7_9147,
    0x06ca_6351,
    0x1429_2967,
    0x27b7_0a85,
    0x2e1b_2138,
    0x4d2c_6dfc,
    0x5338_0d13,
    0x650a_7354,
    0x766a_0abb,
    0x81c2_c92e,
    0x9272_2c85,
    0xa2bf_e8a1,
    0xa81a_664b,
    0xc24b_8b70,
    0xc76c_51a3,
    0xd192_e819,
    0xd699_0624,
    0xf40e_3585,
    0x106a_a070,
    0x19a4_c116,
    0x1e37_6c08,
    0x2748_774c,
    0x34b0_bcb5,
    0x391c_0cb3,
    0x4ed8_aa4a,
    0x5b9c_ca4f,
    0x682e_6ff3,
    0x748f_82ee,
    0x78a5_636f,
    0x84c8_7814,
    0x8cc7_0208,
    0x90be_fffa,
    0xa450_6ceb,
    0xbef9_a3f7,
    0xc671_78f2,
];

/// Computes the SHA-256 digest of `data`.
///
/// # Example
///
/// ```
/// let digest = bamboo_crypto::sha256(b"abc");
/// assert_eq!(
///     hex(&digest),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// fn hex(bytes: &[u8]) -> String {
///     bytes.iter().map(|b| format!("{b:02x}")).collect()
/// }
/// ```
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut hasher = Sha256::new();
    hasher.update(data);
    hasher.finalize()
}

/// Incremental SHA-256 hasher.
///
/// Supports feeding data in multiple chunks via [`Sha256::update`] before
/// producing the digest with [`Sha256::finalize`].
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Bytes buffered until a full 64-byte block is available.
    buffer: [u8; 64],
    buffer_len: usize,
    /// Total number of message bytes processed so far.
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Self {
            state: H0,
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Feeds `data` into the hasher.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut input = data;

        // Fill a partially filled buffer first.
        if self.buffer_len > 0 {
            let take = (64 - self.buffer_len).min(input.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&input[..take]);
            self.buffer_len += take;
            input = &input[take..];
            if self.buffer_len == 64 {
                compress(&mut self.state, &self.buffer);
                self.buffer_len = 0;
            }
        }

        // Compress full blocks straight from the input slice — no staging
        // copy into a temporary array.
        let mut blocks = input.chunks_exact(64);
        for block in &mut blocks {
            compress(&mut self.state, block.try_into().expect("64-byte chunk"));
        }
        input = blocks.remainder();

        // Buffer the remainder.
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffer_len = input.len();
        }
    }

    /// Consumes the hasher and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total_len.wrapping_mul(8);

        // Append the 0x80 terminator.
        let mut pad = [0u8; 72];
        pad[0] = 0x80;
        // Number of zero bytes so that (buffered + 1 + zeros + 8) % 64 == 0.
        let pad_len = if self.buffer_len < 56 {
            56 - self.buffer_len
        } else {
            120 - self.buffer_len
        };
        pad[pad_len..pad_len + 8].copy_from_slice(&bit_len.to_be_bytes());
        self.update_padding(&pad[..pad_len + 8]);

        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// Like `update` but does not count towards the message length (used only
    /// for the final padding).
    fn update_padding(&mut self, data: &[u8]) {
        let total = self.total_len;
        self.update(data);
        self.total_len = total;
    }
}

/// Computes four SHA-256 digests of **equal-length** inputs in one
/// interleaved pass.
///
/// Equal lengths mean the four messages share an identical block count and
/// padding layout, so all four hash states advance in perfect lockstep
/// through the interleaved compression loop — including the final padded block(s). The
/// lane-major inner loops are written so LLVM can auto-vectorise the four
/// independent word streams (the crate is `forbid(unsafe_code)`, so no
/// explicit SIMD intrinsics are used).
///
/// This is the batched-verification primitive: a quorum certificate checks
/// `2f + 1` signatures over the *same* message, so its signing buffers all
/// have the same length and verify four at a time.
///
/// # Panics
///
/// Panics if the four messages do not all have the same length.
///
/// # Example
///
/// ```
/// use bamboo_crypto::{sha256, sha256_quad};
///
/// let digests = sha256_quad([b"aaaa", b"bbbb", b"cccc", b"dddd"]);
/// assert_eq!(digests[2], sha256(b"cccc"));
/// ```
pub fn sha256_quad(msgs: [&[u8]; 4]) -> [[u8; 32]; 4] {
    let len = msgs[0].len();
    assert!(
        msgs.iter().all(|m| m.len() == len),
        "sha256_quad requires four equal-length messages"
    );
    let mut states = [H0; 4];

    // Full 64-byte blocks, straight from the input slices.
    let full = len / 64;
    for block in 0..full {
        let offset = block * 64;
        let blocks: [&[u8; 64]; 4] = std::array::from_fn(|lane| {
            msgs[lane][offset..offset + 64]
                .try_into()
                .expect("64-byte chunk")
        });
        compress4(&mut states, blocks);
    }

    // The padded tail: identical shape in every lane (equal lengths), one or
    // two blocks depending on whether terminator + length marker fit.
    let rem = len % 64;
    let tail_blocks = if rem < 56 { 1 } else { 2 };
    let bit_len = (len as u64).wrapping_mul(8);
    let mut tails = [[0u8; 128]; 4];
    for (lane, tail) in tails.iter_mut().enumerate() {
        tail[..rem].copy_from_slice(&msgs[lane][len - rem..]);
        tail[rem] = 0x80;
        tail[tail_blocks * 64 - 8..tail_blocks * 64].copy_from_slice(&bit_len.to_be_bytes());
    }
    for block in 0..tail_blocks {
        let offset = block * 64;
        let blocks: [&[u8; 64]; 4] = std::array::from_fn(|lane| {
            tails[lane][offset..offset + 64]
                .try_into()
                .expect("64-byte chunk")
        });
        compress4(&mut states, blocks);
    }

    let mut out = [[0u8; 32]; 4];
    for (lane, state) in states.iter().enumerate() {
        for (i, word) in state.iter().enumerate() {
            out[lane][i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
    }
    out
}

/// Four independent SHA-256 compressions advanced in lockstep: the message
/// schedule and working variables are `[u32; 4]` lane arrays so every round
/// performs the same operation on four independent words — the shape LLVM's
/// auto-vectoriser turns into 128-bit SIMD.
fn compress4(states: &mut [[u32; 8]; 4], blocks: [&[u8; 64]; 4]) {
    let mut w = [[0u32; 4]; 64];
    for (i, word) in w.iter_mut().take(16).enumerate() {
        for lane in 0..4 {
            let offset = i * 4;
            word[lane] = u32::from_be_bytes(
                blocks[lane][offset..offset + 4]
                    .try_into()
                    .expect("4-byte word"),
            );
        }
    }
    for i in 16..64 {
        let mut word = [0u32; 4];
        for (lane, out) in word.iter_mut().enumerate() {
            let x = w[i - 15][lane];
            let y = w[i - 2][lane];
            let s0 = x.rotate_right(7) ^ x.rotate_right(18) ^ (x >> 3);
            let s1 = y.rotate_right(17) ^ y.rotate_right(19) ^ (y >> 10);
            *out = w[i - 16][lane]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7][lane])
                .wrapping_add(s1);
        }
        w[i] = word;
    }

    let lane_of = |states: &[[u32; 8]; 4], j: usize| -> [u32; 4] {
        [states[0][j], states[1][j], states[2][j], states[3][j]]
    };
    let mut a = lane_of(states, 0);
    let mut b = lane_of(states, 1);
    let mut c = lane_of(states, 2);
    let mut d = lane_of(states, 3);
    let mut e = lane_of(states, 4);
    let mut f = lane_of(states, 5);
    let mut g = lane_of(states, 6);
    let mut h = lane_of(states, 7);

    for i in 0..64 {
        let mut temp1 = [0u32; 4];
        let mut temp2 = [0u32; 4];
        for lane in 0..4 {
            let s1 = e[lane].rotate_right(6) ^ e[lane].rotate_right(11) ^ e[lane].rotate_right(25);
            let ch = (e[lane] & f[lane]) ^ ((!e[lane]) & g[lane]);
            temp1[lane] = h[lane]
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i][lane]);
            let s0 = a[lane].rotate_right(2) ^ a[lane].rotate_right(13) ^ a[lane].rotate_right(22);
            let maj = (a[lane] & b[lane]) ^ (a[lane] & c[lane]) ^ (b[lane] & c[lane]);
            temp2[lane] = s0.wrapping_add(maj);
        }
        h = g;
        g = f;
        f = e;
        for lane in 0..4 {
            e[lane] = d[lane].wrapping_add(temp1[lane]);
        }
        d = c;
        c = b;
        b = a;
        for lane in 0..4 {
            a[lane] = temp1[lane].wrapping_add(temp2[lane]);
        }
    }

    for lane in 0..4 {
        states[lane][0] = states[lane][0].wrapping_add(a[lane]);
        states[lane][1] = states[lane][1].wrapping_add(b[lane]);
        states[lane][2] = states[lane][2].wrapping_add(c[lane]);
        states[lane][3] = states[lane][3].wrapping_add(d[lane]);
        states[lane][4] = states[lane][4].wrapping_add(e[lane]);
        states[lane][5] = states[lane][5].wrapping_add(f[lane]);
        states[lane][6] = states[lane][6].wrapping_add(g[lane]);
        states[lane][7] = states[lane][7].wrapping_add(h[lane]);
    }
}

/// One SHA-256 compression round over a single 64-byte block. A free function
/// (rather than a method) so callers can borrow the hasher's buffer and state
/// disjointly and compress without staging the block in a temporary copy.
fn compress(state: &mut [u32; 8], block: &[u8; 64]) {
    let mut w = [0u32; 64];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }

    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;

    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ ((!e) & g);
        let temp1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let temp2 = s0.wrapping_add(maj);

        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(temp1);
        d = c;
        c = b;
        b = a;
        a = temp1.wrapping_add(temp2);
    }

    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn empty_input_matches_nist_vector() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc_matches_nist_vector() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_message_matches_nist_vector() {
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn long_message_matches_nist_vector() {
        // One million repetitions of 'a'.
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha256(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_update_matches_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let expected = sha256(&data);
        // Feed in irregular chunk sizes.
        let mut hasher = Sha256::new();
        let mut offset = 0usize;
        let mut chunk = 1usize;
        while offset < data.len() {
            let end = (offset + chunk).min(data.len());
            hasher.update(&data[offset..end]);
            offset = end;
            chunk = (chunk * 3 + 1) % 97 + 1;
        }
        assert_eq!(hasher.finalize(), expected);
    }

    #[test]
    fn quad_matches_scalar_across_padding_boundaries() {
        // Cover both tail shapes (rem < 56 → one padded block, rem >= 56 →
        // two) and multi-block bodies.
        for len in [
            0usize, 1, 31, 55, 56, 57, 63, 64, 65, 119, 120, 127, 128, 129, 1_000,
        ] {
            let lanes: Vec<Vec<u8>> = (0..4u8)
                .map(|lane| {
                    (0..len)
                        .map(|i| lane ^ (i as u8).wrapping_mul(37))
                        .collect()
                })
                .collect();
            let digests = sha256_quad([&lanes[0], &lanes[1], &lanes[2], &lanes[3]]);
            for (lane, digest) in digests.iter().enumerate() {
                assert_eq!(*digest, sha256(&lanes[lane]), "len {len} lane {lane}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn quad_rejects_mixed_lengths() {
        sha256_quad([b"aa", b"aa", b"aa", b"a"]);
    }

    #[test]
    fn boundary_lengths_are_padded_correctly() {
        // Messages around the 55/56/63/64 byte padding boundaries.
        for len in [
            0usize, 1, 54, 55, 56, 57, 63, 64, 65, 119, 120, 127, 128, 129,
        ] {
            let data = vec![0xabu8; len];
            let one_shot = sha256(&data);
            let mut hasher = Sha256::new();
            for byte in &data {
                hasher.update(std::slice::from_ref(byte));
            }
            assert_eq!(hasher.finalize(), one_shot, "length {len}");
        }
    }
}

//! A from-scratch implementation of the SHA-256 hash function (FIPS 180-4).
//!
//! Implemented locally so the workspace carries no external cryptography
//! dependency; correctness is checked against the published NIST test vectors
//! in the unit tests below.

/// Initial hash values: first 32 bits of the fractional parts of the square
/// roots of the first 8 primes.
const H0: [u32; 8] = [
    0x6a09_e667,
    0xbb67_ae85,
    0x3c6e_f372,
    0xa54f_f53a,
    0x510e_527f,
    0x9b05_688c,
    0x1f83_d9ab,
    0x5be0_cd19,
];

/// Round constants: first 32 bits of the fractional parts of the cube roots of
/// the first 64 primes.
const K: [u32; 64] = [
    0x428a_2f98,
    0x7137_4491,
    0xb5c0_fbcf,
    0xe9b5_dba5,
    0x3956_c25b,
    0x59f1_11f1,
    0x923f_82a4,
    0xab1c_5ed5,
    0xd807_aa98,
    0x1283_5b01,
    0x2431_85be,
    0x550c_7dc3,
    0x72be_5d74,
    0x80de_b1fe,
    0x9bdc_06a7,
    0xc19b_f174,
    0xe49b_69c1,
    0xefbe_4786,
    0x0fc1_9dc6,
    0x240c_a1cc,
    0x2de9_2c6f,
    0x4a74_84aa,
    0x5cb0_a9dc,
    0x76f9_88da,
    0x983e_5152,
    0xa831_c66d,
    0xb003_27c8,
    0xbf59_7fc7,
    0xc6e0_0bf3,
    0xd5a7_9147,
    0x06ca_6351,
    0x1429_2967,
    0x27b7_0a85,
    0x2e1b_2138,
    0x4d2c_6dfc,
    0x5338_0d13,
    0x650a_7354,
    0x766a_0abb,
    0x81c2_c92e,
    0x9272_2c85,
    0xa2bf_e8a1,
    0xa81a_664b,
    0xc24b_8b70,
    0xc76c_51a3,
    0xd192_e819,
    0xd699_0624,
    0xf40e_3585,
    0x106a_a070,
    0x19a4_c116,
    0x1e37_6c08,
    0x2748_774c,
    0x34b0_bcb5,
    0x391c_0cb3,
    0x4ed8_aa4a,
    0x5b9c_ca4f,
    0x682e_6ff3,
    0x748f_82ee,
    0x78a5_636f,
    0x84c8_7814,
    0x8cc7_0208,
    0x90be_fffa,
    0xa450_6ceb,
    0xbef9_a3f7,
    0xc671_78f2,
];

/// Computes the SHA-256 digest of `data`.
///
/// # Example
///
/// ```
/// let digest = bamboo_crypto::sha256(b"abc");
/// assert_eq!(
///     hex(&digest),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// fn hex(bytes: &[u8]) -> String {
///     bytes.iter().map(|b| format!("{b:02x}")).collect()
/// }
/// ```
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut hasher = Sha256::new();
    hasher.update(data);
    hasher.finalize()
}

/// Incremental SHA-256 hasher.
///
/// Supports feeding data in multiple chunks via [`Sha256::update`] before
/// producing the digest with [`Sha256::finalize`].
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Bytes buffered until a full 64-byte block is available.
    buffer: [u8; 64],
    buffer_len: usize,
    /// Total number of message bytes processed so far.
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Self {
            state: H0,
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Feeds `data` into the hasher.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut input = data;

        // Fill a partially filled buffer first.
        if self.buffer_len > 0 {
            let take = (64 - self.buffer_len).min(input.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&input[..take]);
            self.buffer_len += take;
            input = &input[take..];
            if self.buffer_len == 64 {
                compress(&mut self.state, &self.buffer);
                self.buffer_len = 0;
            }
        }

        // Compress full blocks straight from the input slice — no staging
        // copy into a temporary array.
        let mut blocks = input.chunks_exact(64);
        for block in &mut blocks {
            compress(&mut self.state, block.try_into().expect("64-byte chunk"));
        }
        input = blocks.remainder();

        // Buffer the remainder.
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffer_len = input.len();
        }
    }

    /// Consumes the hasher and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total_len.wrapping_mul(8);

        // Append the 0x80 terminator.
        let mut pad = [0u8; 72];
        pad[0] = 0x80;
        // Number of zero bytes so that (buffered + 1 + zeros + 8) % 64 == 0.
        let pad_len = if self.buffer_len < 56 {
            56 - self.buffer_len
        } else {
            120 - self.buffer_len
        };
        pad[pad_len..pad_len + 8].copy_from_slice(&bit_len.to_be_bytes());
        self.update_padding(&pad[..pad_len + 8]);

        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// Like `update` but does not count towards the message length (used only
    /// for the final padding).
    fn update_padding(&mut self, data: &[u8]) {
        let total = self.total_len;
        self.update(data);
        self.total_len = total;
    }
}

/// One SHA-256 compression round over a single 64-byte block. A free function
/// (rather than a method) so callers can borrow the hasher's buffer and state
/// disjointly and compress without staging the block in a temporary copy.
fn compress(state: &mut [u32; 8], block: &[u8; 64]) {
    let mut w = [0u32; 64];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }

    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;

    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ ((!e) & g);
        let temp1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let temp2 = s0.wrapping_add(maj);

        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(temp1);
        d = c;
        c = b;
        b = a;
        a = temp1.wrapping_add(temp2);
    }

    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn empty_input_matches_nist_vector() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc_matches_nist_vector() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_message_matches_nist_vector() {
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn long_message_matches_nist_vector() {
        // One million repetitions of 'a'.
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha256(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_update_matches_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let expected = sha256(&data);
        // Feed in irregular chunk sizes.
        let mut hasher = Sha256::new();
        let mut offset = 0usize;
        let mut chunk = 1usize;
        while offset < data.len() {
            let end = (offset + chunk).min(data.len());
            hasher.update(&data[offset..end]);
            offset = end;
            chunk = (chunk * 3 + 1) % 97 + 1;
        }
        assert_eq!(hasher.finalize(), expected);
    }

    #[test]
    fn boundary_lengths_are_padded_correctly() {
        // Messages around the 55/56/63/64 byte padding boundaries.
        for len in [
            0usize, 1, 54, 55, 56, 57, 63, 64, 65, 119, 120, 127, 128, 129,
        ] {
            let data = vec![0xabu8; len];
            let one_shot = sha256(&data);
            let mut hasher = Sha256::new();
            for byte in &data {
                hasher.update(std::slice::from_ref(byte));
            }
            assert_eq!(hasher.finalize(), one_shot, "length {len}");
        }
    }
}

//! Fast-HotStuff-style safety rules (framework extension).
//!
//! Fast-HotStuff (Jalalzai, Niu, Feng 2020) is one of the protocols the paper
//! lists as built on Bamboo but not part of the headline evaluation. Its
//! distinguishing features, reproduced here at the rule level, are:
//!
//! * a **two-chain commit rule** (one round less than HotStuff),
//! * **optimistic responsiveness** in the happy path, achieved by requiring
//!   proposals to extend the block certified by their own `justify` QC, and
//! * forking resistance: a proposal whose parent is not the block its QC
//!   certifies is rejected outright, so a Byzantine leader cannot silently
//!   build on an old ancestor without presenting an (aggregated) proof.
//!
//! The unhappy-path aggregated-QC machinery is carried by the shared
//! pacemaker's timeout certificates.

use bamboo_forest::BlockForest;
use bamboo_types::{Block, BlockId, Height, ProtocolKind, QuorumCert, View};

use crate::safety::{build_block, ProposalInput, Safety, VoteDestination};

/// Fast-HotStuff safety rules.
#[derive(Clone, Debug)]
pub struct FastHotStuffSafety {
    last_voted_view: View,
    locked: BlockId,
    locked_height: Height,
}

impl Default for FastHotStuffSafety {
    fn default() -> Self {
        Self::new()
    }
}

impl FastHotStuffSafety {
    /// Creates the initial state.
    pub fn new() -> Self {
        Self {
            last_voted_view: View::GENESIS,
            locked: BlockId::GENESIS,
            locked_height: Height::GENESIS,
        }
    }

    /// The currently locked block.
    pub fn locked_block(&self) -> BlockId {
        self.locked
    }
}

impl Safety for FastHotStuffSafety {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::FastHotStuff
    }

    fn voted_view(&self) -> View {
        self.last_voted_view
    }

    fn restore_voted_view(&mut self, view: View) {
        self.last_voted_view = self.last_voted_view.max(view);
    }

    fn vote_destination(&self) -> VoteDestination {
        VoteDestination::NextLeader
    }

    fn is_responsive(&self) -> bool {
        true
    }

    fn propose(&mut self, input: &ProposalInput, forest: &BlockForest) -> Option<Block> {
        let high_qc = forest.high_qc().clone();
        build_block(input, forest, high_qc.block, high_qc)
    }

    fn should_vote(&mut self, block: &Block, forest: &BlockForest) -> bool {
        if block.view <= self.last_voted_view {
            return false;
        }
        // The parent must be exactly the block certified by the proposal's own
        // QC — a proposal built on an older ancestor is rejected, which is the
        // rule-level source of Fast-HotStuff's forking resistance.
        if block.parent != block.justify.block {
            return false;
        }
        if !forest.contains(block.parent) {
            return false;
        }
        self.last_voted_view = block.view;
        true
    }

    fn update_state(&mut self, qc: &QuorumCert, forest: &BlockForest) {
        if let Some(certified) = forest.get(qc.block) {
            if certified.height > self.locked_height {
                self.locked = certified.id;
                self.locked_height = certified.height;
            }
        }
    }

    fn try_commit(&mut self, qc: &QuorumCert, forest: &BlockForest) -> Option<BlockId> {
        let tip = forest.get(qc.block)?;
        let parent = forest.get(tip.parent)?;
        if forest.is_certified(tip.id) && forest.is_certified(parent.id) && !parent.is_genesis() {
            Some(parent.id)
        } else {
            None
        }
    }

    fn fork_parent(&self, _forest: &BlockForest) -> Option<BlockId> {
        // The strict parent-equals-justify voting rule means an unjustified
        // fork never collects votes.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::safety::testutil::*;

    #[test]
    fn rejects_proposals_not_built_on_their_own_qc() {
        let mut forest = bamboo_forest::BlockForest::new();
        let (a, qc_a) = extend_certified(&mut forest, BlockId::GENESIS, 1);
        let (_b, _qc_b) = extend_certified(&mut forest, a, 2);
        let mut fhs = FastHotStuffSafety::new();
        // Proposal built on `a` but carrying genesis QC: parent != justify.block.
        let forked = build_block(&input(3, 3), &forest, a, QuorumCert::genesis()).unwrap();
        forest.insert(forked.clone()).unwrap();
        assert!(!fhs.should_vote(&forked, &forest));
        // Proper proposal on `a` with qc_a is fine.
        let good = build_block(&input(4, 0), &forest, a, qc_a).unwrap();
        forest.insert(good.clone()).unwrap();
        assert!(fhs.should_vote(&good, &forest));
    }

    #[test]
    fn two_chain_commit_and_responsiveness() {
        let mut forest = bamboo_forest::BlockForest::new();
        let (a, _) = extend_certified(&mut forest, BlockId::GENESIS, 1);
        let (_b, qc_b) = extend_certified(&mut forest, a, 2);
        let mut fhs = FastHotStuffSafety::new();
        assert_eq!(fhs.try_commit(&qc_b, &forest), Some(a));
        assert!(fhs.is_responsive());
        assert!(fhs.fork_parent(&forest).is_none());
    }

    #[test]
    fn lock_follows_certified_tip() {
        let mut forest = bamboo_forest::BlockForest::new();
        let (a, qc_a) = extend_certified(&mut forest, BlockId::GENESIS, 1);
        let mut fhs = FastHotStuffSafety::new();
        fhs.update_state(&qc_a, &forest);
        assert_eq!(fhs.locked_block(), a);
    }
}

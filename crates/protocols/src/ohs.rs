//! "Original HotStuff" baseline (OHS).
//!
//! Fig. 9 of the paper compares Bamboo's HotStuff against the authors'
//! original C++ `libhotstuff` implementation, which differs in transport,
//! batching strategy and language but not in the protocol rules. We cannot run
//! the C++ code inside this reproduction, so — as documented in DESIGN.md — we
//! substitute an *independently written* HotStuff rule implementation that
//! follows libhotstuff's internal structure (explicit `b_lock` / `b_exec`
//! pointers and a `vheight` watermark, updated in a single `update()` pass)
//! rather than Bamboo's two-chain-head formulation. The runner additionally
//! applies a greedy batching strategy to OHS to mirror the batching difference
//! the paper cites as the source of the (small) performance gap.

use bamboo_forest::BlockForest;
use bamboo_types::{Block, BlockId, Height, ProtocolKind, QuorumCert, View};

use crate::safety::{build_block, ProposalInput, Safety, VoteDestination};

/// Baseline HotStuff implementation structured after libhotstuff.
#[derive(Clone, Debug)]
pub struct OhsSafety {
    /// `vheight`: the height of the last voted block.
    vheight: Height,
    /// `b_lock`: the locked block (updated on a two-chain).
    b_lock: BlockId,
    b_lock_height: Height,
    /// `b_exec`: the last executed (committed) block.
    b_exec: BlockId,
    b_exec_height: Height,
}

impl Default for OhsSafety {
    fn default() -> Self {
        Self::new()
    }
}

impl OhsSafety {
    /// Creates the initial state with all pointers on genesis.
    pub fn new() -> Self {
        Self {
            vheight: Height::GENESIS,
            b_lock: BlockId::GENESIS,
            b_lock_height: Height::GENESIS,
            b_exec: BlockId::GENESIS,
            b_exec_height: Height::GENESIS,
        }
    }

    /// The `b_lock` pointer.
    pub fn locked_block(&self) -> BlockId {
        self.b_lock
    }

    /// The `b_exec` pointer.
    pub fn executed_block(&self) -> BlockId {
        self.b_exec
    }

    /// libhotstuff's `update(b*)`: walk the justify chain b* -> b'' -> b' -> b
    /// and apply the one-/two-/three-chain state transitions in one pass.
    fn update(&mut self, newly_certified: BlockId, forest: &BlockForest) -> Option<BlockId> {
        // b'' := the newly certified block (one-chain: becomes the generic
        // "prepare" stage — nothing to store, hQC lives in the forest).
        let b2 = forest.get(newly_certified)?;
        // b' := parent of b'' (two-chain: pre-commit stage, take the lock).
        let b1 = forest.get(b2.parent)?;
        if forest.is_certified(b1.id) && b1.height > self.b_lock_height {
            self.b_lock = b1.id;
            self.b_lock_height = b1.height;
        }
        // b := parent of b' (three-chain: decide / execute).
        let b0 = forest.get(b1.parent)?;
        if forest.is_certified(b2.id)
            && forest.is_certified(b1.id)
            && forest.is_certified(b0.id)
            && !b0.is_genesis()
            && b0.height > self.b_exec_height
        {
            self.b_exec = b0.id;
            self.b_exec_height = b0.height;
            return Some(b0.id);
        }
        None
    }
}

impl Safety for OhsSafety {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::OriginalHotStuff
    }

    // OHS votes by height, not view: `vheight` is the watermark. It is
    // mapped into the view slot of the durable `SafetyRecord` — the
    // double-vote guarantee (never vote at or below the watermark again)
    // is the same, only the unit differs.
    fn voted_view(&self) -> View {
        View(self.vheight.as_u64())
    }

    fn restore_voted_view(&mut self, view: View) {
        self.vheight = self.vheight.max(Height(view.as_u64()));
    }

    fn vote_destination(&self) -> VoteDestination {
        VoteDestination::NextLeader
    }

    fn is_responsive(&self) -> bool {
        true
    }

    fn propose(&mut self, input: &ProposalInput, forest: &BlockForest) -> Option<Block> {
        let high_qc = forest.high_qc().clone();
        build_block(input, forest, high_qc.block, high_qc)
    }

    fn should_vote(&mut self, block: &Block, forest: &BlockForest) -> bool {
        // libhotstuff rule: vote iff block.height > vheight and (block extends
        // b_lock or block.justify certifies a block higher than b_lock).
        if block.height <= self.vheight {
            return false;
        }
        let extends_lock = forest.extends(block.parent, self.b_lock);
        let justify_height = forest
            .get(block.justify.block)
            .map(|b| b.height)
            .unwrap_or(Height::GENESIS);
        if extends_lock || justify_height > self.b_lock_height {
            self.vheight = block.height;
            true
        } else {
            false
        }
    }

    fn update_state(&mut self, qc: &QuorumCert, forest: &BlockForest) {
        // State transitions happen inside update(); commit is reported by
        // try_commit which re-runs the same walk idempotently.
        let _ = self.update(qc.block, forest);
    }

    fn try_commit(&mut self, qc: &QuorumCert, forest: &BlockForest) -> Option<BlockId> {
        // update_state already moved b_exec if a three-chain formed; report it
        // if it is ahead of what the forest has committed.
        let tip = forest.get(qc.block)?;
        let parent = forest.get(tip.parent)?;
        let grandparent = forest.get(parent.parent)?;
        if forest.is_certified(tip.id)
            && forest.is_certified(parent.id)
            && forest.is_certified(grandparent.id)
            && !grandparent.is_genesis()
        {
            Some(grandparent.id)
        } else {
            None
        }
    }

    fn fork_parent(&self, forest: &BlockForest) -> Option<BlockId> {
        let tip = forest.highest_certified_block();
        let target = forest.ancestor(tip.id, 2)?;
        forest.is_certified(target.id).then_some(target.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hotstuff::HotStuffSafety;
    use crate::safety::testutil::*;

    #[test]
    fn agrees_with_bamboo_hotstuff_on_a_clean_chain() {
        // Both implementations must commit exactly the same blocks on the same
        // inputs — that is the whole point of the baseline.
        let mut forest = bamboo_forest::BlockForest::new();
        let mut ohs = OhsSafety::new();
        let mut hs = HotStuffSafety::new();
        let mut parent = BlockId::GENESIS;
        for view in 1..=6u64 {
            let (id, qc) = extend_certified(&mut forest, parent, view);
            ohs.update_state(&qc, &forest);
            hs.update_state(&qc, &forest);
            assert_eq!(
                ohs.try_commit(&qc, &forest),
                hs.try_commit(&qc, &forest),
                "view {view}"
            );
            parent = id;
        }
        assert_eq!(ohs.locked_block(), hs.locked_block());
    }

    #[test]
    fn vheight_prevents_double_voting_at_same_height() {
        let mut forest = bamboo_forest::BlockForest::new();
        let (a, qc_a) = extend_certified(&mut forest, BlockId::GENESIS, 1);
        let mut ohs = OhsSafety::new();
        let first = build_block(&input(2, 2), &forest, a, qc_a.clone()).unwrap();
        forest.insert(first.clone()).unwrap();
        assert!(ohs.should_vote(&first, &forest));
        // A competing proposal at the same height is refused.
        let rival = build_block(&input(3, 3), &forest, a, qc_a).unwrap();
        forest.insert(rival.clone()).unwrap();
        assert!(!ohs.should_vote(&rival, &forest));
    }

    #[test]
    fn b_exec_advances_on_three_chain() {
        let mut forest = bamboo_forest::BlockForest::new();
        let (a, qc_a) = extend_certified(&mut forest, BlockId::GENESIS, 1);
        let (b, qc_b) = extend_certified(&mut forest, a, 2);
        let (_c, qc_c) = extend_certified(&mut forest, b, 3);
        let mut ohs = OhsSafety::new();
        ohs.update_state(&qc_a, &forest);
        ohs.update_state(&qc_b, &forest);
        assert_eq!(ohs.executed_block(), BlockId::GENESIS);
        ohs.update_state(&qc_c, &forest);
        assert_eq!(ohs.executed_block(), a);
        assert_eq!(ohs.locked_block(), b);
    }
}

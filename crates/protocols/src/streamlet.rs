//! Streamlet (§II-D of the paper).
//!
//! Streamlet follows the longest-notarized-chain principle:
//! * **Proposing**: the leader builds on the tip of the longest notarized
//!   (certified) chain it has seen.
//! * **Voting**: a replica votes for the first proposal of a view only if it
//!   extends the longest notarized chain; votes are *broadcast* to everyone
//!   and every message is echoed, giving O(n³) communication.
//! * **State updating**: maintain the notarized chain (delegated to the shared
//!   block forest).
//! * **Commit**: whenever three blocks proposed in *consecutive views* are all
//!   notarized, the first two of the three (and their ancestors) commit.
//!
//! As in Bamboo, the synchronized 2Δ clock of the original protocol is
//! replaced by the shared pacemaker, which preserves the protocol's structure
//! while making the comparison fair.

use bamboo_forest::BlockForest;
use bamboo_types::{Block, BlockId, ProtocolKind, QuorumCert, View};

use crate::safety::{build_block, ProposalInput, Safety, VoteDestination};

/// Streamlet safety rules.
#[derive(Clone, Debug)]
pub struct StreamletSafety {
    last_voted_view: View,
}

impl Default for StreamletSafety {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamletSafety {
    /// Creates the initial state.
    pub fn new() -> Self {
        Self {
            last_voted_view: View::GENESIS,
        }
    }

    /// The last view this replica voted in.
    pub fn last_voted_view(&self) -> View {
        self.last_voted_view
    }
}

impl Safety for StreamletSafety {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Streamlet
    }

    fn voted_view(&self) -> View {
        self.last_voted_view
    }

    fn restore_voted_view(&mut self, view: View) {
        self.last_voted_view = self.last_voted_view.max(view);
    }

    fn vote_destination(&self) -> VoteDestination {
        VoteDestination::Broadcast
    }

    fn echo_messages(&self) -> bool {
        true
    }

    fn is_responsive(&self) -> bool {
        // Streamlet still relies on timeouts to guarantee liveness even though
        // it has a three-chain-style commit rule (§II-D).
        false
    }

    fn epoch_based(&self) -> bool {
        // Streamlet's rounds are synchronized epochs of fixed duration; a
        // deployment must provision them for the maximal network delay.
        true
    }

    fn propose(&mut self, input: &ProposalInput, forest: &BlockForest) -> Option<Block> {
        // Build on the tip of the longest notarized chain. Only the tip's id
        // is needed — cloning the whole block would copy its payload.
        let tip = forest.highest_certified_block().id;
        let justify = forest
            .qc_of(tip)
            .cloned()
            .unwrap_or_else(QuorumCert::genesis);
        build_block(input, forest, tip, justify)
    }

    fn should_vote(&mut self, block: &Block, forest: &BlockForest) -> bool {
        if block.view <= self.last_voted_view {
            return false;
        }
        // Only vote for proposals extending the longest notarized chain the
        // replica has seen: the parent must be notarized and at least as high
        // as the highest notarized block.
        let Some(parent) = forest.get(block.parent) else {
            return false;
        };
        if !forest.is_certified(parent.id) {
            return false;
        }
        let longest = forest.highest_certified_block();
        if parent.height < longest.height {
            return false;
        }
        self.last_voted_view = block.view;
        true
    }

    fn update_state(&mut self, _qc: &QuorumCert, _forest: &BlockForest) {
        // The notarized chain is maintained by the shared block forest; there
        // is no additional protocol-local state to update.
    }

    fn try_commit(&mut self, qc: &QuorumCert, forest: &BlockForest) -> Option<BlockId> {
        // Three notarized blocks in consecutive views commit the first two of
        // the three: committing the middle block commits it and every
        // ancestor, which is exactly "the first two out of the three".
        let tip = forest.get(qc.block)?;
        let head = forest.consecutive_view_chain(tip.id, 3)?;
        if head.is_genesis() {
            // The chain is g <- b1 <- b2 where genesis counts as certified but
            // has no real view; require three real blocks.
            return None;
        }
        let middle = forest.get(tip.parent)?;
        Some(middle.id)
    }

    fn fork_parent(&self, _forest: &BlockForest) -> Option<BlockId> {
        // Honest replicas only vote for blocks extending the longest notarized
        // chain, so there is no ancestor the attacker can build on that both
        // forks the chain and still collects votes: Streamlet is immune to the
        // forking attack in a synchronous network (§IV-A1).
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::safety::testutil::*;

    #[test]
    fn proposes_on_longest_notarized_chain() {
        let mut forest = bamboo_forest::BlockForest::new();
        let (a, _) = extend_certified(&mut forest, BlockId::GENESIS, 1);
        let (b, qc_b) = extend_certified(&mut forest, a, 2);
        // A longer but uncertified fork must be ignored.
        let f1 = extend(&mut forest, a, 3);
        let _f2 = extend(&mut forest, f1, 4);
        let mut sl = StreamletSafety::new();
        let block = sl.propose(&input(5, 1), &forest).expect("proposal");
        assert_eq!(
            block.parent, b,
            "builds on notarized tip, not longest raw fork"
        );
        assert_eq!(block.justify, qc_b);
    }

    #[test]
    fn votes_only_for_extensions_of_longest_notarized_chain() {
        let mut forest = bamboo_forest::BlockForest::new();
        let (a, qc_a) = extend_certified(&mut forest, BlockId::GENESIS, 1);
        let (b, qc_b) = extend_certified(&mut forest, a, 2);
        let mut sl = StreamletSafety::new();

        // Extending the notarized tip: accepted.
        let good = build_block(&input(3, 3), &forest, b, qc_b).unwrap();
        forest.insert(good.clone()).unwrap();
        assert!(sl.should_vote(&good, &forest));

        // A forking proposal built on `a` (shorter than the notarized tip `b`)
        // is rejected — this is what makes Streamlet immune to forking.
        let fork = build_block(&input(4, 0), &forest, a, qc_a).unwrap();
        forest.insert(fork.clone()).unwrap();
        assert!(!sl.should_vote(&fork, &forest));
    }

    #[test]
    fn does_not_vote_twice_in_a_view_or_for_uncertified_parents() {
        let mut forest = bamboo_forest::BlockForest::new();
        let (a, qc_a) = extend_certified(&mut forest, BlockId::GENESIS, 1);
        let mut sl = StreamletSafety::new();
        let first = build_block(&input(2, 2), &forest, a, qc_a.clone()).unwrap();
        forest.insert(first.clone()).unwrap();
        assert!(sl.should_vote(&first, &forest));
        assert!(!sl.should_vote(&first, &forest), "same view again");

        // Parent not certified -> reject.
        let dangling = extend(&mut forest, first.id, 3);
        let child = build_block(&input(4, 0), &forest, dangling, QuorumCert::genesis()).unwrap();
        forest.insert(child.clone()).unwrap();
        assert!(!sl.should_vote(&child, &forest));
    }

    #[test]
    fn commit_requires_three_consecutive_views() {
        let mut forest = bamboo_forest::BlockForest::new();
        let (a, _) = extend_certified(&mut forest, BlockId::GENESIS, 1);
        let (b, _) = extend_certified(&mut forest, a, 2);
        let (_c, qc_c) = extend_certified(&mut forest, b, 3);
        let mut sl = StreamletSafety::new();
        assert_eq!(
            sl.try_commit(&qc_c, &forest),
            Some(b),
            "commit first two of three"
        );

        // With a view gap there is no commit.
        let mut forest2 = bamboo_forest::BlockForest::new();
        let (x, _) = extend_certified(&mut forest2, BlockId::GENESIS, 1);
        let (y, _) = extend_certified(&mut forest2, x, 2);
        let (_z, qc_z) = extend_certified(&mut forest2, y, 4); // gap: 2 -> 4
        assert_eq!(sl.try_commit(&qc_z, &forest2), None);
    }

    #[test]
    fn two_notarized_blocks_are_not_enough() {
        let mut forest = bamboo_forest::BlockForest::new();
        let (a, _) = extend_certified(&mut forest, BlockId::GENESIS, 1);
        let (_b, qc_b) = extend_certified(&mut forest, a, 2);
        let mut sl = StreamletSafety::new();
        assert_eq!(sl.try_commit(&qc_b, &forest), None);
    }

    #[test]
    fn metadata_matches_paper_description() {
        let sl = StreamletSafety::new();
        assert_eq!(sl.vote_destination(), VoteDestination::Broadcast);
        assert!(sl.echo_messages());
        assert!(!sl.is_responsive());
        assert!(sl.fork_parent(&bamboo_forest::BlockForest::new()).is_none());
    }
}

//! Two-chain HotStuff (2CHS, §II-C of the paper).
//!
//! Identical to HotStuff except that:
//! * the locked block is the head of the highest *one*-chain (the most
//!   recently certified block itself), and
//! * the commit rule needs only a two-chain,
//!
//! which saves one round of voting at the price of losing optimistic
//! responsiveness: after a view change the leader must wait for the maximal
//! network delay (like Tendermint / Casper).

use bamboo_forest::BlockForest;
use bamboo_types::{Block, BlockId, Height, ProtocolKind, QuorumCert, View};

use crate::safety::{build_block, ProposalInput, Safety, VoteDestination};

/// Two-chain HotStuff safety rules.
#[derive(Clone, Debug)]
pub struct TwoChainHotStuffSafety {
    locked: BlockId,
    locked_height: Height,
    locked_view: View,
    last_voted_view: View,
}

impl Default for TwoChainHotStuffSafety {
    fn default() -> Self {
        Self::new()
    }
}

impl TwoChainHotStuffSafety {
    /// Creates the initial state: locked on genesis, nothing voted yet.
    pub fn new() -> Self {
        Self {
            locked: BlockId::GENESIS,
            locked_height: Height::GENESIS,
            locked_view: View::GENESIS,
            last_voted_view: View::GENESIS,
        }
    }

    /// The currently locked block.
    pub fn locked_block(&self) -> BlockId {
        self.locked
    }

    /// The last view this replica voted in.
    pub fn last_voted_view(&self) -> View {
        self.last_voted_view
    }
}

impl Safety for TwoChainHotStuffSafety {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::TwoChainHotStuff
    }

    fn voted_view(&self) -> View {
        self.last_voted_view
    }

    fn restore_voted_view(&mut self, view: View) {
        self.last_voted_view = self.last_voted_view.max(view);
    }

    fn vote_destination(&self) -> VoteDestination {
        VoteDestination::NextLeader
    }

    fn is_responsive(&self) -> bool {
        // Locking on the one-chain means the protocol must wait for the
        // maximal network delay after a view change (§II-C).
        false
    }

    fn propose(&mut self, input: &ProposalInput, forest: &BlockForest) -> Option<Block> {
        let high_qc = forest.high_qc().clone();
        build_block(input, forest, high_qc.block, high_qc)
    }

    fn should_vote(&mut self, block: &Block, forest: &BlockForest) -> bool {
        if block.view <= self.last_voted_view {
            return false;
        }
        let extends_lock = forest.extends(block.parent, self.locked);
        let parent_view = forest
            .get(block.parent)
            .map(|p| p.view)
            .unwrap_or(block.justify.view);
        let higher_view = parent_view > self.locked_view;
        if extends_lock || higher_view {
            self.last_voted_view = block.view;
            true
        } else {
            false
        }
    }

    fn update_state(&mut self, qc: &QuorumCert, forest: &BlockForest) {
        // The lock is on the one-chain: the newly certified block itself.
        if let Some(certified) = forest.get(qc.block) {
            if certified.height > self.locked_height {
                self.locked = certified.id;
                self.locked_height = certified.height;
                self.locked_view = certified.view;
            }
        }
    }

    fn try_commit(&mut self, qc: &QuorumCert, forest: &BlockForest) -> Option<BlockId> {
        // A two-chain ending at the newly certified block commits its head.
        let tip = forest.get(qc.block)?;
        let parent = forest.get(tip.parent)?;
        if forest.is_certified(tip.id) && forest.is_certified(parent.id) && !parent.is_genesis() {
            Some(parent.id)
        } else {
            None
        }
    }

    fn fork_parent(&self, forest: &BlockForest) -> Option<BlockId> {
        // The lock sits on the certified tip itself, so the attacker can only
        // rewrite a single block: it builds on the parent of the tip (the
        // voting rule still accepts because that parent has a view no lower
        // than the honest lock only when the tip QC has not been seen by the
        // voters yet; in practice this overwrites at most one block, as the
        // paper observes).
        let tip = forest.highest_certified_block();
        let target = forest.ancestor(tip.id, 1)?;
        if forest.is_certified(target.id) {
            Some(target.id)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::safety::testutil::*;

    #[test]
    fn two_chain_commits_parent_of_certified_tip() {
        let mut forest = bamboo_forest::BlockForest::new();
        let (a, qc_a) = extend_certified(&mut forest, BlockId::GENESIS, 1);
        let mut p = TwoChainHotStuffSafety::new();
        assert_eq!(p.try_commit(&qc_a, &forest), None, "one-chain insufficient");
        let (_b, qc_b) = extend_certified(&mut forest, a, 2);
        assert_eq!(p.try_commit(&qc_b, &forest), Some(a));
    }

    #[test]
    fn commits_one_round_earlier_than_hotstuff() {
        use crate::hotstuff::HotStuffSafety;
        let mut forest = bamboo_forest::BlockForest::new();
        let (a, _) = extend_certified(&mut forest, BlockId::GENESIS, 1);
        let (_b, qc_b) = extend_certified(&mut forest, a, 2);
        let mut two = TwoChainHotStuffSafety::new();
        let mut three = HotStuffSafety::new();
        assert_eq!(two.try_commit(&qc_b, &forest), Some(a));
        assert_eq!(three.try_commit(&qc_b, &forest), None);
    }

    #[test]
    fn lock_moves_to_certified_tip() {
        let mut forest = bamboo_forest::BlockForest::new();
        let (a, qc_a) = extend_certified(&mut forest, BlockId::GENESIS, 1);
        let mut p = TwoChainHotStuffSafety::new();
        p.update_state(&qc_a, &forest);
        assert_eq!(p.locked_block(), a, "lock is on the one-chain head");
    }

    #[test]
    fn voting_respects_lock_and_view_monotonicity() {
        let mut forest = bamboo_forest::BlockForest::new();
        let (a, qc_a) = extend_certified(&mut forest, BlockId::GENESIS, 1);
        let mut p = TwoChainHotStuffSafety::new();
        p.update_state(&qc_a, &forest);

        let good = build_block(&input(2, 2), &forest, a, qc_a).unwrap();
        forest.insert(good.clone()).unwrap();
        assert!(p.should_vote(&good, &forest));

        // Conflicting proposal from genesis is rejected (lock is on `a`).
        let bad = build_block(
            &input(3, 3),
            &forest,
            BlockId::GENESIS,
            QuorumCert::genesis(),
        )
        .unwrap();
        forest.insert(bad.clone()).unwrap();
        assert!(!p.should_vote(&bad, &forest));

        // A stale view is rejected even if it extends the lock.
        let stale = {
            let mut i = input(2, 1);
            i.view = View(1);
            build_block(&i, &forest, a, QuorumCert::genesis()).unwrap()
        };
        assert!(!p.should_vote(&stale, &forest));
    }

    #[test]
    fn fork_parent_overwrites_only_one_block() {
        let mut forest = bamboo_forest::BlockForest::new();
        let (a, _) = extend_certified(&mut forest, BlockId::GENESIS, 1);
        let (b, _) = extend_certified(&mut forest, a, 2);
        let (_c, _) = extend_certified(&mut forest, b, 3);
        let p = TwoChainHotStuffSafety::new();
        assert_eq!(
            p.fork_parent(&forest),
            Some(b),
            "parent of tip, not grandparent"
        );
    }

    #[test]
    fn not_responsive() {
        assert!(!TwoChainHotStuffSafety::new().is_responsive());
    }
}

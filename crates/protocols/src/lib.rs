//! Chained-BFT protocol implementations — the Safety module of Bamboo.
//!
//! A cBFT protocol is characterised by four rules (§II-A of the paper):
//! *Proposing*, *Voting*, *State Updating* and *Commit*. The [`Safety`] trait
//! captures exactly those four rules plus two bits of protocol metadata (where
//! votes are sent, and whether messages are echoed). Everything else — block
//! storage, the pacemaker, quorum collection, networking — is shared
//! infrastructure provided by the other crates, which is what makes the
//! comparison between protocols apples-to-apples.
//!
//! Provided implementations:
//!
//! * [`HotStuffSafety`] — chained HotStuff with the three-chain commit rule,
//! * [`TwoChainHotStuffSafety`] — the two-chain variant (2CHS),
//! * [`StreamletSafety`] — Streamlet with broadcast votes, message echoing and
//!   the consecutive-view commit rule,
//! * [`FastHotStuffSafety`] — Fast-HotStuff-style two-chain commit with
//!   aggregated-QC view changes (framework extension),
//! * [`LbftSafety`] — an LBFT-style variant (framework extension),
//! * [`OhsSafety`] — an independent HotStuff implementation used as the
//!   "original HotStuff" baseline of Fig. 9,
//! * [`ForkingSafety`] and [`SilenceSafety`] — the two Byzantine strategies of
//!   §IV-A, implemented (as in the paper) purely by overriding the Proposing
//!   rule of any wrapped protocol,
//! * [`ForgedVoteSafety`] and [`ForgedQcSafety`] — signature-forgery attacks
//!   (framework extension) that flood invalid votes / forged quorum
//!   certificates, exercising the authenticated ingress stage instead of the
//!   consensus rules.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod byzantine;
pub mod fasthotstuff;
pub mod hotstuff;
pub mod lbft;
pub mod ohs;
pub mod safety;
pub mod streamlet;
pub mod twochain;

pub use byzantine::{ForgedQcSafety, ForgedVoteSafety, ForkingSafety, SilenceSafety};
pub use fasthotstuff::FastHotStuffSafety;
pub use hotstuff::HotStuffSafety;
pub use lbft::LbftSafety;
pub use ohs::OhsSafety;
pub use safety::{build_block, ProposalInput, Safety, VoteDestination};
pub use streamlet::StreamletSafety;
pub use twochain::TwoChainHotStuffSafety;

use bamboo_types::{ByzantineStrategy, ProtocolKind};

/// Instantiates the [`Safety`] implementation for `kind`.
pub fn make_protocol(kind: ProtocolKind) -> Box<dyn Safety> {
    match kind {
        ProtocolKind::HotStuff => Box::new(HotStuffSafety::new()),
        ProtocolKind::TwoChainHotStuff => Box::new(TwoChainHotStuffSafety::new()),
        ProtocolKind::Streamlet => Box::new(StreamletSafety::new()),
        ProtocolKind::FastHotStuff => Box::new(FastHotStuffSafety::new()),
        ProtocolKind::Lbft => Box::new(LbftSafety::new()),
        ProtocolKind::OriginalHotStuff => Box::new(OhsSafety::new()),
    }
}

/// Instantiates the [`Safety`] implementation for `kind`, wrapped in the given
/// Byzantine strategy. The paper's pair (forking, silence) only change the
/// Proposing rule (§IV-A); the forgery pair additionally corrupts outbound
/// signatures and needs the system size `nodes` to mint votes in every
/// replica's name.
pub fn make_safety(
    kind: ProtocolKind,
    strategy: ByzantineStrategy,
    nodes: usize,
) -> Box<dyn Safety> {
    match strategy {
        ByzantineStrategy::Honest => make_protocol(kind),
        ByzantineStrategy::Forking => Box::new(ForkingSafety::new(make_protocol(kind))),
        ByzantineStrategy::Silence => Box::new(SilenceSafety::new(make_protocol(kind))),
        ByzantineStrategy::ForgedVote => {
            Box::new(ForgedVoteSafety::new(make_protocol(kind), nodes))
        }
        ByzantineStrategy::ForgedQc => Box::new(ForgedQcSafety::new(make_protocol(kind))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_produces_matching_kinds() {
        for kind in [
            ProtocolKind::HotStuff,
            ProtocolKind::TwoChainHotStuff,
            ProtocolKind::Streamlet,
            ProtocolKind::FastHotStuff,
            ProtocolKind::Lbft,
            ProtocolKind::OriginalHotStuff,
        ] {
            assert_eq!(make_protocol(kind).kind(), kind);
        }
    }

    #[test]
    fn byzantine_wrappers_preserve_kind() {
        let forking = make_safety(ProtocolKind::HotStuff, ByzantineStrategy::Forking, 4);
        assert_eq!(forking.kind(), ProtocolKind::HotStuff);
        let silence = make_safety(ProtocolKind::Streamlet, ByzantineStrategy::Silence, 4);
        assert_eq!(silence.kind(), ProtocolKind::Streamlet);
        let forged_vote = make_safety(ProtocolKind::HotStuff, ByzantineStrategy::ForgedVote, 4);
        assert_eq!(forged_vote.kind(), ProtocolKind::HotStuff);
        let forged_qc = make_safety(
            ProtocolKind::TwoChainHotStuff,
            ByzantineStrategy::ForgedQc,
            4,
        );
        assert_eq!(forged_qc.kind(), ProtocolKind::TwoChainHotStuff);
    }
}

//! Byzantine strategies: the two performance attacks of §IV-A plus two
//! signature-forgery attacks exercising the authenticated message path.
//!
//! The paper's pair are "challenging to detect as the attackers are not
//! violating the protocol from an outsider's view, but could damage
//! performance", and both are implemented — exactly as the paper describes —
//! by modifying only the Proposing rule of an otherwise honest protocol:
//!
//! * [`ForkingSafety`] proposes on an older ancestor so that previously
//!   proposed (but uncommitted) blocks get overwritten,
//! * [`SilenceSafety`] withholds the proposal entirely, forcing the other
//!   replicas to time out and breaking the commit rule for the tail blocks.
//!
//! The forgery pair *does* violate the protocol from an outsider's view and
//! therefore tests a different layer: the cryptographic ingress stage
//! (`bamboo_types::Authenticator`) rather than the consensus rules:
//!
//! * [`ForgedVoteSafety`] replaces each outbound vote with a flood of votes
//!   carrying invalid signatures, one minted in every replica's name — the
//!   fake quorum would certify instantly if any replica skipped verification,
//! * [`ForgedQcSafety`] proposes blocks whose justify QC claims quorum
//!   certification with fabricated signatures. The block id stays valid (it
//!   binds the QC's block and view, not its signature bytes), so only
//!   per-signer verification of the aggregate catches the forgery.

use bamboo_crypto::{AggregateSignature, KeyPair};
use bamboo_forest::BlockForest;
use bamboo_types::{Block, BlockId, NodeId, ProtocolKind, QuorumCert, View, Vote};

use crate::safety::{build_block, ProposalInput, Safety, VoteDestination};

/// A Byzantine proposer that launches the forking attack: it builds its block
/// on the deepest ancestor the wrapped protocol's voting rule still accepts,
/// overwriting the uncommitted blocks in between (Fig. 5).
///
/// All other rules (voting, state updating, commit) are delegated unchanged to
/// the wrapped protocol, so the attacker looks honest to every other replica.
pub struct ForkingSafety {
    inner: Box<dyn Safety>,
    /// Number of forking proposals actually produced (for metrics/tests).
    forks_attempted: u64,
}

impl ForkingSafety {
    /// Wraps `inner` with the forking strategy.
    pub fn new(inner: Box<dyn Safety>) -> Self {
        Self {
            inner,
            forks_attempted: 0,
        }
    }

    /// How many forking proposals this attacker has made.
    pub fn forks_attempted(&self) -> u64 {
        self.forks_attempted
    }
}

impl Safety for ForkingSafety {
    fn kind(&self) -> ProtocolKind {
        self.inner.kind()
    }
    fn voted_view(&self) -> View {
        self.inner.voted_view()
    }
    fn restore_voted_view(&mut self, view: View) {
        self.inner.restore_voted_view(view);
    }
    fn vote_destination(&self) -> VoteDestination {
        self.inner.vote_destination()
    }
    fn echo_messages(&self) -> bool {
        self.inner.echo_messages()
    }
    fn is_responsive(&self) -> bool {
        self.inner.is_responsive()
    }

    fn epoch_based(&self) -> bool {
        self.inner.epoch_based()
    }

    fn propose(&mut self, input: &ProposalInput, forest: &BlockForest) -> Option<Block> {
        // Ask the wrapped protocol how deep a fork its own voting rule would
        // still accept; fall back to honest proposing when there is no room
        // (e.g. Streamlet, or right after genesis).
        if let Some(target) = self.inner.fork_parent(forest) {
            if target != forest.high_qc().block {
                let justify = forest
                    .qc_of(target)
                    .cloned()
                    .unwrap_or_else(QuorumCert::genesis);
                if let Some(block) = build_block(input, forest, target, justify) {
                    self.forks_attempted += 1;
                    return Some(block);
                }
            }
        }
        self.inner.propose(input, forest)
    }

    fn should_vote(&mut self, block: &Block, forest: &BlockForest) -> bool {
        self.inner.should_vote(block, forest)
    }
    fn update_state(&mut self, qc: &QuorumCert, forest: &BlockForest) {
        self.inner.update_state(qc, forest)
    }
    fn try_commit(&mut self, qc: &QuorumCert, forest: &BlockForest) -> Option<BlockId> {
        self.inner.try_commit(qc, forest)
    }
    fn fork_parent(&self, forest: &BlockForest) -> Option<BlockId> {
        self.inner.fork_parent(forest)
    }
}

/// A Byzantine proposer that launches the silence attack: whenever it is the
/// leader it simply withholds the proposal until the end of the view, breaking
/// the commit rule and triggering timeouts at every honest replica (Fig. 6).
pub struct SilenceSafety {
    inner: Box<dyn Safety>,
    /// Number of proposals withheld.
    withheld: u64,
}

impl SilenceSafety {
    /// Wraps `inner` with the silence strategy.
    pub fn new(inner: Box<dyn Safety>) -> Self {
        Self { inner, withheld: 0 }
    }

    /// How many proposals this attacker has withheld.
    pub fn withheld(&self) -> u64 {
        self.withheld
    }
}

impl Safety for SilenceSafety {
    fn kind(&self) -> ProtocolKind {
        self.inner.kind()
    }
    fn voted_view(&self) -> View {
        self.inner.voted_view()
    }
    fn restore_voted_view(&mut self, view: View) {
        self.inner.restore_voted_view(view);
    }
    fn vote_destination(&self) -> VoteDestination {
        self.inner.vote_destination()
    }
    fn echo_messages(&self) -> bool {
        self.inner.echo_messages()
    }
    fn is_responsive(&self) -> bool {
        self.inner.is_responsive()
    }

    fn epoch_based(&self) -> bool {
        self.inner.epoch_based()
    }

    fn propose(&mut self, _input: &ProposalInput, _forest: &BlockForest) -> Option<Block> {
        self.withheld += 1;
        None
    }

    fn should_vote(&mut self, block: &Block, forest: &BlockForest) -> bool {
        // The attacker still votes like an honest replica; only its leadership
        // turns are wasted.
        self.inner.should_vote(block, forest)
    }
    fn update_state(&mut self, qc: &QuorumCert, forest: &BlockForest) {
        self.inner.update_state(qc, forest)
    }
    fn try_commit(&mut self, qc: &QuorumCert, forest: &BlockForest) -> Option<BlockId> {
        self.inner.try_commit(qc, forest)
    }
}

/// A Byzantine voter that floods forged votes: whenever it would send one
/// honest vote, it instead sends `n` votes for the same block, one minted in
/// every replica's name, all carrying signatures produced with a key that
/// belongs to nobody. If any honest replica accepted unverified votes, the
/// fake quorum would certify (and commit) the block instantly; with the
/// authenticated ingress stage every one of them dies at the door and the
/// attacker has merely withheld its own vote.
pub struct ForgedVoteSafety {
    inner: Box<dyn Safety>,
    nodes: usize,
    junk: KeyPair,
    /// Forged votes put on the wire so far (for metrics/tests).
    forged: u64,
}

impl ForgedVoteSafety {
    /// Wraps `inner` with the vote-forging strategy in a system of `nodes`
    /// replicas.
    pub fn new(inner: Box<dyn Safety>, nodes: usize) -> Self {
        Self {
            inner,
            nodes,
            // A key outside the validator set (ids are < nodes), so nothing it
            // signs can verify under any validator's public key.
            junk: KeyPair::from_seed(u64::MAX),
            forged: 0,
        }
    }

    /// How many forged votes this attacker has emitted.
    pub fn forged(&self) -> u64 {
        self.forged
    }
}

impl Safety for ForgedVoteSafety {
    fn kind(&self) -> ProtocolKind {
        self.inner.kind()
    }
    fn voted_view(&self) -> View {
        self.inner.voted_view()
    }
    fn restore_voted_view(&mut self, view: View) {
        self.inner.restore_voted_view(view);
    }
    fn vote_destination(&self) -> VoteDestination {
        self.inner.vote_destination()
    }
    fn echo_messages(&self) -> bool {
        self.inner.echo_messages()
    }
    fn is_responsive(&self) -> bool {
        self.inner.is_responsive()
    }

    fn epoch_based(&self) -> bool {
        self.inner.epoch_based()
    }

    fn propose(&mut self, input: &ProposalInput, forest: &BlockForest) -> Option<Block> {
        self.inner.propose(input, forest)
    }
    fn should_vote(&mut self, block: &Block, forest: &BlockForest) -> bool {
        self.inner.should_vote(block, forest)
    }
    fn update_state(&mut self, qc: &QuorumCert, forest: &BlockForest) {
        self.inner.update_state(qc, forest)
    }
    fn try_commit(&mut self, qc: &QuorumCert, forest: &BlockForest) -> Option<BlockId> {
        self.inner.try_commit(qc, forest)
    }

    fn forged_votes(&mut self, vote: &Vote) -> Option<Vec<Vote>> {
        let flood: Vec<Vote> = (0..self.nodes as u64)
            .map(|voter| Vote {
                block: vote.block,
                view: vote.view,
                voter: NodeId(voter),
                signature: self.junk.sign(&Vote::signing_bytes(vote.block, vote.view)),
            })
            .collect();
        self.forged += flood.len() as u64;
        Some(flood)
    }
}

/// A Byzantine proposer that attaches forged quorum certificates: its blocks
/// claim quorum certification of their parent via signatures minted with a
/// key outside the validator set. A replica that only counted signers would
/// accept and vote; per-signer aggregate verification rejects the proposal at
/// ingress, so the attacker's leadership views time out like a silent
/// leader's — but only *because* verification is real.
pub struct ForgedQcSafety {
    inner: Box<dyn Safety>,
    junk: KeyPair,
    /// Forged-QC proposals produced so far (for metrics/tests).
    forged: u64,
}

impl ForgedQcSafety {
    /// Wraps `inner` with the QC-forging strategy.
    pub fn new(inner: Box<dyn Safety>) -> Self {
        Self {
            inner,
            junk: KeyPair::from_seed(u64::MAX),
            forged: 0,
        }
    }

    /// How many forged-QC proposals this attacker has made.
    pub fn forged(&self) -> u64 {
        self.forged
    }
}

impl Safety for ForgedQcSafety {
    fn kind(&self) -> ProtocolKind {
        self.inner.kind()
    }
    fn voted_view(&self) -> View {
        self.inner.voted_view()
    }
    fn restore_voted_view(&mut self, view: View) {
        self.inner.restore_voted_view(view);
    }
    fn vote_destination(&self) -> VoteDestination {
        self.inner.vote_destination()
    }
    fn echo_messages(&self) -> bool {
        self.inner.echo_messages()
    }
    fn is_responsive(&self) -> bool {
        self.inner.is_responsive()
    }

    fn epoch_based(&self) -> bool {
        self.inner.epoch_based()
    }

    fn propose(&mut self, input: &ProposalInput, forest: &BlockForest) -> Option<Block> {
        let block = self.inner.propose(input, forest)?;
        if block.justify.is_genesis() {
            // Nothing to forge over the trusted genesis certificate; propose
            // honestly rather than waste the slot.
            return Some(block);
        }
        // Same claim (block, view) as the honest certificate, fabricated
        // signatures over the matching signing bytes under the real signer
        // indices. The rebuilt block keeps the honest id because the id binds
        // the justify's block and view only.
        let msg = Vote::signing_bytes(block.justify.block, block.justify.view);
        let mut signatures = AggregateSignature::new();
        for signer in block.justify.signatures.signers() {
            signatures.add(signer, self.junk.sign(&msg));
        }
        let forged_justify = QuorumCert {
            block: block.justify.block,
            view: block.justify.view,
            signatures,
        };
        self.forged += 1;
        Some(Block::new(
            block.view,
            block.height,
            block.parent,
            block.proposer,
            forged_justify,
            block.payload,
        ))
    }

    fn should_vote(&mut self, block: &Block, forest: &BlockForest) -> bool {
        self.inner.should_vote(block, forest)
    }
    fn update_state(&mut self, qc: &QuorumCert, forest: &BlockForest) {
        self.inner.update_state(qc, forest)
    }
    fn try_commit(&mut self, qc: &QuorumCert, forest: &BlockForest) -> Option<BlockId> {
        self.inner.try_commit(qc, forest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hotstuff::HotStuffSafety;
    use crate::safety::testutil::*;
    use crate::streamlet::StreamletSafety;
    use crate::twochain::TwoChainHotStuffSafety;

    /// Builds a certified chain g <- a <- b <- c and returns (forest, [a,b,c]).
    fn chain3() -> (bamboo_forest::BlockForest, Vec<BlockId>) {
        let mut forest = bamboo_forest::BlockForest::new();
        let (a, _) = extend_certified(&mut forest, BlockId::GENESIS, 1);
        let (b, _) = extend_certified(&mut forest, a, 2);
        let (c, _) = extend_certified(&mut forest, b, 3);
        (forest, vec![a, b, c])
    }

    #[test]
    fn forking_hotstuff_builds_on_grandparent_and_honest_replicas_accept() {
        let (mut forest, ids) = chain3();
        let mut attacker = ForkingSafety::new(Box::new(HotStuffSafety::new()));
        let proposal = attacker.propose(&input(4, 0), &forest).expect("proposal");
        assert_eq!(proposal.parent, ids[0], "built on a, overwriting b and c");
        assert_eq!(attacker.forks_attempted(), 1);

        // An honest HotStuff replica has only seen QCs carried inside blocks:
        // the newest QC it knows certifies `b` (it arrived inside `c`), so its
        // lock is `a` — and it therefore still votes for the forking proposal
        // built on `a`. That is exactly what makes the attack work (Fig. 5).
        let mut honest = HotStuffSafety::new();
        let qc_b = forest.qc_of(ids[1]).cloned().unwrap();
        honest.update_state(&qc_b, &forest);
        assert_eq!(honest.locked_block(), ids[0]);
        forest.insert(proposal.clone()).unwrap();
        assert!(honest.should_vote(&proposal, &forest));
    }

    #[test]
    fn forking_two_chain_overwrites_only_one_block() {
        let (forest, ids) = chain3();
        let mut attacker = ForkingSafety::new(Box::new(TwoChainHotStuffSafety::new()));
        let proposal = attacker.propose(&input(4, 0), &forest).expect("proposal");
        assert_eq!(proposal.parent, ids[1], "built on b, overwriting only c");
    }

    #[test]
    fn forking_streamlet_degenerates_to_honest_proposal() {
        let (forest, ids) = chain3();
        let mut attacker = ForkingSafety::new(Box::new(StreamletSafety::new()));
        let proposal = attacker.propose(&input(4, 0), &forest).expect("proposal");
        assert_eq!(
            proposal.parent, ids[2],
            "no fork target exists, attacker proposes honestly"
        );
        assert_eq!(attacker.forks_attempted(), 0);
    }

    #[test]
    fn silence_attacker_never_proposes_but_still_votes() {
        let (forest, ids) = chain3();
        let mut attacker = SilenceSafety::new(Box::new(HotStuffSafety::new()));
        assert!(attacker.propose(&input(4, 0), &forest).is_none());
        assert!(attacker.propose(&input(5, 0), &forest).is_none());
        assert_eq!(attacker.withheld(), 2);

        let mut forest = forest;
        let qc_c = forest.qc_of(ids[2]).cloned().unwrap();
        let honest_block = build_block(&input(6, 1), &forest, ids[2], qc_c).unwrap();
        forest.insert(honest_block.clone()).unwrap();
        assert!(attacker.should_vote(&honest_block, &forest));
    }

    #[test]
    fn forged_vote_flood_covers_every_replica_and_never_verifies() {
        use bamboo_crypto::KeyPair;
        let (forest, ids) = chain3();
        let _ = &forest;
        let mut attacker = ForgedVoteSafety::new(Box::new(HotStuffSafety::new()), 4);
        let honest = Vote::new(
            ids[2],
            bamboo_types::View(3),
            NodeId(0),
            &KeyPair::from_seed(0),
        );
        let flood = attacker.forged_votes(&honest).expect("attacker forges");
        assert_eq!(flood.len(), 4, "one forged vote per replica");
        assert_eq!(attacker.forged(), 4);
        for vote in &flood {
            let claimed_key = KeyPair::from_seed(vote.voter.as_u64()).public_key();
            assert!(
                !vote.verify(&claimed_key),
                "forged vote in {}'s name must not verify",
                vote.voter
            );
        }
    }

    #[test]
    fn honest_protocols_do_not_forge_votes() {
        use bamboo_crypto::KeyPair;
        let mut honest = HotStuffSafety::new();
        let vote = Vote::new(
            BlockId::GENESIS,
            bamboo_types::View(1),
            NodeId(0),
            &KeyPair::from_seed(0),
        );
        assert!(honest.forged_votes(&vote).is_none());
    }

    #[test]
    fn forged_qc_proposal_keeps_valid_id_but_fails_aggregate_verification() {
        let (forest, _ids) = chain3();
        let mut attacker = ForgedQcSafety::new(Box::new(HotStuffSafety::new()));
        let proposal = attacker.propose(&input(4, 0), &forest).expect("proposal");
        assert_eq!(attacker.forged(), 1);
        assert!(
            proposal.verify_id(),
            "id binds the QC's block/view, not its signatures"
        );
        assert!(!proposal.justify.is_genesis());
        let keys: Vec<bamboo_crypto::KeyPair> =
            (0..4).map(bamboo_crypto::KeyPair::from_seed).collect();
        assert!(
            !proposal
                .justify
                .verify(4, |i| keys.get(i as usize).map(|k| k.public_key())),
            "forged justify must fail per-signer verification"
        );
    }

    #[test]
    fn forged_qc_degenerates_to_honest_over_genesis() {
        let mut forest = bamboo_forest::BlockForest::new();
        // Only genesis exists: the inner protocol justifies with the genesis
        // QC, which cannot be meaningfully forged.
        let _ = &mut forest;
        let mut attacker = ForgedQcSafety::new(Box::new(HotStuffSafety::new()));
        let proposal = attacker.propose(&input(1, 0), &forest).expect("proposal");
        assert!(proposal.justify.is_genesis());
        assert_eq!(attacker.forged(), 0);
    }

    #[test]
    fn wrappers_delegate_commit_rules() {
        let (forest, ids) = chain3();
        let qc_c = forest.qc_of(ids[2]).cloned().unwrap();
        let mut forking = ForkingSafety::new(Box::new(HotStuffSafety::new()));
        let mut silence = SilenceSafety::new(Box::new(HotStuffSafety::new()));
        assert_eq!(forking.try_commit(&qc_c, &forest), Some(ids[0]));
        assert_eq!(silence.try_commit(&qc_c, &forest), Some(ids[0]));
    }
}

//! The `Safety` trait: the paper's Proposing / Voting / State-Updating /
//! Commit rules behind a single interface.

use bamboo_forest::BlockForest;
use bamboo_types::{Block, BlockId, NodeId, ProtocolKind, QuorumCert, Transaction, View, Vote};

/// Where a replica sends its vote after accepting a proposal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VoteDestination {
    /// Send the vote to the leader of the *next* view (HotStuff family).
    NextLeader,
    /// Broadcast the vote to every replica (Streamlet).
    Broadcast,
}

/// Everything the Proposing rule may consult when building a block.
#[derive(Clone, Debug)]
pub struct ProposalInput {
    /// The view the proposal is for.
    pub view: View,
    /// The proposing replica.
    pub proposer: NodeId,
    /// The batch of transactions pulled from the mempool.
    pub payload: Vec<Transaction>,
}

/// The four protocol-specific rules of a chained-BFT protocol.
///
/// Implementations are deliberately small (a few hundred lines each, matching
/// the paper's "each protocol is around 300 LoC" observation) because all the
/// heavy machinery lives in the shared modules.
pub trait Safety: Send {
    /// Which protocol this is (used for labeling and protocol-specific runner
    /// behaviour such as wait-for-timeout after view changes).
    fn kind(&self) -> ProtocolKind;

    /// Where votes are sent.
    fn vote_destination(&self) -> VoteDestination {
        VoteDestination::NextLeader
    }

    /// Whether the protocol echoes proposals and votes to all replicas
    /// (Streamlet does; this is what gives it cubic message complexity).
    fn echo_messages(&self) -> bool {
        false
    }

    /// Whether the protocol is optimistically responsive, i.e. a correct
    /// leader can make progress at network speed without waiting for the
    /// maximum network delay after a view change (§II-B). Used by the
    /// responsiveness experiment (Fig. 15).
    fn is_responsive(&self) -> bool {
        false
    }

    /// Whether the protocol's views are *epochs* in the Streamlet sense:
    /// fixed-duration synchronous rounds that must each cover the maximum
    /// network delay, rather than view numbers that advance as fast as
    /// certificates form. The replica's opt-in `synchronous_epochs` mode
    /// paces the leaders of epoch-based protocols accordingly; the default
    /// responsive approximation advances epochs on QCs.
    fn epoch_based(&self) -> bool {
        false
    }

    /// **Proposing rule** — build the block for `input.view`. Returns `None`
    /// if the proposer declines to propose (the silence attack does this).
    fn propose(&mut self, input: &ProposalInput, forest: &BlockForest) -> Option<Block>;

    /// **Voting rule** — decide whether to vote for `block`. Implementations
    /// must also maintain whatever "last voted view" state they need; the
    /// replica calls this at most once per received proposal.
    fn should_vote(&mut self, block: &Block, forest: &BlockForest) -> bool;

    /// **State-updating rule** — called whenever a new QC is observed (either
    /// received directly, assembled from votes, or carried inside a block).
    fn update_state(&mut self, qc: &QuorumCert, forest: &BlockForest);

    /// **Commit rule** — called after `update_state` with the same QC; returns
    /// the id of the highest block that can now be committed (its entire
    /// prefix commits with it), or `None` if the rule is not met.
    fn try_commit(&mut self, qc: &QuorumCert, forest: &BlockForest) -> Option<BlockId>;

    /// Hook used by the forking attack: the deepest ancestor of the certified
    /// tip that the attacker can build on while still having honest replicas
    /// vote for the proposal. `None` means the protocol's voting rule leaves
    /// no room to fork (the attacker then behaves like an honest proposer).
    fn fork_parent(&self, forest: &BlockForest) -> Option<BlockId> {
        let _ = forest;
        None
    }

    /// The protocol's durable vote watermark: the highest view this replica
    /// has voted in (for height-voting protocols such as OHS, the height is
    /// mapped into the view slot — the watermark semantics are identical).
    /// The replica persists this in a `SafetyRecord` immediately before each
    /// vote leaves the process, so a durable restart can restore it via
    /// [`Safety::restore_voted_view`] and never double-vote.
    fn voted_view(&self) -> View;

    /// Restores the vote watermark after a durable restart: the replica must
    /// never again vote at or below `view` (or the mapped height for
    /// height-voting protocols). Implementations take the max with their
    /// current watermark — restoring can only tighten the rule.
    fn restore_voted_view(&mut self, view: View);

    /// Hook used by signature-forging attackers: given the honest vote the
    /// replica just produced, returns the votes to put on the wire *instead*.
    /// `None` (the default, and every honest protocol) sends the honest vote
    /// unchanged. The replica keeps processing its own honest vote locally
    /// either way, so the hook can only corrupt outbound traffic — which is
    /// exactly the surface the authenticated ingress stage must cover.
    fn forged_votes(&mut self, vote: &Vote) -> Option<Vec<Vote>> {
        let _ = vote;
        None
    }
}

/// Shared helper implementing the common happy-path Proposing rule: build a
/// block on top of `parent`, carrying `justify` (normally the QC certifying
/// the parent) and the given payload.
///
/// Returns `None` if `parent` is not in the forest.
pub fn build_block(
    input: &ProposalInput,
    forest: &BlockForest,
    parent: BlockId,
    justify: QuorumCert,
) -> Option<Block> {
    let parent_block = forest.get(parent)?;
    Some(Block::new(
        input.view,
        parent_block.height.next(),
        parent,
        input.proposer,
        justify,
        input.payload.clone(),
    ))
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Helpers shared by the protocol unit tests.

    use super::*;
    use bamboo_crypto::KeyPair;
    use bamboo_types::{SimTime, Vote};

    /// Builds a deterministic quorum certificate for `block` at `view` signed
    /// by replicas 0..3 (quorum for n = 4).
    pub fn qc_for(block: BlockId, view: View) -> QuorumCert {
        let keys: Vec<KeyPair> = (0..3).map(KeyPair::from_seed).collect();
        let votes: Vec<Vote> = keys
            .iter()
            .enumerate()
            .map(|(i, kp)| Vote::new(block, view, NodeId(i as u64), kp))
            .collect();
        QuorumCert::from_votes(block, view, &votes)
    }

    /// Extends `parent` with a block proposed in `view`, inserts it into the
    /// forest and returns its id.
    pub fn extend(forest: &mut BlockForest, parent: BlockId, view: u64) -> BlockId {
        let parent_block = forest.get(parent).expect("parent in forest").clone();
        let block = Block::new(
            View(view),
            parent_block.height.next(),
            parent,
            NodeId(view % 4),
            QuorumCert::genesis(),
            vec![Transaction::new(NodeId(7), view, 4, SimTime::ZERO)],
        );
        let id = block.id;
        forest.insert(block).expect("insert");
        id
    }

    /// Extends and immediately certifies a block; returns `(id, qc)`.
    pub fn extend_certified(
        forest: &mut BlockForest,
        parent: BlockId,
        view: u64,
    ) -> (BlockId, QuorumCert) {
        let id = extend(forest, parent, view);
        let qc = qc_for(id, View(view));
        forest.register_qc(qc.clone()).expect("register qc");
        (id, qc)
    }

    /// A standard proposal input.
    pub fn input(view: u64, proposer: u64) -> ProposalInput {
        ProposalInput {
            view: View(view),
            proposer: NodeId(proposer),
            payload: vec![Transaction::new(NodeId(proposer), view, 8, SimTime::ZERO)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::*;
    use super::*;
    use bamboo_forest::BlockForest;

    #[test]
    fn build_block_links_to_parent_and_carries_payload() {
        let mut forest = BlockForest::new();
        let (a, qc_a) = extend_certified(&mut forest, BlockId::GENESIS, 1);
        let inp = input(2, 1);
        let block = build_block(&inp, &forest, a, qc_a.clone()).expect("block");
        assert_eq!(block.parent, a);
        assert_eq!(block.height.as_u64(), 2);
        assert_eq!(block.justify, qc_a);
        assert_eq!(block.view, View(2));
        assert_eq!(block.payload.len(), 1);
    }

    #[test]
    fn build_block_fails_for_unknown_parent() {
        let forest = BlockForest::new();
        let ghost = BlockId(bamboo_crypto::Digest::of(b"missing"));
        assert!(build_block(&input(1, 0), &forest, ghost, QuorumCert::genesis()).is_none());
    }
}

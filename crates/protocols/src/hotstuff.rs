//! Chained HotStuff (§II-B of the paper).
//!
//! State variables:
//! * `locked` — the head of the highest two-chain (`lBlock`),
//! * `last_voted_view` — the highest view voted in (`lvView`),
//! * the highest QC (`hQC`) is tracked by the shared [`BlockForest`].
//!
//! Rules:
//! * **Proposing**: build on the block certified by `hQC`.
//! * **Voting**: vote iff the block's view is newer than `lvView` and the
//!   block extends the locked block *or* its parent carries a higher view
//!   than the locked block.
//! * **State updating**: on a new QC, the head of the highest two-chain
//!   becomes the locked block.
//! * **Commit**: a three-chain (three consecutively linked certified blocks)
//!   commits its head.

use bamboo_forest::BlockForest;
use bamboo_types::{Block, BlockId, Height, ProtocolKind, QuorumCert, View};

use crate::safety::{build_block, ProposalInput, Safety, VoteDestination};

/// Chained HotStuff safety rules.
#[derive(Clone, Debug)]
pub struct HotStuffSafety {
    locked: BlockId,
    locked_height: Height,
    locked_view: View,
    last_voted_view: View,
}

impl Default for HotStuffSafety {
    fn default() -> Self {
        Self::new()
    }
}

impl HotStuffSafety {
    /// Creates the initial state: locked on genesis, nothing voted yet.
    pub fn new() -> Self {
        Self {
            locked: BlockId::GENESIS,
            locked_height: Height::GENESIS,
            locked_view: View::GENESIS,
            last_voted_view: View::GENESIS,
        }
    }

    /// The currently locked block (exposed for tests and metrics).
    pub fn locked_block(&self) -> BlockId {
        self.locked
    }

    /// The last view this replica voted in.
    pub fn last_voted_view(&self) -> View {
        self.last_voted_view
    }

    fn update_lock(&mut self, id: BlockId, height: Height, view: View) {
        if height > self.locked_height {
            self.locked = id;
            self.locked_height = height;
            self.locked_view = view;
        }
    }
}

impl Safety for HotStuffSafety {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::HotStuff
    }

    fn voted_view(&self) -> View {
        self.last_voted_view
    }

    fn restore_voted_view(&mut self, view: View) {
        self.last_voted_view = self.last_voted_view.max(view);
    }

    fn vote_destination(&self) -> VoteDestination {
        VoteDestination::NextLeader
    }

    fn is_responsive(&self) -> bool {
        true
    }

    fn propose(&mut self, input: &ProposalInput, forest: &BlockForest) -> Option<Block> {
        let high_qc = forest.high_qc().clone();
        build_block(input, forest, high_qc.block, high_qc)
    }

    fn should_vote(&mut self, block: &Block, forest: &BlockForest) -> bool {
        if block.view <= self.last_voted_view {
            return false;
        }
        let extends_lock = forest.extends(block.parent, self.locked);
        let parent_view = forest
            .get(block.parent)
            .map(|p| p.view)
            .unwrap_or(block.justify.view);
        let higher_view = parent_view > self.locked_view;
        if extends_lock || higher_view {
            self.last_voted_view = block.view;
            true
        } else {
            false
        }
    }

    fn update_state(&mut self, qc: &QuorumCert, forest: &BlockForest) {
        // The newly certified block together with its certified direct parent
        // forms a two-chain; its head (the parent) becomes the lock.
        let Some(certified) = forest.get(qc.block) else {
            return;
        };
        if let Some(parent) = forest.get(certified.parent) {
            if forest.is_certified(parent.id) {
                let (id, height, view) = (parent.id, parent.height, parent.view);
                self.update_lock(id, height, view);
            }
        }
    }

    fn try_commit(&mut self, qc: &QuorumCert, forest: &BlockForest) -> Option<BlockId> {
        // A three-chain ending at the newly certified block commits its head.
        let tip = forest.get(qc.block)?;
        let parent = forest.get(tip.parent)?;
        let grandparent = forest.get(parent.parent)?;
        if forest.is_certified(tip.id)
            && forest.is_certified(parent.id)
            && forest.is_certified(grandparent.id)
            && !grandparent.is_genesis()
        {
            Some(grandparent.id)
        } else {
            None
        }
    }

    fn fork_parent(&self, forest: &BlockForest) -> Option<BlockId> {
        // The attacker overwrites the two uncommitted tail blocks: it builds on
        // the grandparent of the certified tip, which is (at least) the honest
        // replicas' locked block, so the proposal still passes the voting
        // rule (Fig. 5 of the paper).
        let tip = forest.highest_certified_block();
        let target = forest.ancestor(tip.id, 2)?;
        if forest.is_certified(target.id) {
            Some(target.id)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::safety::testutil::*;

    #[test]
    fn proposes_on_high_qc() {
        let mut forest = bamboo_forest::BlockForest::new();
        let (a, _) = extend_certified(&mut forest, BlockId::GENESIS, 1);
        let (b, qc_b) = extend_certified(&mut forest, a, 2);
        let mut hs = HotStuffSafety::new();
        let block = hs.propose(&input(3, 3), &forest).expect("proposal");
        assert_eq!(block.parent, b);
        assert_eq!(block.justify, qc_b);
        assert_eq!(block.height.as_u64(), 3);
    }

    #[test]
    fn votes_once_per_view_and_tracks_last_voted() {
        let mut forest = bamboo_forest::BlockForest::new();
        let (a, qc_a) = extend_certified(&mut forest, BlockId::GENESIS, 1);
        let mut hs = HotStuffSafety::new();
        let block = build_block(&input(2, 2), &forest, a, qc_a).unwrap();
        forest.insert(block.clone()).unwrap();
        assert!(hs.should_vote(&block, &forest));
        assert_eq!(hs.last_voted_view(), View(2));
        assert!(!hs.should_vote(&block, &forest), "no double voting");
    }

    #[test]
    fn refuses_blocks_conflicting_with_lock() {
        let mut forest = bamboo_forest::BlockForest::new();
        // Build and certify a chain g <- a <- b <- c so the lock moves to b.
        let (a, _) = extend_certified(&mut forest, BlockId::GENESIS, 1);
        let (b, _) = extend_certified(&mut forest, a, 2);
        let (c, qc_c) = extend_certified(&mut forest, b, 3);
        let mut hs = HotStuffSafety::new();
        hs.update_state(&qc_c, &forest);
        assert_eq!(hs.locked_block(), b);

        // A proposal branching from genesis (conflicting with the lock, with a
        // stale justify) must be rejected...
        let stale = build_block(
            &input(4, 0),
            &forest,
            BlockId::GENESIS,
            QuorumCert::genesis(),
        )
        .unwrap();
        forest.insert(stale.clone()).unwrap();
        assert!(!hs.should_vote(&stale, &forest));

        // ...but a proposal extending the certified tip is accepted.
        let good = build_block(&input(5, 1), &forest, c, qc_c.clone()).unwrap();
        forest.insert(good.clone()).unwrap();
        assert!(hs.should_vote(&good, &forest));
    }

    #[test]
    fn lock_advances_to_head_of_highest_two_chain() {
        let mut forest = bamboo_forest::BlockForest::new();
        let (a, qc_a) = extend_certified(&mut forest, BlockId::GENESIS, 1);
        let mut hs = HotStuffSafety::new();
        hs.update_state(&qc_a, &forest);
        assert_eq!(
            hs.locked_block(),
            BlockId::GENESIS,
            "one-chain does not lock"
        );
        let (_b, qc_b) = extend_certified(&mut forest, a, 2);
        hs.update_state(&qc_b, &forest);
        assert_eq!(hs.locked_block(), a, "two-chain locks its head");
    }

    #[test]
    fn three_chain_commits_its_head() {
        let mut forest = bamboo_forest::BlockForest::new();
        let (a, qc_a) = extend_certified(&mut forest, BlockId::GENESIS, 1);
        let (b, qc_b) = extend_certified(&mut forest, a, 2);
        let mut hs = HotStuffSafety::new();
        assert_eq!(hs.try_commit(&qc_a, &forest), None);
        assert_eq!(
            hs.try_commit(&qc_b, &forest),
            None,
            "two-chain is not enough"
        );
        let (_c, qc_c) = extend_certified(&mut forest, b, 3);
        assert_eq!(hs.try_commit(&qc_c, &forest), Some(a));
    }

    #[test]
    fn gap_in_certification_blocks_commit() {
        let mut forest = bamboo_forest::BlockForest::new();
        let (a, _) = extend_certified(&mut forest, BlockId::GENESIS, 1);
        // b is *not* certified.
        let b = extend(&mut forest, a, 2);
        let (_c, qc_c) = extend_certified(&mut forest, b, 3);
        let mut hs = HotStuffSafety::new();
        assert_eq!(hs.try_commit(&qc_c, &forest), None);
    }

    #[test]
    fn fork_parent_targets_grandparent_of_tip() {
        let mut forest = bamboo_forest::BlockForest::new();
        let (a, _) = extend_certified(&mut forest, BlockId::GENESIS, 1);
        let (b, _) = extend_certified(&mut forest, a, 2);
        let (_c, _) = extend_certified(&mut forest, b, 3);
        let hs = HotStuffSafety::new();
        assert_eq!(hs.fork_parent(&forest), Some(a));
    }

    #[test]
    fn is_responsive_and_uses_next_leader_votes() {
        let hs = HotStuffSafety::new();
        assert!(hs.is_responsive());
        assert_eq!(hs.vote_destination(), VoteDestination::NextLeader);
        assert!(!hs.echo_messages());
    }
}

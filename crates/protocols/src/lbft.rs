//! LBFT-style safety rules (framework extension).
//!
//! LBFT ("Leaderless Byzantine fault tolerant consensus", Niu & Feng 2020) is
//! listed in the paper as one of the protocols prototyped on Bamboo. Its full
//! DAG-based leaderless design is outside the scope of the evaluation; what
//! Bamboo exercises is its *rule surface*: every replica's vote is broadcast
//! (as in Streamlet) while the commit rule is a two-chain (as in 2CHS). This
//! module provides that rule combination so the framework's extension point is
//! demonstrably generic; it is not part of the paper's headline comparison and
//! we document it as an approximation in DESIGN.md.

use bamboo_forest::BlockForest;
use bamboo_types::{Block, BlockId, ProtocolKind, QuorumCert, View};

use crate::safety::{build_block, ProposalInput, Safety, VoteDestination};

/// LBFT-style safety rules: broadcast votes + two-chain commit.
#[derive(Clone, Debug)]
pub struct LbftSafety {
    last_voted_view: View,
}

impl Default for LbftSafety {
    fn default() -> Self {
        Self::new()
    }
}

impl LbftSafety {
    /// Creates the initial state.
    pub fn new() -> Self {
        Self {
            last_voted_view: View::GENESIS,
        }
    }
}

impl Safety for LbftSafety {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Lbft
    }

    fn voted_view(&self) -> View {
        self.last_voted_view
    }

    fn restore_voted_view(&mut self, view: View) {
        self.last_voted_view = self.last_voted_view.max(view);
    }

    fn vote_destination(&self) -> VoteDestination {
        VoteDestination::Broadcast
    }

    fn echo_messages(&self) -> bool {
        false
    }

    fn is_responsive(&self) -> bool {
        false
    }

    fn propose(&mut self, input: &ProposalInput, forest: &BlockForest) -> Option<Block> {
        let tip = forest.highest_certified_block().id;
        let justify = forest
            .qc_of(tip)
            .cloned()
            .unwrap_or_else(QuorumCert::genesis);
        build_block(input, forest, tip, justify)
    }

    fn should_vote(&mut self, block: &Block, forest: &BlockForest) -> bool {
        if block.view <= self.last_voted_view {
            return false;
        }
        let Some(parent) = forest.get(block.parent) else {
            return false;
        };
        if !forest.is_certified(parent.id) {
            return false;
        }
        if parent.height < forest.highest_certified_block().height {
            return false;
        }
        self.last_voted_view = block.view;
        true
    }

    fn update_state(&mut self, _qc: &QuorumCert, _forest: &BlockForest) {}

    fn try_commit(&mut self, qc: &QuorumCert, forest: &BlockForest) -> Option<BlockId> {
        let tip = forest.get(qc.block)?;
        let parent = forest.get(tip.parent)?;
        if forest.is_certified(tip.id) && forest.is_certified(parent.id) && !parent.is_genesis() {
            Some(parent.id)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::safety::testutil::*;

    #[test]
    fn broadcast_votes_and_two_chain_commit() {
        let mut forest = bamboo_forest::BlockForest::new();
        let (a, _) = extend_certified(&mut forest, BlockId::GENESIS, 1);
        let (_b, qc_b) = extend_certified(&mut forest, a, 2);
        let mut lbft = LbftSafety::new();
        assert_eq!(lbft.vote_destination(), VoteDestination::Broadcast);
        assert_eq!(lbft.try_commit(&qc_b, &forest), Some(a));
    }

    #[test]
    fn votes_follow_longest_certified_chain() {
        let mut forest = bamboo_forest::BlockForest::new();
        let (a, qc_a) = extend_certified(&mut forest, BlockId::GENESIS, 1);
        let mut lbft = LbftSafety::new();
        let good = build_block(&input(2, 2), &forest, a, qc_a).unwrap();
        forest.insert(good.clone()).unwrap();
        assert!(lbft.should_vote(&good, &forest));
        let stale = build_block(
            &input(3, 3),
            &forest,
            BlockId::GENESIS,
            QuorumCert::genesis(),
        )
        .unwrap();
        forest.insert(stale.clone()).unwrap();
        assert!(!lbft.should_vote(&stale, &forest));
    }

    #[test]
    fn proposes_on_certified_tip() {
        let mut forest = bamboo_forest::BlockForest::new();
        let (a, _) = extend_certified(&mut forest, BlockId::GENESIS, 1);
        let mut lbft = LbftSafety::new();
        let block = lbft.propose(&input(2, 1), &forest).unwrap();
        assert_eq!(block.parent, a);
    }
}

//! Checkpoint snapshots: a compact binary encoding of one replica's durable
//! consensus state — the committed [`Ledger`] plus the uncommitted
//! [`BlockForest`] subtree above it.
//!
//! The forest part uses a flattened-tree encoding: vertices are emitted in
//! pre-order as `(block, optional QC, child count)` entries, and the decoder
//! rebuilds the tree with an explicit stack of `(parent, remaining children)`
//! frames — no recursion, O(n) both ways. The ledger part is the flat
//! committed history with its commit-time metadata, so a decoded ledger
//! reproduces [`Ledger::fingerprint`] byte-for-byte; the round trip is the
//! integrity check checkpointing and state transfer rely on.
//!
//! The format is deliberately binary (length-prefixed, big-endian, version
//! tagged): digests and signatures are 32 raw bytes, which the in-tree JSON
//! value (f64 numbers) cannot hold losslessly. Every block id is re-derived
//! from the decoded header and payload and compared against the encoded id,
//! so a corrupted or tampered snapshot fails decoding instead of poisoning
//! the forest.

use bamboo_types::wire::{
    decode_block, decode_opt_qc, decode_qc, encode_block, encode_opt_qc, encode_qc, put_u16,
    put_u32, put_u64,
};
use bamboo_types::{Block, BlockId, Height, QuorumCert, SharedBlock, SimTime, View, WireCursor};

use crate::forest::BlockForest;
use crate::ledger::{CommittedBlock, Ledger};

/// Format magic + version. Bump the version for any layout change; decoders
/// reject unknown versions instead of misparsing.
const MAGIC: &[u8; 4] = b"BSNP";
const VERSION: u16 = 1;

/// Why a snapshot failed to decode.
///
/// Snapshots are read through the workspace-wide canonical codec
/// ([`bamboo_types::wire`]), so the snapshot error *is* the wire error: the
/// same truncation / corruption taxonomy covers checkpoint images, log
/// records and transport frames.
pub type SnapshotError = bamboo_types::WireError;

/// A decoded snapshot: the replica state a checkpoint restores.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// The committed history, commit metadata included.
    pub ledger: Ledger,
    /// The forest rooted at the committed head, uncommitted subtree attached.
    pub forest: BlockForest,
}

impl Snapshot {
    /// Height of the committed head the snapshot was taken at.
    pub fn committed_height(&self) -> Height {
        self.forest.committed_head().height
    }

    /// Encodes `forest` + `ledger` into the versioned binary form.
    ///
    /// Only the subtree reachable from the committed head is captured:
    /// orphans (unresolvable by definition) and fork remnants disconnected
    /// by pruning are not part of the durable state.
    pub fn encode(forest: &BlockForest, ledger: &Ledger) -> Vec<u8> {
        let mut out = Vec::with_capacity(1024);
        out.extend_from_slice(MAGIC);
        put_u16(&mut out, VERSION);
        let stats = forest.stats();
        put_u64(&mut out, stats.committed_blocks);
        put_u64(&mut out, stats.forked_blocks);

        put_u32(&mut out, ledger.len() as u32);
        for committed in ledger.iter() {
            encode_block(&mut out, &committed.block);
            put_u64(&mut out, committed.committed_in_view.as_u64());
            put_u64(&mut out, committed.committed_at.as_nanos());
        }

        // Flattened pre-order of the uncommitted subtree. The root (committed
        // head) block itself lives in the ledger (or is genesis), so only its
        // QC and child count are emitted here.
        let root = forest.committed_head().id;
        encode_opt_qc(&mut out, forest.qc_of(root));
        let mut entries: Vec<u8> = Vec::new();
        let mut count = 0u32;
        let mut stack: Vec<BlockId> = Vec::new();
        put_u32(&mut out, forest.children(root).len() as u32);
        stack.extend(forest.children(root).iter().rev());
        while let Some(id) = stack.pop() {
            let block = forest.get_shared(id).expect("child links are internal");
            encode_block(&mut entries, block);
            encode_opt_qc(&mut entries, forest.qc_of(id));
            put_u32(&mut entries, forest.children(id).len() as u32);
            count += 1;
            stack.extend(forest.children(id).iter().rev());
        }
        put_u32(&mut out, count);
        out.extend_from_slice(&entries);

        encode_qc(&mut out, forest.high_qc());
        out
    }

    /// Decodes a snapshot, verifying every block id and the committed chain
    /// linkage along the way.
    ///
    /// # Errors
    ///
    /// Returns the [`SnapshotError`] describing the first structural or
    /// integrity violation.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        let mut cur = WireCursor::new(bytes);
        if cur.take(4)? != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = cur.u16()?;
        if version != VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let committed_count = cur.u64()?;
        let forked_count = cur.u64()?;

        let ledger_len = cur.u32()? as usize;
        let mut committed = Vec::with_capacity(ledger_len.min(65_536));
        for _ in 0..ledger_len {
            let block = SharedBlock::new(decode_block(&mut cur)?);
            let committed_in_view = View(cur.u64()?);
            let committed_at = SimTime(cur.u64()?);
            committed.push(CommittedBlock {
                block,
                committed_in_view,
                committed_at,
            });
        }
        let ledger = Ledger::restore(committed);
        if !ledger.verify_chain() {
            return Err(SnapshotError::Corrupt("ledger is not a linked chain"));
        }

        let root: SharedBlock = match ledger.len() {
            0 => SharedBlock::new(Block::genesis()),
            n => ledger.get(n - 1).expect("n > 0").block.clone(),
        };
        let root_id = root.id;
        let mut forest = BlockForest::restore(root, committed_count, forked_count);
        if let Some(root_qc) = decode_opt_qc(&mut cur)? {
            if root_qc.block != root_id && !root_qc.is_genesis() {
                return Err(SnapshotError::Corrupt("root QC certifies another block"));
            }
            let _ = forest.register_qc(root_qc);
        }

        // Explicit-stack rebuild of the pre-order tree: each frame is the
        // parent id plus how many of its children are still to be read.
        let root_children = cur.u32()?;
        let entry_count = cur.u32()?;
        let mut stack: Vec<(BlockId, u32)> = vec![(root_id, root_children)];
        let mut read = 0u32;
        while let Some((parent, remaining)) = stack.pop() {
            if remaining == 0 {
                continue;
            }
            stack.push((parent, remaining - 1));
            let block = decode_block(&mut cur)?;
            if block.parent != parent {
                return Err(SnapshotError::Corrupt("tree entry out of pre-order"));
            }
            let id = block.id;
            let qc = decode_opt_qc(&mut cur)?;
            let children = cur.u32()?;
            read += 1;
            if read > entry_count {
                return Err(SnapshotError::Corrupt("more tree entries than declared"));
            }
            if forest.insert(block).is_err() {
                return Err(SnapshotError::Corrupt("tree entry rejected by forest"));
            }
            if let Some(qc) = qc {
                if forest.register_qc(qc).is_err() {
                    return Err(SnapshotError::Corrupt("QC for absent block"));
                }
            }
            stack.push((id, children));
        }
        if read != entry_count {
            return Err(SnapshotError::Corrupt("fewer tree entries than declared"));
        }

        forest.observe_qc(decode_qc(&mut cur)?);
        Ok(Snapshot { ledger, forest })
    }
}

// ---- log record codecs ------------------------------------------------------
//
// The durable segment log (`bamboo-core`'s `storage` module) frames opaque
// payloads; these functions give it the exact encoding the snapshot uses for
// its own blocks and QCs, so one canonical byte layout serves both the
// checkpoint image and the per-record log that extends it.

/// Encodes one committed-ledger entry (block + commit metadata) as a
/// standalone log-record payload.
pub fn encode_committed_record(committed: &CommittedBlock) -> Vec<u8> {
    let mut out = Vec::with_capacity(256);
    encode_block(&mut out, &committed.block);
    put_u64(&mut out, committed.committed_in_view.as_u64());
    put_u64(&mut out, committed.committed_at.as_nanos());
    out
}

/// Decodes a payload produced by [`encode_committed_record`]. Trailing bytes
/// are an integrity violation, not slack: log records are exact.
///
/// # Errors
///
/// Returns the [`SnapshotError`] describing the first structural or
/// integrity violation.
pub fn decode_committed_record(bytes: &[u8]) -> Result<CommittedBlock, SnapshotError> {
    let mut cur = WireCursor::new(bytes);
    let block = SharedBlock::new(decode_block(&mut cur)?);
    let committed_in_view = View(cur.u64()?);
    let committed_at = SimTime(cur.u64()?);
    if !cur.done() {
        return Err(SnapshotError::Corrupt("trailing bytes after record"));
    }
    Ok(CommittedBlock {
        block,
        committed_in_view,
        committed_at,
    })
}

/// Encodes a quorum certificate as a standalone log-record payload.
pub fn encode_qc_record(qc: &QuorumCert) -> Vec<u8> {
    let mut out = Vec::with_capacity(128);
    encode_qc(&mut out, qc);
    out
}

/// Decodes a payload produced by [`encode_qc_record`], rejecting trailing
/// bytes.
///
/// # Errors
///
/// Returns the [`SnapshotError`] describing the first structural or
/// integrity violation.
pub fn decode_qc_record(bytes: &[u8]) -> Result<QuorumCert, SnapshotError> {
    let mut cur = WireCursor::new(bytes);
    let qc = decode_qc(&mut cur)?;
    if !cur.done() {
        return Err(SnapshotError::Corrupt("trailing bytes after record"));
    }
    Ok(qc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bamboo_crypto::KeyPair;
    use bamboo_types::{NodeId, Transaction, Vote};

    fn certify(forest: &mut BlockForest, id: BlockId, view: u64) {
        let kps: Vec<KeyPair> = (0..4).map(KeyPair::from_seed).collect();
        let votes: Vec<Vote> = (0..3)
            .map(|i| Vote::new(id, View(view), NodeId(i), &kps[i as usize]))
            .collect();
        forest
            .register_qc(QuorumCert::from_votes(id, View(view), &votes))
            .unwrap();
    }

    fn child_of(forest: &BlockForest, parent: BlockId, view: u64, txs: u64) -> Block {
        let parent_block = forest.get(parent).unwrap();
        Block::new(
            View(view),
            parent_block.height.next(),
            parent,
            NodeId(view % 4),
            QuorumCert::genesis(),
            (0..txs)
                .map(|i| Transaction::new(NodeId(9), view * 100 + i, 8, SimTime(view)))
                .collect(),
        )
    }

    /// Builds a (forest, ledger) pair with a committed chain of `committed`
    /// blocks, a live uncommitted suffix and a pruned fork, mirroring what a
    /// running replica holds.
    fn replica_state(committed: u64) -> (BlockForest, Ledger) {
        let mut forest = BlockForest::new();
        let mut ledger = Ledger::new();
        let mut head = BlockId::GENESIS;
        for view in 1..=committed {
            let block = child_of(&forest, head, view, 3);
            head = block.id;
            forest.insert(block).unwrap();
            certify(&mut forest, head, view);
        }
        if committed > 0 {
            let newly = forest.commit(head).unwrap();
            ledger.append(newly, View(committed + 2), SimTime(committed * 1000));
            forest.prune_to_committed();
        }
        // Uncommitted live suffix: two chained blocks plus a fork, one QC.
        let a = child_of(&forest, head, committed + 1, 2);
        let a_id = a.id;
        forest.insert(a).unwrap();
        let b = child_of(&forest, a_id, committed + 2, 1);
        let b_id = b.id;
        forest.insert(b).unwrap();
        let f = child_of(&forest, head, committed + 3, 1);
        forest.insert(f).unwrap();
        certify(&mut forest, a_id, committed + 1);
        assert!(forest.high_qc().block == a_id || committed == 0);
        let _ = b_id;
        (forest, ledger)
    }

    #[test]
    fn round_trip_preserves_fingerprint_and_structure() {
        let (forest, ledger) = replica_state(5);
        let bytes = Snapshot::encode(&forest, &ledger);
        let snapshot = Snapshot::decode(&bytes).expect("round trip");
        assert_eq!(snapshot.ledger.fingerprint(), ledger.fingerprint());
        assert_eq!(
            snapshot.ledger.chain_fingerprint(),
            ledger.chain_fingerprint()
        );
        assert_eq!(snapshot.ledger.committed_txs(), ledger.committed_txs());
        assert_eq!(
            snapshot.forest.committed_head().id,
            forest.committed_head().id
        );
        assert_eq!(snapshot.forest.high_qc(), forest.high_qc());
        assert_eq!(snapshot.forest.stats(), forest.stats());
        // Re-encoding the decoded state is byte-identical: the encoding is
        // canonical.
        assert_eq!(Snapshot::encode(&snapshot.forest, &snapshot.ledger), bytes);
    }

    #[test]
    fn empty_state_round_trips() {
        let forest = BlockForest::new();
        let ledger = Ledger::new();
        let bytes = Snapshot::encode(&forest, &ledger);
        let snapshot = Snapshot::decode(&bytes).expect("empty round trip");
        assert!(snapshot.ledger.is_empty());
        assert!(snapshot.forest.committed_head().is_genesis());
        assert_eq!(snapshot.committed_height(), Height::GENESIS);
    }

    #[test]
    fn property_randomized_forests_round_trip() {
        // Deterministic splitmix64 so the "random" forests replay identically.
        let mut state: u64 = 0x1234_5678_9abc_def0;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        for trial in 0..20u64 {
            let committed = next() % 8;
            let (mut forest, ledger) = replica_state(committed);
            // Grow a random uncommitted shape: attach blocks to random
            // existing vertices, certify a random subset.
            let mut ids: Vec<BlockId> = vec![forest.committed_head().id];
            for extra in 0..(next() % 12) {
                let parent = ids[(next() % ids.len() as u64) as usize];
                let view = 100 + trial * 50 + extra;
                let block = child_of(&forest, parent, view, next() % 4);
                let id = block.id;
                forest.insert(block).unwrap();
                ids.push(id);
                if next() % 2 == 0 {
                    certify(&mut forest, id, view);
                }
            }
            let bytes = Snapshot::encode(&forest, &ledger);
            let snapshot = Snapshot::decode(&bytes)
                .unwrap_or_else(|e| panic!("trial {trial} failed to decode: {e}"));
            assert_eq!(snapshot.ledger.fingerprint(), ledger.fingerprint());
            assert_eq!(snapshot.forest.stats(), forest.stats(), "trial {trial}");
            assert_eq!(snapshot.forest.high_qc(), forest.high_qc());
            for id in &ids {
                assert!(snapshot.forest.contains(*id), "trial {trial} lost {id}");
                assert_eq!(
                    snapshot.forest.is_certified(*id),
                    forest.is_certified(*id),
                    "trial {trial} certification of {id}"
                );
            }
            assert_eq!(Snapshot::encode(&snapshot.forest, &snapshot.ledger), bytes);
        }
    }

    #[test]
    fn truncation_and_corruption_are_rejected() {
        let (forest, ledger) = replica_state(3);
        let bytes = Snapshot::encode(&forest, &ledger);
        // Every strict prefix fails cleanly (never panics, never half-parses
        // into an Ok).
        for cut in 0..bytes.len() {
            assert!(
                Snapshot::decode(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
        // Flip a byte inside the first committed block's id (right after the
        // 30-byte header: magic, version, two counters, ledger length): the id
        // re-derivation must catch it. Signature bytes are deliberately *not*
        // integrity-checked here — a forged signature fails verification
        // downstream instead.
        let mut tampered = bytes.clone();
        tampered[30] ^= 0xff;
        assert!(
            Snapshot::decode(&tampered).is_err(),
            "tampered block id decoded"
        );
        // Wrong magic and unknown version are typed errors.
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert_eq!(
            Snapshot::decode(&bad_magic).err(),
            Some(SnapshotError::BadMagic)
        );
        let mut bad_version = bytes;
        bad_version[5] = 9;
        assert!(matches!(
            Snapshot::decode(&bad_version),
            Err(SnapshotError::UnsupportedVersion(_))
        ));
    }
}

//! The committed ledger: the linear history handed off by the block forest.
//!
//! Finalized blocks "can be removed from memory to persistent storage for
//! garbage collection" (§II-A). The [`Ledger`] plays that role in the
//! simulation: it records every committed block together with commit-time
//! metadata needed by the chain-growth-rate and block-interval metrics.

use bamboo_crypto::{Digest, Sha256};
use bamboo_types::{BlockId, SharedBlock, SimTime, View};

/// A committed block plus commit metadata.
#[derive(Clone, Debug, PartialEq)]
pub struct CommittedBlock {
    /// The block itself (shared with the forest / message path — committing
    /// never copies the payload).
    pub block: SharedBlock,
    /// The view in which the block became committed (not the view it was
    /// proposed in) — the difference is the paper's *block interval*.
    pub committed_in_view: View,
    /// Simulated time of the commit.
    pub committed_at: SimTime,
}

impl CommittedBlock {
    /// Number of views between proposal and commit.
    pub fn block_interval(&self) -> u64 {
        self.committed_in_view
            .as_u64()
            .saturating_sub(self.block.view.as_u64())
    }
}

/// The linear committed history of one replica.
#[derive(Clone, Debug, Default)]
pub struct Ledger {
    blocks: Vec<CommittedBlock>,
    committed_txs: u64,
}

impl Ledger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends newly committed blocks (oldest first). Accepts owned blocks or
    /// [`SharedBlock`] handles; the latter are stored without copying.
    pub fn append<I>(&mut self, blocks: I, committed_in_view: View, committed_at: SimTime)
    where
        I: IntoIterator,
        I::Item: Into<SharedBlock>,
    {
        for block in blocks {
            let block: SharedBlock = block.into();
            self.committed_txs += block.payload.len() as u64;
            self.blocks.push(CommittedBlock {
                block,
                committed_in_view,
                committed_at,
            });
        }
    }

    /// Total number of committed blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Returns true if nothing has been committed yet.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Total number of committed transactions.
    pub fn committed_txs(&self) -> u64 {
        self.committed_txs
    }

    /// The id of the last committed block, or genesis.
    pub fn head(&self) -> BlockId {
        self.blocks
            .last()
            .map(|c| c.block.id)
            .unwrap_or(BlockId::GENESIS)
    }

    /// Iterates over committed blocks oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &CommittedBlock> {
        self.blocks.iter()
    }

    /// The committed block at position `index` (0 = first committed).
    pub fn get(&self, index: usize) -> Option<&CommittedBlock> {
        self.blocks.get(index)
    }

    /// Average block interval (views from proposal to commit) over the whole
    /// ledger — the paper's BI metric (§IV-B2).
    pub fn average_block_interval(&self) -> f64 {
        if self.blocks.is_empty() {
            return 0.0;
        }
        self.blocks
            .iter()
            .map(|c| c.block_interval() as f64)
            .sum::<f64>()
            / self.blocks.len() as f64
    }

    /// Verifies the ledger forms a single hash-linked chain and that heights
    /// are strictly increasing; used by integration tests as the cross-replica
    /// consistency check.
    pub fn verify_chain(&self) -> bool {
        let mut prev_id = BlockId::GENESIS;
        let mut prev_height = 0u64;
        for committed in &self.blocks {
            if committed.block.parent != prev_id {
                return false;
            }
            if committed.block.height.as_u64() != prev_height + 1 {
                return false;
            }
            prev_id = committed.block.id;
            prev_height = committed.block.height.as_u64();
        }
        true
    }

    /// A digest over the entire committed history: every block id, proposal
    /// view, commit view, commit time and payload transaction id, in order.
    /// Two ledgers fingerprint equal iff they committed byte-identical
    /// histories — the golden-replay determinism tests pin engine rewrites
    /// against fingerprints recorded from the previous engine.
    pub fn fingerprint(&self) -> Digest {
        let mut hasher = Sha256::new();
        hasher.update(b"bamboo-ledger-v1");
        for committed in &self.blocks {
            hasher.update(committed.block.id.0.as_bytes());
            hasher.update(&committed.block.view.as_u64().to_be_bytes());
            hasher.update(&committed.committed_in_view.as_u64().to_be_bytes());
            hasher.update(&committed.committed_at.as_nanos().to_be_bytes());
            for tx in &committed.block.payload {
                hasher.update(tx.id.0.as_bytes());
            }
        }
        Digest::from_bytes(hasher.finalize())
    }

    /// A digest over the chain-intrinsic part of the first `len` committed
    /// blocks: block id, proposal view and payload transaction ids — but
    /// *not* the commit-time metadata [`Ledger::fingerprint`] also hashes.
    ///
    /// Commit view and commit time are observer-local (a replica that caught
    /// up through state transfer commits the same blocks at later simulated
    /// times), so [`Ledger::fingerprint`] can never match across replicas.
    /// The chain fingerprint is the cross-replica agreement oracle: two
    /// replicas whose prefixes chain-fingerprint equal committed the same
    /// blocks carrying the same transactions in the same order.
    pub fn chain_fingerprint_prefix(&self, len: usize) -> Digest {
        let mut hasher = Sha256::new();
        hasher.update(b"bamboo-ledger-chain-v1");
        for committed in self.blocks.iter().take(len) {
            hasher.update(committed.block.id.0.as_bytes());
            hasher.update(&committed.block.view.as_u64().to_be_bytes());
            for tx in &committed.block.payload {
                hasher.update(tx.id.0.as_bytes());
            }
        }
        Digest::from_bytes(hasher.finalize())
    }

    /// [`Ledger::chain_fingerprint_prefix`] over the whole ledger.
    pub fn chain_fingerprint(&self) -> Digest {
        self.chain_fingerprint_prefix(self.blocks.len())
    }

    /// Rebuilds a ledger from decoded committed blocks (snapshot restore).
    /// The committed-transaction counter is recomputed from the payloads.
    pub fn restore(blocks: Vec<CommittedBlock>) -> Self {
        let committed_txs = blocks.iter().map(|c| c.block.payload.len() as u64).sum();
        Self {
            blocks,
            committed_txs,
        }
    }

    /// Returns true if `other` and `self` agree on a common committed prefix
    /// (one may simply be ahead of the other).
    pub fn consistent_with(&self, other: &Ledger) -> bool {
        self.blocks
            .iter()
            .zip(other.blocks.iter())
            .all(|(a, b)| a.block.id == b.block.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bamboo_types::{Block, Height, NodeId, QuorumCert, Transaction};

    fn chain(len: u64) -> Vec<Block> {
        let mut blocks = Vec::new();
        let mut parent = BlockId::GENESIS;
        for i in 1..=len {
            let block = Block::new(
                View(i),
                Height(i),
                parent,
                NodeId(0),
                QuorumCert::genesis(),
                vec![Transaction::new(NodeId(1), i, 0, SimTime::ZERO)],
            );
            parent = block.id;
            blocks.push(block);
        }
        blocks
    }

    #[test]
    fn append_tracks_blocks_and_transactions() {
        let mut ledger = Ledger::new();
        ledger.append(chain(3), View(5), SimTime(100));
        assert_eq!(ledger.len(), 3);
        assert_eq!(ledger.committed_txs(), 3);
        assert!(ledger.verify_chain());
        assert!(!ledger.is_empty());
    }

    #[test]
    fn block_interval_measures_commit_lag() {
        let mut ledger = Ledger::new();
        ledger.append(chain(2), View(4), SimTime(100));
        // Block proposed in view 1 committed in view 4 -> interval 3.
        assert_eq!(ledger.get(0).unwrap().block_interval(), 3);
        assert_eq!(ledger.get(1).unwrap().block_interval(), 2);
        assert!((ledger.average_block_interval() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn verify_chain_detects_broken_links() {
        let mut ledger = Ledger::new();
        let mut blocks = chain(3);
        blocks.remove(1); // break the chain
        ledger.append(blocks, View(4), SimTime(0));
        assert!(!ledger.verify_chain());
    }

    #[test]
    fn prefix_consistency() {
        let blocks = chain(4);
        let mut a = Ledger::new();
        let mut b = Ledger::new();
        a.append(blocks.clone(), View(6), SimTime(0));
        b.append(blocks[..2].to_vec(), View(4), SimTime(0));
        assert!(a.consistent_with(&b));
        assert!(b.consistent_with(&a));

        let mut c = Ledger::new();
        let mut other = chain(2);
        other.reverse();
        c.append(other, View(4), SimTime(0));
        assert!(!a.consistent_with(&c));
    }

    #[test]
    fn empty_ledger_defaults() {
        let ledger = Ledger::new();
        assert!(ledger.is_empty());
        assert_eq!(ledger.head(), BlockId::GENESIS);
        assert_eq!(ledger.average_block_interval(), 0.0);
        assert!(ledger.verify_chain());
    }
}

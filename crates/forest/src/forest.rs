//! The block forest data structure.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;

use bamboo_types::{Block, BlockId, Height, QuorumCert, SharedBlock};

/// Errors returned by [`BlockForest`] operations.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ForestError {
    /// The block's parent is not (yet) part of the forest.
    UnknownParent(BlockId),
    /// The block's height is not `parent height + 1`.
    InvalidHeight {
        /// Offending block.
        block: BlockId,
        /// Height carried by the block.
        height: Height,
        /// Expected height (parent height + 1).
        expected: Height,
    },
    /// The block is already present.
    Duplicate(BlockId),
    /// The referenced block does not exist.
    UnknownBlock(BlockId),
    /// A commit was requested for a block that conflicts with the already
    /// committed chain — this indicates a safety violation and is surfaced
    /// loudly instead of being ignored.
    ConflictingCommit {
        /// The block whose commit was requested.
        block: BlockId,
        /// The current committed head.
        committed_head: BlockId,
    },
    /// The block lies below the pruning horizon and was discarded.
    BelowPruneHorizon(BlockId),
}

impl fmt::Display for ForestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForestError::UnknownParent(id) => write!(f, "unknown parent block {id}"),
            ForestError::InvalidHeight {
                block,
                height,
                expected,
            } => write!(
                f,
                "block {block} carries height {height} but its parent implies {expected}"
            ),
            ForestError::Duplicate(id) => write!(f, "block {id} is already in the forest"),
            ForestError::UnknownBlock(id) => write!(f, "block {id} is not in the forest"),
            ForestError::ConflictingCommit {
                block,
                committed_head,
            } => write!(
                f,
                "commit of {block} conflicts with committed head {committed_head}"
            ),
            ForestError::BelowPruneHorizon(id) => {
                write!(f, "block {id} is below the pruning horizon")
            }
        }
    }
}

impl std::error::Error for ForestError {}

/// Aggregate statistics about the forest, used by metrics and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ForestStats {
    /// Number of blocks currently stored (excluding orphans).
    pub stored_blocks: usize,
    /// Number of orphan blocks waiting for their parent.
    pub orphans: usize,
    /// Height of the highest stored block.
    pub max_height: u64,
    /// Height of the committed head.
    pub committed_height: u64,
    /// Number of committed blocks so far (excluding genesis).
    pub committed_blocks: u64,
    /// Number of blocks that were pruned away as members of losing forks.
    pub forked_blocks: u64,
    /// Number of orphans evicted because the orphan buffer hit its cap.
    pub orphans_evicted: u64,
}

#[derive(Clone, Debug)]
struct Vertex {
    block: SharedBlock,
    qc: Option<QuorumCert>,
    children: Vec<BlockId>,
}

/// The block forest: every block the replica knows about, fork structure,
/// certification status, the committed main chain and pruning.
///
/// Blocks are stored as [`SharedBlock`] handles: inserting a block received
/// off the wire, committing a chain suffix, and handing forked blocks back to
/// the mempool all move `Arc` pointers instead of copying payloads.
#[derive(Clone, Debug)]
pub struct BlockForest {
    vertices: HashMap<BlockId, Vertex>,
    by_height: BTreeMap<u64, Vec<BlockId>>,
    /// Blocks whose parent has not arrived yet, keyed by the missing parent.
    /// Bounded by `orphan_cap`: a Byzantine peer flooding unresolvable
    /// orphans evicts its own flood, not the replica's memory.
    orphans: HashMap<BlockId, Vec<SharedBlock>>,
    orphan_cap: usize,
    orphans_evicted: u64,
    /// Highest QC observed so far (`hQC` in the paper's state variables).
    high_qc: QuorumCert,
    /// Block certified by `high_qc`'s view with the greatest height.
    highest_certified: BlockId,
    committed_head: BlockId,
    committed_count: u64,
    forked_count: u64,
    prune_horizon: Height,
}

impl Default for BlockForest {
    fn default() -> Self {
        Self::new()
    }
}

/// Default bound on buffered orphan blocks. Generous for any honest
/// reordering window (a few in-flight proposals) while capping what a
/// Byzantine orphan flood can pin in memory.
pub const DEFAULT_ORPHAN_CAP: usize = 1024;

impl BlockForest {
    /// Creates a forest containing only the genesis block (which is committed
    /// and certified by convention).
    pub fn new() -> Self {
        let genesis = SharedBlock::new(Block::genesis());
        let genesis_id = genesis.id;
        let mut vertices = HashMap::new();
        vertices.insert(
            genesis_id,
            Vertex {
                block: genesis,
                qc: Some(QuorumCert::genesis()),
                children: Vec::new(),
            },
        );
        let mut by_height = BTreeMap::new();
        by_height.insert(0, vec![genesis_id]);
        Self {
            vertices,
            by_height,
            orphans: HashMap::new(),
            orphan_cap: DEFAULT_ORPHAN_CAP,
            orphans_evicted: 0,
            high_qc: QuorumCert::genesis(),
            highest_certified: genesis_id,
            committed_head: genesis_id,
            committed_count: 0,
            forked_count: 0,
            prune_horizon: Height::GENESIS,
        }
    }

    /// Rebuilds a forest from a snapshot: `root` becomes the committed head
    /// (and the pruning horizon), with the given commit/fork counters carried
    /// over. Uncommitted descendants are re-inserted through
    /// [`BlockForest::insert`] / [`BlockForest::register_qc`] afterwards, so
    /// every structural invariant is re-established by the normal paths.
    pub fn restore(root: SharedBlock, committed_count: u64, forked_count: u64) -> Self {
        if root.is_genesis() {
            let mut forest = Self::new();
            forest.committed_count = committed_count;
            forest.forked_count = forked_count;
            return forest;
        }
        let root_id = root.id;
        let root_height = root.height;
        let mut vertices = HashMap::new();
        // Pruning always spares the genesis vertex (it anchors genesis-view
        // QCs), so a restored forest carries it too — disconnected from the
        // root, exactly like a long-running forest after deep pruning.
        vertices.insert(
            BlockId::GENESIS,
            Vertex {
                block: SharedBlock::new(Block::genesis()),
                qc: Some(QuorumCert::genesis()),
                children: Vec::new(),
            },
        );
        vertices.insert(
            root_id,
            Vertex {
                block: root,
                qc: None,
                children: Vec::new(),
            },
        );
        let mut by_height = BTreeMap::new();
        by_height.insert(0, vec![BlockId::GENESIS]);
        by_height.insert(root_height.as_u64(), vec![root_id]);
        Self {
            vertices,
            by_height,
            orphans: HashMap::new(),
            orphan_cap: DEFAULT_ORPHAN_CAP,
            orphans_evicted: 0,
            high_qc: QuorumCert::genesis(),
            highest_certified: root_id,
            committed_head: root_id,
            committed_count,
            forked_count,
            prune_horizon: root_height,
        }
    }

    /// Overrides the orphan-buffer capacity (tests and tuning).
    pub fn set_orphan_cap(&mut self, cap: usize) {
        self.orphan_cap = cap.max(1);
    }

    /// Number of orphan blocks currently buffered.
    pub fn orphan_count(&self) -> usize {
        self.orphans.values().map(Vec::len).sum()
    }

    /// The buffered orphan closest to the committed chain (minimum height,
    /// ties broken by block id) — the best candidate to anchor a state-sync
    /// request, since its missing ancestry is the longest gap.
    pub fn oldest_orphan(&self) -> Option<&SharedBlock> {
        self.orphans
            .values()
            .flatten()
            .min_by_key(|b| (b.height, b.id))
    }

    /// Evicts orphans while the buffer exceeds its cap. The victim is the
    /// orphan *furthest* above the committed head (maximum height, ties by
    /// id): the most speculative block, and the deterministic choice every
    /// replay reproduces.
    fn enforce_orphan_cap(&mut self) {
        while self.orphan_count() > self.orphan_cap {
            let Some(victim) = self
                .orphans
                .values()
                .flatten()
                .max_by_key(|b| (b.height, b.id))
                .map(|b| b.id)
            else {
                return;
            };
            self.orphans.retain(|_, blocks| {
                blocks.retain(|b| b.id != victim);
                !blocks.is_empty()
            });
            self.orphans_evicted += 1;
        }
    }

    /// Returns true if `id` is stored in the forest (orphans excluded).
    pub fn contains(&self, id: BlockId) -> bool {
        self.vertices.contains_key(&id)
    }

    /// Looks a block up by id.
    pub fn get(&self, id: BlockId) -> Option<&Block> {
        self.vertices.get(&id).map(|v| &*v.block)
    }

    /// Looks a block up by id, returning the shared handle so callers can
    /// retain the block without copying its payload.
    pub fn get_shared(&self, id: BlockId) -> Option<&SharedBlock> {
        self.vertices.get(&id).map(|v| &v.block)
    }

    /// Returns the ids of the children of `id`.
    pub fn children(&self, id: BlockId) -> &[BlockId] {
        self.vertices
            .get(&id)
            .map(|v| v.children.as_slice())
            .unwrap_or(&[])
    }

    /// Returns the QC certifying `id`, if the block is certified.
    pub fn qc_of(&self, id: BlockId) -> Option<&QuorumCert> {
        self.vertices.get(&id).and_then(|v| v.qc.as_ref())
    }

    /// Returns true if the block is certified (a *one-chain* in HotStuff
    /// terminology, *notarized* in Streamlet terminology).
    pub fn is_certified(&self, id: BlockId) -> bool {
        self.vertices
            .get(&id)
            .map(|v| v.qc.is_some())
            .unwrap_or(false)
    }

    /// The highest QC observed so far.
    pub fn high_qc(&self) -> &QuorumCert {
        &self.high_qc
    }

    /// The certified block of greatest height (ties broken by view).
    pub fn highest_certified_block(&self) -> &Block {
        &self.vertices[&self.highest_certified].block
    }

    /// Shared handle to the certified block of greatest height.
    pub fn highest_certified_shared(&self) -> &SharedBlock {
        &self.vertices[&self.highest_certified].block
    }

    /// The committed head block.
    pub fn committed_head(&self) -> &Block {
        &self.vertices[&self.committed_head].block
    }

    /// Current pruning horizon: blocks strictly below this height are gone.
    pub fn prune_horizon(&self) -> Height {
        self.prune_horizon
    }

    /// Inserts a block.
    ///
    /// Accepts either an owned [`Block`] or an already-shared
    /// [`SharedBlock`]; passing the shared handle (e.g. the one carried by a
    /// proposal message) stores the block without copying its payload.
    ///
    /// Blocks whose parent is unknown are buffered as orphans and attached
    /// automatically once the parent arrives; the call still returns
    /// [`ForestError::UnknownParent`] so callers can decide whether to fetch
    /// the parent.
    ///
    /// # Errors
    ///
    /// * [`ForestError::Duplicate`] if the block is already stored,
    /// * [`ForestError::BelowPruneHorizon`] if it is older than the prune cut,
    /// * [`ForestError::InvalidHeight`] if its height is not parent + 1,
    /// * [`ForestError::UnknownParent`] if the parent is missing (buffered).
    pub fn insert(&mut self, block: impl Into<SharedBlock>) -> Result<(), ForestError> {
        let block: SharedBlock = block.into();
        if block.is_genesis() || self.vertices.contains_key(&block.id) {
            return Err(ForestError::Duplicate(block.id));
        }
        if block.height <= self.prune_horizon && self.prune_horizon > Height::GENESIS {
            return Err(ForestError::BelowPruneHorizon(block.id));
        }
        let parent_id = block.parent;
        let parent_height = match self.vertices.get(&parent_id) {
            Some(parent) => parent.block.height,
            None => {
                self.orphans.entry(parent_id).or_default().push(block);
                self.enforce_orphan_cap();
                return Err(ForestError::UnknownParent(parent_id));
            }
        };
        if block.height != parent_height.next() {
            return Err(ForestError::InvalidHeight {
                block: block.id,
                height: block.height,
                expected: parent_height.next(),
            });
        }
        let id = block.id;
        let height = block.height.as_u64();
        self.vertices.insert(
            id,
            Vertex {
                block,
                qc: None,
                children: Vec::new(),
            },
        );
        self.vertices
            .get_mut(&parent_id)
            .expect("parent checked above")
            .children
            .push(id);
        self.by_height.entry(height).or_default().push(id);

        // Attach any orphans that were waiting for this block.
        if let Some(waiting) = self.orphans.remove(&id) {
            for orphan in waiting {
                // Ignore errors from stale orphans (duplicates, bad heights).
                let _ = self.insert(orphan);
            }
        }
        Ok(())
    }

    /// Records a quorum certificate for a block already in the forest and
    /// updates the high-QC bookkeeping.
    ///
    /// # Errors
    ///
    /// Returns [`ForestError::UnknownBlock`] if the certified block is not
    /// stored (the caller should retry once the block arrives).
    pub fn register_qc(&mut self, qc: QuorumCert) -> Result<(), ForestError> {
        let vertex = self
            .vertices
            .get_mut(&qc.block)
            .ok_or(ForestError::UnknownBlock(qc.block))?;
        let certified = (vertex.block.height, vertex.block.view, qc.block);
        let newly_certified = vertex.qc.is_none();
        if newly_certified {
            vertex.qc = Some(qc.clone());
        }
        if qc.view > self.high_qc.view {
            self.high_qc = qc;
        }
        // Incremental max-tracking: a block can only become the highest
        // certified block the moment its first QC lands, so comparing against
        // the current best is enough — no vertex scan, O(1) per QC.
        if newly_certified {
            let best = &self.vertices[&self.highest_certified].block;
            if (certified.0, certified.1) > (best.height, best.view) {
                self.highest_certified = certified.2;
            }
        }
        Ok(())
    }

    /// Adopts `qc` as the high-QC if it is newer, without requiring the
    /// certified block to be stored. State-transfer responses may carry a tip
    /// QC whose block arrives only with the next live proposal; the replica
    /// still must not propose or timeout with an older high-QC.
    pub fn observe_qc(&mut self, qc: QuorumCert) {
        if qc.view > self.high_qc.view {
            self.high_qc = qc;
        }
    }

    /// Recomputes `highest_certified` by scanning all vertices. Only needed
    /// after pruning removes the tracked block (a cold path); every hot-path
    /// update happens incrementally in [`BlockForest::register_qc`].
    fn rescan_highest_certified(&mut self) {
        // The id is part of the key so ties on (height, view) resolve
        // deterministically instead of following HashMap iteration order —
        // replays of the same seed must reproduce the same tip.
        if let Some((id, _)) = self
            .vertices
            .iter()
            .filter(|(_, v)| v.qc.is_some())
            .max_by_key(|(id, v)| (v.block.height, v.block.view, **id))
        {
            self.highest_certified = *id;
        } else {
            self.highest_certified = BlockId::GENESIS;
        }
    }

    /// Returns true if `ancestor` is an ancestor of (or equal to) `descendant`
    /// following parent links.
    pub fn extends(&self, descendant: BlockId, ancestor: BlockId) -> bool {
        let mut cursor = descendant;
        loop {
            if cursor == ancestor {
                return true;
            }
            match self.vertices.get(&cursor) {
                Some(v) if !v.block.is_genesis() => cursor = v.block.parent,
                _ => return false,
            }
        }
    }

    /// Walks up from `id` and returns the ancestor at distance `steps`
    /// (0 = the block itself, 1 = parent, ...).
    pub fn ancestor(&self, id: BlockId, steps: usize) -> Option<&Block> {
        let mut cursor = self.vertices.get(&id)?;
        for _ in 0..steps {
            if cursor.block.is_genesis() {
                return None;
            }
            cursor = self.vertices.get(&cursor.block.parent)?;
        }
        Some(&cursor.block)
    }

    /// Returns the chain of blocks from `ancestor` (exclusive) down to `id`
    /// (inclusive), ordered from oldest to newest. Returns `None` if `id` does
    /// not extend `ancestor`.
    pub fn path_from(&self, ancestor: BlockId, id: BlockId) -> Option<Vec<&Block>> {
        self.shared_path_from(ancestor, id)
            .map(|path| path.into_iter().map(|b| &**b).collect())
    }

    /// Like [`BlockForest::path_from`] but yields the shared handles, so
    /// callers (e.g. [`BlockForest::commit`]) can retain the chain without
    /// copying payloads.
    pub fn shared_path_from(&self, ancestor: BlockId, id: BlockId) -> Option<Vec<&SharedBlock>> {
        let mut path = VecDeque::new();
        let mut cursor = id;
        loop {
            if cursor == ancestor {
                return Some(path.into_iter().collect());
            }
            let vertex = self.vertices.get(&cursor)?;
            if vertex.block.is_genesis() {
                return None;
            }
            path.push_front(&vertex.block);
            cursor = vertex.block.parent;
        }
    }

    /// HotStuff-style chain predicate: starting at `tip` and walking parent
    /// links, counts how many consecutive blocks (including `tip`) are
    /// certified *and* connected by direct parent links. A return value of
    /// `k >= 3` means `tip` closes a three-chain whose head is
    /// `self.ancestor(tip, k - 1)`.
    pub fn certified_chain_length(&self, tip: BlockId) -> usize {
        let mut length = 0usize;
        let mut cursor = tip;
        loop {
            match self.vertices.get(&cursor) {
                Some(v) if v.qc.is_some() => {
                    length += 1;
                    if v.block.is_genesis() {
                        return length;
                    }
                    cursor = v.block.parent;
                }
                _ => return length,
            }
        }
    }

    /// Streamlet-style predicate: returns the head of a chain of `k` blocks
    /// ending at `tip` that are certified, connected by direct parent links
    /// *and* were proposed in consecutive views. Returns `None` if no such
    /// chain exists.
    pub fn consecutive_view_chain(&self, tip: BlockId, k: usize) -> Option<&Block> {
        if k == 0 {
            return None;
        }
        let mut blocks = Vec::with_capacity(k);
        let mut cursor = tip;
        for _ in 0..k {
            let vertex = self.vertices.get(&cursor)?;
            vertex.qc.as_ref()?;
            blocks.push(&vertex.block);
            cursor = vertex.block.parent;
        }
        for pair in blocks.windows(2) {
            let child = pair[0];
            let parent = pair[1];
            if child.view.as_u64() != parent.view.as_u64() + 1 {
                return None;
            }
        }
        Some(blocks[k - 1])
    }

    /// Commits `id` and its uncommitted ancestors. Returns shared handles to
    /// the newly committed blocks ordered oldest-first — no payload is copied.
    ///
    /// # Errors
    ///
    /// * [`ForestError::UnknownBlock`] if `id` is not stored,
    /// * [`ForestError::ConflictingCommit`] if `id` does not extend the
    ///   current committed head (a safety violation).
    pub fn commit(&mut self, id: BlockId) -> Result<Vec<SharedBlock>, ForestError> {
        if !self.vertices.contains_key(&id) {
            return Err(ForestError::UnknownBlock(id));
        }
        if !self.extends(id, self.committed_head) {
            return Err(ForestError::ConflictingCommit {
                block: id,
                committed_head: self.committed_head,
            });
        }
        if id == self.committed_head {
            return Ok(Vec::new());
        }
        let newly: Vec<SharedBlock> = self
            .shared_path_from(self.committed_head, id)
            .expect("extends() checked above")
            .into_iter()
            .cloned()
            .collect();
        self.committed_head = id;
        self.committed_count += newly.len() as u64;
        Ok(newly)
    }

    /// Prunes every block strictly below `height` that is not an ancestor of
    /// the committed head, plus the committed prefix itself (which is assumed
    /// to have been handed to the [`crate::Ledger`] already). Returns the
    /// *forked* blocks removed — blocks that were overwritten by the committed
    /// chain — so their transactions can be returned to the mempool, matching
    /// Bamboo's behaviour under the forking attack.
    pub fn prune_to(&mut self, height: Height) -> Vec<SharedBlock> {
        if height <= self.prune_horizon {
            return Vec::new();
        }
        let mut forked = Vec::new();
        // `(removed id, its parent)` pairs for the child-link surgery below.
        let mut removed: Vec<(BlockId, BlockId)> = Vec::new();
        let cut: Vec<u64> = self
            .by_height
            .range(..height.as_u64())
            .map(|(h, _)| *h)
            .collect();
        for h in cut {
            let Some(ids) = self.by_height.remove(&h) else {
                continue;
            };
            for id in ids {
                // Keep blocks on the committed path reachable until their
                // height is passed by the committed head, then drop them too;
                // the ledger owns the committed history.
                let on_committed_path = self.extends(self.committed_head, id);
                if id != self.committed_head && !id.is_genesis() {
                    if let Some(vertex) = self.vertices.remove(&id) {
                        removed.push((id, vertex.block.parent));
                        if !on_committed_path && !vertex.block.is_genesis() {
                            forked.push(vertex.block);
                        }
                    }
                } else {
                    // Re-index blocks we keep so later prunes revisit them.
                    self.by_height.entry(h).or_default().push(id);
                }
            }
        }
        // Child-link surgery: only parents of removed vertices can hold a
        // dangling reference, so touch exactly those instead of rebuilding a
        // live-set and filtering every vertex in the forest.
        for (id, parent) in removed {
            if let Some(parent_vertex) = self.vertices.get_mut(&parent) {
                if let Some(pos) = parent_vertex.children.iter().position(|c| *c == id) {
                    parent_vertex.children.remove(pos);
                }
            }
        }
        // The highest certified block normally sits at or above the committed
        // head and survives every prune; if a certified losing fork was the
        // tracked maximum, fall back to a rescan (cold path).
        if !self.vertices.contains_key(&self.highest_certified) {
            self.rescan_highest_certified();
        }
        // Orphans below the horizon can never be attached any more.
        self.orphans.retain(|_, blocks| {
            blocks.retain(|b| b.height > height);
            !blocks.is_empty()
        });
        self.forked_count += forked.len() as u64;
        self.prune_horizon = height;
        forked
    }

    /// Convenience wrapper: prune everything below the committed head.
    pub fn prune_to_committed(&mut self) -> Vec<SharedBlock> {
        let height = self.committed_head().height;
        self.prune_to(height)
    }

    /// The block on the committed chain at `height`, if it exists and has not
    /// been pruned. Cross-replica consistency checks compare these hashes.
    pub fn committed_block_at(&self, height: Height) -> Option<&Block> {
        let ids = self.by_height.get(&height.as_u64())?;
        ids.iter()
            .map(|id| &*self.vertices[id].block)
            .find(|b| self.extends(self.committed_head, b.id))
    }

    /// Returns forest statistics.
    pub fn stats(&self) -> ForestStats {
        ForestStats {
            stored_blocks: self.vertices.len(),
            orphans: self.orphans.values().map(Vec::len).sum(),
            max_height: self
                .by_height
                .keys()
                .next_back()
                .copied()
                .unwrap_or_default(),
            committed_height: self.committed_head().height.as_u64(),
            committed_blocks: self.committed_count,
            forked_blocks: self.forked_count,
            orphans_evicted: self.orphans_evicted,
        }
    }

    /// Iterates over all stored blocks (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &Block> {
        self.vertices.values().map(|v| &*v.block)
    }

    /// Number of blocks currently stored.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Returns true if only genesis is stored.
    pub fn is_empty(&self) -> bool {
        self.vertices.len() <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bamboo_crypto::KeyPair;
    use bamboo_types::SimTime;
    use bamboo_types::{NodeId, Transaction, View, Vote};

    /// Builds a child of `parent` proposed in `view` and inserts it.
    fn add_child(forest: &mut BlockForest, parent: BlockId, view: u64) -> BlockId {
        let parent_block = forest.get(parent).unwrap().clone();
        let block = Block::new(
            View(view),
            parent_block.height.next(),
            parent,
            NodeId(view % 4),
            QuorumCert::genesis(),
            vec![Transaction::new(NodeId(9), view, 8, SimTime::ZERO)],
        );
        let id = block.id;
        forest.insert(block).unwrap();
        id
    }

    fn certify(forest: &mut BlockForest, id: BlockId, view: u64) {
        let kps: Vec<KeyPair> = (0..4).map(KeyPair::from_seed).collect();
        let votes: Vec<Vote> = (0..3)
            .map(|i| Vote::new(id, View(view), NodeId(i), &kps[i as usize]))
            .collect();
        forest
            .register_qc(QuorumCert::from_votes(id, View(view), &votes))
            .unwrap();
    }

    #[test]
    fn new_forest_contains_committed_genesis() {
        let forest = BlockForest::new();
        assert!(forest.contains(BlockId::GENESIS));
        assert!(forest.is_certified(BlockId::GENESIS));
        assert_eq!(forest.committed_head().id, BlockId::GENESIS);
        assert!(forest.is_empty());
    }

    #[test]
    fn insert_builds_parent_child_links() {
        let mut forest = BlockForest::new();
        let a = add_child(&mut forest, BlockId::GENESIS, 1);
        let b = add_child(&mut forest, a, 2);
        assert_eq!(forest.children(BlockId::GENESIS), &[a]);
        assert_eq!(forest.children(a), &[b]);
        assert!(forest.extends(b, BlockId::GENESIS));
        assert!(forest.extends(b, a));
        assert!(!forest.extends(a, b));
        assert_eq!(forest.len(), 3);
    }

    #[test]
    fn duplicate_and_bad_height_are_rejected() {
        let mut forest = BlockForest::new();
        let a = add_child(&mut forest, BlockId::GENESIS, 1);
        let dup = forest.get(a).unwrap().clone();
        assert_eq!(forest.insert(dup), Err(ForestError::Duplicate(a)));

        let parent = forest.get(a).unwrap().clone();
        let bad = Block::new(
            View(2),
            Height(9),
            a,
            NodeId(0),
            QuorumCert::genesis(),
            vec![],
        );
        assert_eq!(
            forest.insert(bad),
            Err(ForestError::InvalidHeight {
                block: Block::compute_id(
                    View(2),
                    Height(9),
                    a,
                    NodeId(0),
                    &QuorumCert::genesis(),
                    &[]
                ),
                height: Height(9),
                expected: parent.height.next(),
            })
        );
    }

    #[test]
    fn orphans_are_attached_when_parent_arrives() {
        let mut forest = BlockForest::new();
        let parent = Block::new(
            View(1),
            Height(1),
            BlockId::GENESIS,
            NodeId(0),
            QuorumCert::genesis(),
            vec![],
        );
        let child = Block::new(
            View(2),
            Height(2),
            parent.id,
            NodeId(1),
            QuorumCert::genesis(),
            vec![],
        );
        let child_id = child.id;
        assert_eq!(
            forest.insert(child),
            Err(ForestError::UnknownParent(parent.id))
        );
        assert_eq!(forest.stats().orphans, 1);
        forest.insert(parent).unwrap();
        assert!(forest.contains(child_id), "orphan attached after parent");
        assert_eq!(forest.stats().orphans, 0);
    }

    #[test]
    fn certified_chain_length_counts_direct_certified_ancestry() {
        let mut forest = BlockForest::new();
        let a = add_child(&mut forest, BlockId::GENESIS, 1);
        let b = add_child(&mut forest, a, 2);
        let c = add_child(&mut forest, b, 3);
        assert_eq!(forest.certified_chain_length(c), 0);
        certify(&mut forest, a, 1);
        certify(&mut forest, b, 2);
        assert_eq!(forest.certified_chain_length(b), 3, "genesis + a + b");
        assert_eq!(forest.certified_chain_length(c), 0, "c not certified");
        certify(&mut forest, c, 3);
        assert_eq!(forest.certified_chain_length(c), 4);
    }

    #[test]
    fn consecutive_view_chain_requires_adjacent_views() {
        let mut forest = BlockForest::new();
        let a = add_child(&mut forest, BlockId::GENESIS, 1);
        let b = add_child(&mut forest, a, 2);
        let c = add_child(&mut forest, b, 4); // view gap between b and c
        certify(&mut forest, a, 1);
        certify(&mut forest, b, 2);
        certify(&mut forest, c, 4);
        assert!(forest.consecutive_view_chain(b, 2).is_some());
        assert_eq!(
            forest.consecutive_view_chain(b, 2).unwrap().id,
            a,
            "head of the 2-chain is a"
        );
        assert!(forest.consecutive_view_chain(c, 2).is_none(), "view gap");
        assert!(forest.consecutive_view_chain(c, 1).is_some());
    }

    #[test]
    fn commit_returns_newly_committed_suffix_in_order() {
        let mut forest = BlockForest::new();
        let a = add_child(&mut forest, BlockId::GENESIS, 1);
        let b = add_child(&mut forest, a, 2);
        let c = add_child(&mut forest, b, 3);
        let committed = forest.commit(b).unwrap();
        assert_eq!(
            committed.iter().map(|bk| bk.id).collect::<Vec<_>>(),
            vec![a, b]
        );
        let committed = forest.commit(c).unwrap();
        assert_eq!(
            committed.iter().map(|bk| bk.id).collect::<Vec<_>>(),
            vec![c]
        );
        assert_eq!(forest.commit(c).unwrap(), Vec::<SharedBlock>::new());
        assert_eq!(forest.stats().committed_blocks, 3);
    }

    #[test]
    fn conflicting_commit_is_detected() {
        let mut forest = BlockForest::new();
        let a = add_child(&mut forest, BlockId::GENESIS, 1);
        let b = add_child(&mut forest, a, 2);
        // A fork off the genesis block.
        let f = add_child(&mut forest, BlockId::GENESIS, 3);
        forest.commit(b).unwrap();
        match forest.commit(f) {
            Err(ForestError::ConflictingCommit { block, .. }) => assert_eq!(block, f),
            other => panic!("expected conflict, got {other:?}"),
        }
    }

    #[test]
    fn prune_removes_forked_branches_and_reports_them() {
        let mut forest = BlockForest::new();
        let a = add_child(&mut forest, BlockId::GENESIS, 1);
        let b = add_child(&mut forest, a, 2);
        let c = add_child(&mut forest, b, 3);
        // Fork at a: this branch loses.
        let f1 = add_child(&mut forest, a, 4);
        let f2 = add_child(&mut forest, f1, 5);
        forest.commit(c).unwrap();
        let forked = forest.prune_to_committed();
        let forked_ids: Vec<BlockId> = forked.iter().map(|bk| bk.id).collect();
        assert!(forked_ids.contains(&f1));
        assert!(!forked_ids.contains(&c), "committed head stays");
        assert!(!forest.contains(a), "pruned committed prefix is dropped");
        assert!(!forest.contains(f1));
        assert!(forest.contains(c));
        assert!(forest.contains(f2), "f2 is above the prune horizon");
        // Inserting an old block after pruning is rejected.
        let stale = Block::new(
            View(9),
            Height(1),
            BlockId::GENESIS,
            NodeId(0),
            QuorumCert::genesis(),
            vec![],
        );
        assert!(matches!(
            forest.insert(stale),
            Err(ForestError::BelowPruneHorizon(_)) | Err(ForestError::UnknownParent(_))
        ));
    }

    #[test]
    fn high_qc_tracks_highest_view() {
        let mut forest = BlockForest::new();
        let a = add_child(&mut forest, BlockId::GENESIS, 1);
        let b = add_child(&mut forest, a, 2);
        certify(&mut forest, b, 2);
        assert_eq!(forest.high_qc().block, b);
        certify(&mut forest, a, 1);
        assert_eq!(forest.high_qc().block, b, "older QC does not replace newer");
        assert_eq!(forest.highest_certified_block().id, b);
    }

    #[test]
    fn register_qc_for_unknown_block_fails() {
        let mut forest = BlockForest::new();
        let ghost = BlockId(bamboo_crypto::Digest::of(b"ghost"));
        assert_eq!(
            forest.register_qc(QuorumCert {
                block: ghost,
                view: View(1),
                signatures: Default::default()
            }),
            Err(ForestError::UnknownBlock(ghost))
        );
    }

    /// Brute-force recomputation of the highest certified block: max over all
    /// certified vertices by `(height, view)` — the specification the
    /// incremental tracking in `register_qc` must match.
    fn brute_force_highest_certified(forest: &BlockForest) -> BlockId {
        forest
            .iter()
            .filter(|b| forest.is_certified(b.id))
            .max_by_key(|b| (b.height, b.view))
            .map(|b| b.id)
            .expect("genesis is always certified")
    }

    #[test]
    fn incremental_highest_certified_matches_brute_force_for_any_qc_order() {
        // A forest with three competing branches off different fork points,
        // so certification order genuinely matters.
        let mut forest = BlockForest::new();
        let mut ids = Vec::new();
        let a = add_child(&mut forest, BlockId::GENESIS, 1);
        let b = add_child(&mut forest, a, 2);
        let c = add_child(&mut forest, b, 3);
        let d = add_child(&mut forest, c, 4);
        // Fork at a (medium branch) and at genesis (short branch).
        let f1 = add_child(&mut forest, a, 5);
        let f2 = add_child(&mut forest, f1, 6);
        let g1 = add_child(&mut forest, BlockId::GENESIS, 7);
        ids.extend([a, b, c, d, f1, f2, g1]);

        // Deterministic Fisher-Yates driven by an splitmix64-style generator
        // (no external randomness: runs must stay reproducible).
        let mut rng_state: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut next = move || {
            rng_state = rng_state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = rng_state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };

        for _trial in 0..50 {
            let mut order = ids.clone();
            for i in (1..order.len()).rev() {
                let j = (next() % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
            // Also vary how many of the blocks get certified at all.
            let take = 1 + (next() % order.len() as u64) as usize;
            let mut trial_forest = forest.clone();
            for id in order.into_iter().take(take) {
                let view = trial_forest.get(id).unwrap().view;
                certify(&mut trial_forest, id, view.as_u64());
                assert_eq!(
                    trial_forest.highest_certified_block().id,
                    brute_force_highest_certified(&trial_forest),
                    "incremental tracking diverged from brute force"
                );
            }
        }
    }

    #[test]
    fn committed_block_at_height_supports_consistency_checks() {
        let mut forest = BlockForest::new();
        let a = add_child(&mut forest, BlockId::GENESIS, 1);
        let _fork = add_child(&mut forest, BlockId::GENESIS, 2);
        let b = add_child(&mut forest, a, 3);
        forest.commit(b).unwrap();
        assert_eq!(forest.committed_block_at(Height(1)).unwrap().id, a);
        assert_eq!(forest.committed_block_at(Height(2)).unwrap().id, b);
    }
}

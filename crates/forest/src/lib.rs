//! Block forest — the data module of the Bamboo architecture.
//!
//! The block forest keeps track of every block a replica has seen, organised
//! as a forest of trees keyed by parent links (§III-A of the paper):
//!
//! * every vertex has a height strictly greater than its parent's,
//! * a vertex can have many children (forks), one parent,
//! * the forest can be pruned up to a height, which may disconnect sub-trees,
//! * a *main chain* of committed blocks is always maintained, and a
//!   consistency check across replicas is a hash comparison at equal height.
//!
//! On top of raw storage the crate provides the chain predicates the safety
//! rules need: direct-descendant certified chains (one-chain / two-chain /
//! three-chain in HotStuff's sense, [`BlockForest::certified_chain_length`])
//! and consecutive-view chains (Streamlet's commit rule,
//! [`BlockForest::consecutive_view_chain`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod forest;
pub mod ledger;
pub mod snapshot;

pub use forest::{BlockForest, ForestError, ForestStats};
pub use ledger::{CommittedBlock, Ledger};
pub use snapshot::{
    decode_committed_record, decode_qc_record, encode_committed_record, encode_qc_record, Snapshot,
    SnapshotError,
};

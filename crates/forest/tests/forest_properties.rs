//! Property-style tests for the block forest invariants.
//!
//! Randomised forests are generated from the workspace's own deterministic
//! [`SimRng`] over a grid of seeds (no external property-testing framework),
//! so every failure is reproducible from the printed seed.

use bamboo_forest::BlockForest;
use bamboo_sim::SimRng;
use bamboo_types::{Block, BlockId, NodeId, QuorumCert, SimTime, Transaction, View};

/// Builds a random forest from a seed: at each step pick a random existing
/// block and extend it, occasionally certifying blocks.
fn build_random_forest(seed: u64, steps: usize) -> (BlockForest, Vec<BlockId>) {
    let mut rng = SimRng::new(seed);
    let mut forest = BlockForest::new();
    let mut ids = vec![BlockId::GENESIS];
    for view in 1..=steps as u64 {
        let parent_id = ids[rng.choose_index(ids.len())];
        let parent = forest.get(parent_id).unwrap().clone();
        let block = Block::new(
            View(view),
            parent.height.next(),
            parent_id,
            NodeId(view % 4),
            QuorumCert::genesis(),
            vec![Transaction::new(NodeId(0), view, 4, SimTime::ZERO)],
        );
        let id = block.id;
        forest.insert(block).unwrap();
        ids.push(id);
        if rng.chance(0.6) {
            let qc = QuorumCert {
                block: id,
                view: View(view),
                signatures: Default::default(),
            };
            forest.register_qc(qc).unwrap();
        }
    }
    (forest, ids)
}

/// The seed/size grid every invariant is checked over.
fn cases() -> impl Iterator<Item = (u64, usize)> {
    (0u64..64).map(|seed| {
        let steps = 1 + (seed as usize * 7) % 60;
        (seed, steps)
    })
}

/// Every stored block's height is exactly its parent's height + 1, and every
/// non-genesis block extends genesis.
#[test]
fn heights_are_parent_plus_one() {
    for (seed, steps) in cases() {
        let (forest, ids) = build_random_forest(seed, steps);
        for id in &ids {
            let block = forest.get(*id).unwrap();
            if !block.is_genesis() {
                let parent = forest.get(block.parent).unwrap();
                assert_eq!(
                    block.height.as_u64(),
                    parent.height.as_u64() + 1,
                    "seed {seed}"
                );
                assert!(forest.extends(*id, BlockId::GENESIS), "seed {seed}");
            }
        }
    }
}

/// `extends` is reflexive and transitive along sampled ancestry chains.
#[test]
fn extends_is_reflexive_and_transitive() {
    for (seed, steps) in cases() {
        let steps = steps.max(2);
        let (forest, ids) = build_random_forest(seed, steps);
        for id in &ids {
            assert!(forest.extends(*id, *id), "seed {seed}");
            let block = forest.get(*id).unwrap();
            if !block.is_genesis() {
                let parent = forest.get(block.parent).unwrap();
                if !parent.is_genesis() {
                    assert!(forest.extends(*id, parent.parent), "seed {seed}");
                }
            }
        }
    }
}

/// The certified-chain-length predicate never exceeds the block's height+1
/// and is monotone along parent links of certified blocks.
#[test]
fn certified_chain_length_is_bounded() {
    for (seed, steps) in cases() {
        let (forest, ids) = build_random_forest(seed, steps);
        for id in &ids {
            let block = forest.get(*id).unwrap();
            let len = forest.certified_chain_length(*id);
            assert!(len as u64 <= block.height.as_u64() + 1, "seed {seed}");
            if len > 1 {
                assert_eq!(
                    forest.certified_chain_length(block.parent),
                    len - 1,
                    "seed {seed}"
                );
            }
        }
    }
}

/// Committing the deepest certified block and pruning preserves exactly the
/// committed chain plus blocks above the horizon, and forked blocks returned
/// by pruning are never on the committed chain.
#[test]
fn prune_preserves_committed_chain() {
    for (seed, steps) in cases() {
        let steps = steps.max(5);
        let (mut forest, ids) = build_random_forest(seed, steps);
        // Commit the highest block (any leaf works for the invariant).
        let deepest = ids
            .iter()
            .max_by_key(|id| forest.get(**id).unwrap().height)
            .copied()
            .unwrap();
        let committed = forest.commit(deepest).unwrap();
        let committed_ids: Vec<BlockId> = committed.iter().map(|b| b.id).collect();
        let forked = forest.prune_to_committed();
        for f in &forked {
            assert!(
                !committed_ids.contains(&f.id),
                "seed {seed}: forked block was committed"
            );
        }
        // The committed head must survive pruning.
        assert!(forest.contains(deepest), "seed {seed}");
        // Everything still stored is either the head, above the horizon, or
        // genesis.
        let horizon = forest.prune_horizon();
        for block in forest.iter() {
            assert!(
                block.id == deepest || block.height >= horizon || block.is_genesis(),
                "seed {seed}: block {} below horizon survived",
                block.id
            );
        }
    }
}

/// Stats are internally consistent.
#[test]
fn stats_are_consistent() {
    for (seed, steps) in cases() {
        let (forest, _) = build_random_forest(seed, steps);
        let stats = forest.stats();
        assert_eq!(stats.stored_blocks, forest.len(), "seed {seed}");
        assert!(stats.max_height as usize <= steps, "seed {seed}");
        assert_eq!(stats.committed_blocks, 0, "seed {seed}");
    }
}

//! Property-based tests for the block forest invariants.

use bamboo_forest::BlockForest;
use bamboo_types::{Block, BlockId, NodeId, QuorumCert, SimTime, Transaction, View};
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Builds a random forest from a seed: at each step pick a random existing
/// block and extend it, occasionally certifying blocks.
fn build_random_forest(seed: u64, steps: usize) -> (BlockForest, Vec<BlockId>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut forest = BlockForest::new();
    let mut ids = vec![BlockId::GENESIS];
    for view in 1..=steps as u64 {
        let parent_id = *ids.choose(&mut rng).unwrap();
        let parent = forest.get(parent_id).unwrap().clone();
        let block = Block::new(
            View(view),
            parent.height.next(),
            parent_id,
            NodeId(view % 4),
            QuorumCert::genesis(),
            vec![Transaction::new(NodeId(0), view, 4, SimTime::ZERO)],
        );
        let id = block.id;
        forest.insert(block).unwrap();
        ids.push(id);
        if rng.gen_bool(0.6) {
            let qc = QuorumCert {
                block: id,
                view: View(view),
                signatures: Default::default(),
            };
            forest.register_qc(qc).unwrap();
        }
    }
    (forest, ids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every stored block's height is exactly its parent's height + 1, and
    /// every non-genesis block extends genesis.
    #[test]
    fn heights_are_parent_plus_one(seed in 0u64..1_000, steps in 1usize..60) {
        let (forest, ids) = build_random_forest(seed, steps);
        for id in &ids {
            let block = forest.get(*id).unwrap();
            if !block.is_genesis() {
                let parent = forest.get(block.parent).unwrap();
                prop_assert_eq!(block.height.as_u64(), parent.height.as_u64() + 1);
                prop_assert!(forest.extends(*id, BlockId::GENESIS));
            }
        }
    }

    /// `extends` is reflexive and transitive along sampled ancestry chains.
    #[test]
    fn extends_is_reflexive_and_transitive(seed in 0u64..1_000, steps in 2usize..60) {
        let (forest, ids) = build_random_forest(seed, steps);
        for id in &ids {
            prop_assert!(forest.extends(*id, *id));
            let block = forest.get(*id).unwrap();
            if !block.is_genesis() {
                let parent = forest.get(block.parent).unwrap();
                if !parent.is_genesis() {
                    prop_assert!(forest.extends(*id, parent.parent));
                }
            }
        }
    }

    /// The certified-chain-length predicate never exceeds the block's height+1
    /// and is monotone along parent links of certified blocks.
    #[test]
    fn certified_chain_length_is_bounded(seed in 0u64..1_000, steps in 1usize..60) {
        let (forest, ids) = build_random_forest(seed, steps);
        for id in &ids {
            let block = forest.get(*id).unwrap();
            let len = forest.certified_chain_length(*id);
            prop_assert!(len as u64 <= block.height.as_u64() + 1);
            if len > 1 {
                prop_assert_eq!(forest.certified_chain_length(block.parent), len - 1);
            }
        }
    }

    /// Committing the deepest certified block and pruning preserves exactly
    /// the committed chain plus blocks above the horizon, and forked blocks
    /// returned by pruning are never on the committed chain.
    #[test]
    fn prune_preserves_committed_chain(seed in 0u64..1_000, steps in 5usize..80) {
        let (mut forest, ids) = build_random_forest(seed, steps);
        // Commit the highest block (any leaf works for the invariant).
        let deepest = ids
            .iter()
            .max_by_key(|id| forest.get(**id).unwrap().height)
            .copied()
            .unwrap();
        let committed = forest.commit(deepest).unwrap();
        let committed_ids: Vec<BlockId> = committed.iter().map(|b| b.id).collect();
        let forked = forest.prune_to_committed();
        for f in &forked {
            prop_assert!(!committed_ids.contains(&f.id), "forked block was committed");
        }
        // The committed head must survive pruning.
        prop_assert!(forest.contains(deepest));
        // Everything still stored is either the head, above the horizon, or genesis.
        let horizon = forest.prune_horizon();
        for block in forest.iter() {
            prop_assert!(
                block.id == deepest || block.height >= horizon || block.is_genesis(),
                "block {} below horizon survived", block.id
            );
        }
    }

    /// Stats are internally consistent.
    #[test]
    fn stats_are_consistent(seed in 0u64..1_000, steps in 1usize..60) {
        let (forest, _) = build_random_forest(seed, steps);
        let stats = forest.stats();
        prop_assert_eq!(stats.stored_blocks, forest.len());
        prop_assert!(stats.max_height as usize <= steps);
        prop_assert_eq!(stats.committed_blocks, 0);
    }
}

//! Frame-decoder property tests at torn boundaries, mirroring the durable
//! log's torn-tail suite: TCP delivers byte streams, not frames, so the
//! decoder must produce the identical frame sequence no matter how the
//! stream is sliced — and a stream cut mid-frame must yield exactly the
//! fully-contained prefix, silently waiting for the rest.

use bamboo_net::{FrameDecoder, FrameError, FrameKind};

/// splitmix64 — the workspace's standard tiny deterministic generator.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

const KINDS: [FrameKind; 7] = [
    FrameKind::Hello,
    FrameKind::Msg,
    FrameKind::ClientBatch,
    FrameKind::PeerTable,
    FrameKind::Status,
    FrameKind::StatusReply,
    FrameKind::Shutdown,
];

/// Random frames (framing is payload-agnostic; random bytes exercise it as
/// well as encoded messages do) and the concatenated wire stream.
fn random_stream(seed: u64, count: usize) -> (Vec<(FrameKind, Vec<u8>)>, Vec<u8>) {
    let mut rng = Rng(seed);
    let mut frames = Vec::with_capacity(count);
    let mut stream = Vec::new();
    for _ in 0..count {
        let kind = KINDS[(rng.next() % KINDS.len() as u64) as usize];
        let len = (rng.next() % 60) as usize;
        let payload: Vec<u8> = (0..len).map(|_| (rng.next() & 0xFF) as u8).collect();
        stream.extend_from_slice(&bamboo_net::frame::encode_frame(kind, &payload));
        frames.push((kind, payload));
    }
    (frames, stream)
}

fn drain(decoder: &mut FrameDecoder) -> Vec<(FrameKind, Vec<u8>)> {
    let mut out = Vec::new();
    while let Some(frame) = decoder.next_frame().expect("valid stream") {
        out.push((frame.kind, frame.payload));
    }
    out
}

#[test]
fn byte_dribbled_streams_decode_identically() {
    let (frames, stream) = random_stream(42, 25);
    // Whole-stream decode is the reference.
    let mut reference = FrameDecoder::new();
    reference.push(&stream);
    assert_eq!(drain(&mut reference), frames);

    // Dribble the same bytes in random 1..=7-byte slices; the decoded
    // sequence must be identical, with partial frames held back until their
    // remainder arrives.
    let mut rng = Rng(7);
    let mut decoder = FrameDecoder::new();
    let mut decoded = Vec::new();
    let mut pos = 0;
    while pos < stream.len() {
        let step = (1 + rng.next() % 7) as usize;
        let end = (pos + step).min(stream.len());
        decoder.push(&stream[pos..end]);
        decoded.extend(drain(&mut decoder));
        pos = end;
    }
    assert_eq!(decoded, frames);
    assert_eq!(decoder.buffered(), 0, "no bytes left behind");
}

#[test]
fn every_truncation_point_yields_exactly_the_complete_prefix() {
    let (frames, stream) = random_stream(2024, 15);
    // Recompute each frame's end offset to know the expected prefix length
    // at every cut.
    let mut ends = Vec::with_capacity(frames.len());
    let mut offset = 0;
    for (_, payload) in &frames {
        offset += bamboo_net::frame::FRAME_HEADER_BYTES + payload.len();
        ends.push(offset);
    }
    for cut in 0..=stream.len() {
        let mut decoder = FrameDecoder::new();
        decoder.push(&stream[..cut]);
        let decoded = drain(&mut decoder);
        let expected = ends.iter().take_while(|&&end| end <= cut).count();
        assert_eq!(
            decoded.len(),
            expected,
            "cut {cut}: wrong number of complete frames"
        );
        assert_eq!(decoded, frames[..expected], "cut {cut}: prefix diverged");
        // A torn tail is pending bytes, not an error — and feeding the
        // remainder completes the stream exactly.
        decoder.push(&stream[cut..]);
        let rest = drain(&mut decoder);
        assert_eq!(rest, frames[expected..], "cut {cut}: tail did not resume");
        assert_eq!(decoder.buffered(), 0);
    }
}

#[test]
fn unknown_kind_byte_is_a_hard_error() {
    let mut stream = bamboo_net::frame::encode_frame(FrameKind::Msg, b"fine");
    let bad = bamboo_net::frame::encode_frame(FrameKind::Msg, b"soon-mauled");
    let kind_offset = stream.len() + 4;
    stream.extend_from_slice(&bad);
    stream[kind_offset] = 0xEE;
    let mut decoder = FrameDecoder::new();
    decoder.push(&stream);
    assert!(decoder.next_frame().expect("first frame intact").is_some());
    assert!(matches!(
        decoder.next_frame(),
        Err(FrameError::UnknownKind(0xEE))
    ));
}

#[test]
fn oversized_length_prefix_is_rejected_without_buffering() {
    // A length prefix beyond MAX_FRAME_PAYLOAD must fail immediately — the
    // decoder must not wait for (or try to allocate) gigabytes.
    let huge = (bamboo_net::frame::MAX_FRAME_PAYLOAD as u32) + 1;
    let mut stream = Vec::new();
    stream.extend_from_slice(&huge.to_be_bytes());
    stream.push(FrameKind::Msg as u8);
    let mut decoder = FrameDecoder::new();
    decoder.push(&stream);
    assert!(matches!(
        decoder.next_frame(),
        Err(FrameError::Oversized(n)) if n == huge
    ));
}

//! Multi-process loopback mode: one OS process per replica, driven over TCP.
//!
//! The handshake is deliberately minimal so any binary can host a replica by
//! calling [`maybe_run_replica`] first thing in `main`:
//!
//! 1. the driver spawns the replica binary with [`REPLICA_ENV`] set to a
//!    JSON [`ReplicaSpec`];
//! 2. the replica binds `127.0.0.1:0`, prints `PORT <p>` on stdout and
//!    waits — consensus is gated until it knows every peer's address;
//! 3. the driver collects every port, connects to each replica as
//!    [`CLIENT_SENDER`] and sends the full peer table; replicas dial each
//!    other and consensus starts;
//! 4. the driver submits load as [`FrameKind::ClientBatch`] frames and
//!    polls progress with status probes;
//! 5. on shutdown the driver sends a [`FrameKind::Shutdown`] frame; each
//!    replica tears down and prints `REPORT <json>` on stdout.
//!
//! Killing a replica is a real `SIGKILL` here — no destructor runs, peers
//! see dead sockets and reconnect on their backoff schedule, and a
//! replacement process starts from genesis and catches up through sync.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::{Duration, Instant};

use bamboo_crypto::KeyPair;
use bamboo_types::{
    ClientRequest, Config, Json, NodeId, ProtocolKind, SimDuration, SimTime, Transaction,
};

use crate::frame::{
    decode_status_reply, encode_client_batch, encode_frame, encode_hello, encode_peer_table,
    encode_status, FrameDecoder, FrameKind, StatusReply, CLIENT_SENDER,
};
use crate::node::{TcpNode, TcpNodeReport};
use crate::peer::BackoffPolicy;

/// Environment variable that turns a binary into a replica process when set
/// to a JSON [`ReplicaSpec`].
pub const REPLICA_ENV: &str = "BAMBOO_TCP_REPLICA_SPEC";

/// Cluster-wide parameters shared by every replica process.
#[derive(Clone, Copy, Debug)]
pub struct ClusterSpec {
    /// Replica count.
    pub nodes: usize,
    /// Protocol under test.
    pub protocol: ProtocolKind,
    /// Transactions per block.
    pub block_size: usize,
    /// Transaction payload bytes.
    pub payload_size: usize,
    /// View timeout in milliseconds.
    pub timeout_ms: u64,
    /// Deterministic seed (key derivation).
    pub seed: u64,
    /// Verify workers per replica.
    pub verify_workers: usize,
    /// Checkpoint every N committed blocks; 0 disables checkpoints.
    pub checkpoint_interval: u64,
    /// Require client signatures at the replica edge.
    pub signed_requests: bool,
}

impl ClusterSpec {
    /// Builds the replica [`Config`] this spec describes.
    ///
    /// # Errors
    /// Returns the config-validation error text for out-of-range parameters.
    pub fn config(&self) -> Result<Config, String> {
        let mut builder = Config::builder()
            .nodes(self.nodes)
            .block_size(self.block_size)
            .payload_size(self.payload_size)
            .timeout(SimDuration::from_millis(self.timeout_ms))
            .seed(self.seed)
            .signed_requests(self.signed_requests);
        if self.checkpoint_interval > 0 {
            builder = builder.checkpoint_interval(self.checkpoint_interval);
        }
        builder.build().map_err(|e| e.to_string())
    }
}

/// What one replica process needs to know: the cluster parameters and which
/// seat it occupies.
#[derive(Clone, Copy, Debug)]
pub struct ReplicaSpec {
    /// This replica's id.
    pub id: u64,
    /// The shared cluster parameters.
    pub cluster: ClusterSpec,
}

impl ReplicaSpec {
    /// Renders the spec as a single-line JSON document for [`REPLICA_ENV`].
    pub fn to_json(&self) -> String {
        let c = &self.cluster;
        let doc = Json::obj([
            ("id", Json::Num(self.id as f64)),
            ("nodes", Json::Num(c.nodes as f64)),
            ("protocol", Json::Str(c.protocol.label().to_string())),
            ("block_size", Json::Num(c.block_size as f64)),
            ("payload_size", Json::Num(c.payload_size as f64)),
            ("timeout_ms", Json::Num(c.timeout_ms as f64)),
            ("seed", Json::Num(c.seed as f64)),
            ("verify_workers", Json::Num(c.verify_workers as f64)),
            (
                "checkpoint_interval",
                Json::Num(c.checkpoint_interval as f64),
            ),
            ("signed_requests", Json::Bool(c.signed_requests)),
        ]);
        compact(&doc)
    }

    /// Parses a spec rendered by [`ReplicaSpec::to_json`].
    ///
    /// # Errors
    /// Returns a description of the first malformed or missing field.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = Json::parse(text)?;
        let num = |key: &str| -> Result<u64, String> {
            doc.get(key)
                .and_then(Json::as_f64)
                .map(|n| n as u64)
                .ok_or_else(|| format!("missing numeric field `{key}`"))
        };
        let protocol_label = doc
            .get("protocol")
            .and_then(Json::as_str)
            .ok_or("missing field `protocol`")?;
        let protocol = ProtocolKind::from_label(protocol_label)
            .ok_or_else(|| format!("unknown protocol label `{protocol_label}`"))?;
        let signed_requests = match doc.get("signed_requests") {
            Some(Json::Bool(b)) => *b,
            _ => return Err("missing boolean field `signed_requests`".to_string()),
        };
        Ok(ReplicaSpec {
            id: num("id")?,
            cluster: ClusterSpec {
                nodes: num("nodes")? as usize,
                protocol,
                block_size: num("block_size")? as usize,
                payload_size: num("payload_size")? as usize,
                timeout_ms: num("timeout_ms")?,
                seed: num("seed")?,
                verify_workers: num("verify_workers")? as usize,
                checkpoint_interval: num("checkpoint_interval")?,
                signed_requests,
            },
        })
    }
}

/// Renders a [`Json`] document on one line. The pretty renderer is the only
/// public one; collapsing its lines is loss-free for our documents (no
/// string values contain whitespace).
fn compact(doc: &Json) -> String {
    doc.render_pretty()
        .lines()
        .map(str::trim)
        .collect::<Vec<_>>()
        .join("")
}

fn hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        use std::fmt::Write as _;
        let _ = write!(out, "{b:02x}");
    }
    out
}

/// If [`REPLICA_ENV`] is set, runs this process as a replica until the
/// driver says shutdown, prints the final report, and returns `true` (the
/// caller should exit). Returns `false` in a normal invocation.
///
/// # Panics
/// Panics on a malformed spec or an I/O failure while serving — a replica
/// process has nothing sensible to fall back to, and the non-zero exit is
/// what the driver observes.
pub fn maybe_run_replica() -> bool {
    let Ok(text) = std::env::var(REPLICA_ENV) else {
        return false;
    };
    let spec =
        ReplicaSpec::from_json(&text).unwrap_or_else(|e| panic!("malformed {REPLICA_ENV}: {e}"));
    run_replica(&spec).expect("replica process failed");
    true
}

fn run_replica(spec: &ReplicaSpec) -> std::io::Result<()> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let port = listener.local_addr()?.port();
    {
        let mut stdout = std::io::stdout().lock();
        writeln!(stdout, "PORT {port}")?;
        stdout.flush()?;
    }
    let config = spec
        .cluster
        .config()
        .unwrap_or_else(|e| panic!("invalid cluster spec: {e}"));
    let node = TcpNode::spawn(
        NodeId(spec.id),
        spec.cluster.protocol,
        config,
        listener,
        vec![None; spec.cluster.nodes],
        spec.cluster.verify_workers,
        BackoffPolicy::default(),
    )?;
    let report = node.wait();
    let doc = replica_report_json(&report);
    let mut stdout = std::io::stdout().lock();
    writeln!(stdout, "REPORT {}", compact(&doc))?;
    stdout.flush()
}

fn replica_report_json(report: &TcpNodeReport) -> Json {
    let replica = report.host.replica();
    let ledger = replica.ledger();
    let stats = &report.stats;
    Json::obj([
        ("node", Json::Num(stats.node as f64)),
        ("committed_txs", Json::Num(ledger.committed_txs() as f64)),
        ("committed_blocks", Json::Num(ledger.len() as f64)),
        ("view", Json::Num(replica.current_view().as_u64() as f64)),
        (
            "safety_violations",
            Json::Num(replica.safety_violations() as f64),
        ),
        (
            "timeout_view_changes",
            Json::Num(replica.timeout_view_changes() as f64),
        ),
        (
            "auth_rejections",
            Json::Num(report.host.auth_rejections() as f64),
        ),
        (
            "client_auth_rejections",
            Json::Num(report.host.client_auth_rejections() as f64),
        ),
        ("verify_accepted", Json::Num(stats.verify_accepted as f64)),
        ("verify_rejected", Json::Num(stats.verify_rejected as f64)),
        (
            "accepted_connections",
            Json::Num(stats.accepted_connections as f64),
        ),
        ("reconnects", Json::Num(stats.reconnects() as f64)),
        ("bytes_sent", Json::Num(stats.bytes_sent() as f64)),
        ("send_queue_dropped", Json::Num(stats.dropped() as f64)),
        (
            "chain_fingerprint",
            Json::Str(hex(ledger.chain_fingerprint().as_bytes())),
        ),
    ])
}

/// One driver-side connection to a replica process.
struct DriverConn {
    stream: TcpStream,
    decoder: FrameDecoder,
}

impl DriverConn {
    fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_millis(50)))?;
        let mut conn = Self {
            stream,
            decoder: FrameDecoder::new(),
        };
        conn.send(FrameKind::Hello, &encode_hello(CLIENT_SENDER))?;
        Ok(conn)
    }

    fn send(&mut self, kind: FrameKind, payload: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(&encode_frame(kind, payload))
    }

    /// Blocks until the probe with `token` answers or `deadline` passes.
    fn probe(
        &mut self,
        token: u64,
        prefix_len: u64,
        deadline: Instant,
    ) -> std::io::Result<StatusReply> {
        self.send(FrameKind::Status, &encode_status(token, prefix_len))?;
        let mut buf = [0u8; 4096];
        loop {
            loop {
                match self.decoder.next_frame() {
                    Ok(Some(frame)) if frame.kind == FrameKind::StatusReply => {
                        if let Ok(reply) = decode_status_reply(&frame.payload) {
                            if reply.token == token {
                                return Ok(reply);
                            }
                        }
                    }
                    Ok(Some(_)) | Ok(None) => break,
                    Err(_) => {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            "bad frame from replica",
                        ))
                    }
                }
            }
            if Instant::now() >= deadline {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "status probe timed out",
                ));
            }
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "replica closed the connection",
                    ))
                }
                Ok(n) => self.decoder.push(&buf[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// One spawned replica process and its stdout.
struct ProcessSeat {
    child: Child,
    stdout: BufReader<ChildStdout>,
    addr: SocketAddr,
}

/// Driver for a cluster of replica processes on loopback.
pub struct ProcessCluster {
    exe: std::path::PathBuf,
    spec: ClusterSpec,
    seats: Vec<Option<ProcessSeat>>,
    conns: Vec<Option<DriverConn>>,
    next_seq: u64,
    next_token: u64,
}

impl ProcessCluster {
    /// Spawns one replica process per seat from `exe` (a binary whose `main`
    /// calls [`maybe_run_replica`]), collects the ports, and distributes the
    /// peer table so consensus starts.
    ///
    /// # Errors
    /// Fails if a process cannot spawn, a port line cannot be read, or a
    /// driver connection cannot be established.
    pub fn launch(exe: &std::path::Path, spec: ClusterSpec) -> std::io::Result<Self> {
        let mut seats: Vec<Option<ProcessSeat>> = Vec::with_capacity(spec.nodes);
        for id in 0..spec.nodes {
            seats.push(Some(spawn_seat(exe, spec, id as u64)?));
        }
        let mut cluster = Self {
            exe: exe.to_path_buf(),
            spec,
            seats,
            conns: (0..spec.nodes).map(|_| None).collect(),
            next_seq: 0,
            next_token: 0,
        };
        for id in 0..spec.nodes {
            cluster.connect(id)?;
        }
        cluster.broadcast_peer_table()?;
        Ok(cluster)
    }

    fn connect(&mut self, id: usize) -> std::io::Result<()> {
        let addr = self.seats[id].as_ref().expect("seat is live").addr;
        self.conns[id] = Some(DriverConn::connect(addr)?);
        Ok(())
    }

    fn broadcast_peer_table(&mut self) -> std::io::Result<()> {
        let table: Vec<(u64, SocketAddr)> = self
            .seats
            .iter()
            .enumerate()
            .filter_map(|(id, seat)| seat.as_ref().map(|s| (id as u64, s.addr)))
            .collect();
        let payload = encode_peer_table(&table);
        for conn in self.conns.iter_mut().flatten() {
            conn.send(FrameKind::PeerTable, &payload)?;
        }
        Ok(())
    }

    /// Submits `count` transactions of `payload` bytes round-robin across
    /// live replicas, continuing earlier sequence numbers.
    ///
    /// # Errors
    /// Fails if a batch cannot be written to a live replica's connection.
    pub fn submit_round_robin(&mut self, count: u64, payload: usize) -> std::io::Result<()> {
        let client = NodeId(999);
        let keypair = self
            .spec
            .signed_requests
            .then(|| KeyPair::client_from_seed(client.as_u64()));
        for _ in 0..count {
            let seq = self.next_seq;
            self.next_seq += 1;
            let tx = Transaction::new(client, seq, payload, SimTime(0));
            let request = match &keypair {
                Some(keypair) => ClientRequest::signed(tx, keypair),
                None => ClientRequest::unsigned(tx),
            };
            let target = (seq % self.spec.nodes as u64) as usize;
            let conn = (0..self.spec.nodes)
                .map(|offset| (target + offset) % self.spec.nodes)
                .find(|&index| self.conns[index].is_some());
            if let Some(index) = conn {
                let payload = encode_client_batch(&[request]);
                if let Some(conn) = self.conns[index].as_mut() {
                    conn.send(FrameKind::ClientBatch, &payload)?;
                }
            }
        }
        Ok(())
    }

    /// Probes replica `id` for its status.
    ///
    /// # Errors
    /// Fails if the replica is down or does not answer within the timeout.
    pub fn probe(&mut self, id: usize, prefix_len: u64) -> std::io::Result<StatusReply> {
        let token = self.next_token;
        self.next_token += 1;
        let conn = self.conns[id].as_mut().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::NotConnected, "replica is down")
        })?;
        conn.probe(token, prefix_len, Instant::now() + Duration::from_secs(5))
    }

    /// The smallest committed-transaction count across live replicas.
    ///
    /// # Errors
    /// Fails if any live replica stops answering probes.
    pub fn committed_txs_floor(&mut self) -> std::io::Result<u64> {
        let mut floor = u64::MAX;
        for id in 0..self.spec.nodes {
            if self.conns[id].is_some() {
                floor = floor.min(self.probe(id, 0)?.committed_txs);
            }
        }
        Ok(if floor == u64::MAX { 0 } else { floor })
    }

    /// Polls until every live replica commits at least `min_txs` or
    /// `max_wait` elapses; returns whether the floor was reached.
    ///
    /// # Errors
    /// Fails if any live replica stops answering probes.
    pub fn run_until_committed(
        &mut self,
        min_txs: u64,
        max_wait: Duration,
    ) -> std::io::Result<bool> {
        let deadline = Instant::now() + max_wait;
        loop {
            if self.committed_txs_floor()? >= min_txs {
                return Ok(true);
            }
            if Instant::now() >= deadline {
                return Ok(self.committed_txs_floor()? >= min_txs);
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    /// Checks prefix agreement across live replicas: probes everyone for
    /// their committed length, then asks everyone for the fingerprint of the
    /// shortest prefix and compares. Returns the common prefix length.
    ///
    /// # Errors
    /// Fails on probe I/O errors or if the fingerprints diverge.
    pub fn check_prefix_agreement(&mut self) -> std::io::Result<u64> {
        let mut min_len = u64::MAX;
        for id in 0..self.spec.nodes {
            if self.conns[id].is_some() {
                min_len = min_len.min(self.probe(id, 0)?.committed_blocks);
            }
        }
        if min_len == u64::MAX || min_len == 0 {
            return Ok(0);
        }
        let mut expected: Option<[u8; 32]> = None;
        for id in 0..self.spec.nodes {
            if self.conns[id].is_some() {
                let reply = self.probe(id, min_len)?;
                match expected {
                    None => expected = Some(reply.chain_fingerprint),
                    Some(fp) if fp == reply.chain_fingerprint => {}
                    Some(_) => {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            format!("replica {id} disagrees on the committed prefix"),
                        ))
                    }
                }
            }
        }
        Ok(min_len)
    }

    /// Kills replica `id` with a real `SIGKILL` — no destructors, no
    /// farewell; peers discover the death through their sockets.
    ///
    /// # Errors
    /// Fails if the process cannot be killed.
    ///
    /// # Panics
    /// Panics if the replica is already down.
    pub fn kill(&mut self, id: usize) -> std::io::Result<()> {
        let mut seat = self.seats[id].take().expect("replica already down");
        self.conns[id] = None;
        seat.child.kill()?;
        let _ = seat.child.wait();
        Ok(())
    }

    /// Starts a replacement process for a killed seat (fresh state, new
    /// port), reconnects, and re-broadcasts the peer table so everyone
    /// redials.
    ///
    /// # Errors
    /// Fails if the replacement cannot spawn or connect.
    ///
    /// # Panics
    /// Panics if the replica is still running.
    pub fn restart(&mut self, id: usize) -> std::io::Result<()> {
        assert!(self.seats[id].is_none(), "replica still running");
        self.seats[id] = Some(spawn_seat(&self.exe, self.spec, id as u64)?);
        self.connect(id)?;
        self.broadcast_peer_table()
    }

    /// Sends shutdown to every live replica and collects their final
    /// reports (one parsed `REPORT` JSON document per live seat).
    ///
    /// # Errors
    /// Fails if a shutdown frame cannot be sent or a report cannot be read
    /// or parsed.
    pub fn shutdown(mut self) -> std::io::Result<Vec<Json>> {
        for conn in self.conns.iter_mut().flatten() {
            conn.send(FrameKind::Shutdown, &[])?;
        }
        let mut reports = Vec::new();
        for seat in self.seats.iter_mut().flatten() {
            let mut line = String::new();
            loop {
                line.clear();
                if seat.stdout.read_line(&mut line)? == 0 {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "replica exited without a report",
                    ));
                }
                if let Some(json) = line.trim_end().strip_prefix("REPORT ") {
                    let doc = Json::parse(json).map_err(|e| {
                        std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            format!("bad replica report: {e}"),
                        )
                    })?;
                    reports.push(doc);
                    break;
                }
            }
            let _ = seat.child.wait();
        }
        Ok(reports)
    }
}

fn spawn_seat(exe: &std::path::Path, spec: ClusterSpec, id: u64) -> std::io::Result<ProcessSeat> {
    let replica_spec = ReplicaSpec { id, cluster: spec };
    let mut child = Command::new(exe)
        .env(REPLICA_ENV, replica_spec.to_json())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .stdin(Stdio::null())
        .spawn()?;
    let stdout = child.stdout.take().expect("stdout was piped");
    let mut stdout = BufReader::new(stdout);
    let mut line = String::new();
    let port = loop {
        line.clear();
        if stdout.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "replica exited before printing its port",
            ));
        }
        if let Some(port) = line.trim_end().strip_prefix("PORT ") {
            match port.parse::<u16>() {
                Ok(port) => break port,
                Err(_) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "malformed PORT line",
                    ))
                }
            }
        }
    };
    let addr = SocketAddr::from(([127, 0, 0, 1], port));
    Ok(ProcessSeat {
        child,
        stdout,
        addr,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replica_spec_round_trips_through_json() {
        let spec = ReplicaSpec {
            id: 2,
            cluster: ClusterSpec {
                nodes: 4,
                protocol: ProtocolKind::Streamlet,
                block_size: 50,
                payload_size: 16,
                timeout_ms: 40,
                seed: 2024,
                verify_workers: 1,
                checkpoint_interval: 5,
                signed_requests: true,
            },
        };
        let parsed = ReplicaSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(parsed.id, 2);
        assert_eq!(parsed.cluster.nodes, 4);
        assert_eq!(parsed.cluster.protocol, ProtocolKind::Streamlet);
        assert_eq!(parsed.cluster.block_size, 50);
        assert_eq!(parsed.cluster.payload_size, 16);
        assert_eq!(parsed.cluster.timeout_ms, 40);
        assert_eq!(parsed.cluster.seed, 2024);
        assert_eq!(parsed.cluster.verify_workers, 1);
        assert_eq!(parsed.cluster.checkpoint_interval, 5);
        assert!(parsed.cluster.signed_requests);
    }

    #[test]
    fn compact_rendering_is_reparseable() {
        let doc = Json::obj([
            ("a", Json::Num(1.0)),
            (
                "b",
                Json::arr([Json::Str("HS".to_string()), Json::Bool(true)]),
            ),
        ]);
        let compacted = compact(&doc);
        assert!(!compacted.contains('\n'));
        assert_eq!(Json::parse(&compacted).unwrap(), doc);
    }
}

//! One socket-backed replica: a TCP listener, reader threads feeding a
//! per-node [`VerifyPool`], per-peer writer threads, and the consensus loop
//! in between.
//!
//! The thread model is a strict send/receive split so the consensus thread
//! never blocks on a socket:
//!
//! * **readers** (one per accepted connection) block on `read`, feed a
//!   [`FrameDecoder`], and hand decoded consensus messages to the node's
//!   verify pool — signature checking happens off the consensus thread, and
//!   the replica only ever receives [`bamboo_types::VerifiedMessage`] proof
//!   tokens, exactly like the threaded backend;
//! * **writers** (one per peer, owned by [`PeerSender`]) drain bounded
//!   queues of pre-encoded frames and own all connect/reconnect logic;
//! * the **consensus thread** runs the same [`NodeHost`] event loop as the
//!   threaded cluster — due timers, due proposals, sync timers, then the
//!   event channel — with the `NetTransport` realising effects as frame
//!   enqueues.
//!
//! Unlike the in-process backends, verification here is per-*node*, not
//! per-cluster: a broadcast is verified once per receiving replica (each
//! replica trusts only its own ingress), which is the honest cost of a real
//! deployment and exactly what the paper's testbed pays.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bamboo_core::replica::{ReplicaEvent, ReplicaOptions};
use bamboo_core::runtime::{NodeHost, StepReport, Transport};
use bamboo_core::verify::{VerifyHandle, VerifyPool};
use bamboo_types::wire::encode_message;
use bamboo_types::{
    ClientRequest, Config, Message, NodeId, ProtocolKind, SimTime, VerifiedMessage, View,
};

use crate::frame::{
    decode_client_batch, decode_hello, decode_peer_table, decode_status, encode_frame,
    encode_status_reply, FrameDecoder, FrameKind, StatusReply, CLIENT_SENDER,
};
use crate::peer::{BackoffPolicy, PeerSender, PeerStats};

/// Verify workers per node. One per node keeps the thread count of an
/// n-replica loopback cluster at roughly 4n (replica + acceptor + n−1
/// writers + readers) while still moving signature checks off the consensus
/// thread.
pub const DEFAULT_NODE_VERIFY_WORKERS: usize = 1;

/// Per-node network counters, per peer link plus ingress totals.
#[derive(Clone, Debug)]
pub struct NodeNetStats {
    /// The reporting replica.
    pub node: u64,
    /// Outbound link counters, one entry per remote peer.
    pub peers: Vec<(u64, PeerStats)>,
    /// Inbound connections accepted by this node's listener (initial
    /// connects and peer reconnects alike).
    pub accepted_connections: u64,
    /// Messages this node's verify pool accepted.
    pub verify_accepted: u64,
    /// Messages this node's verify pool rejected as forged or malformed.
    pub verify_rejected: u64,
}

impl NodeNetStats {
    /// Total outbound reconnects across all peer links.
    pub fn reconnects(&self) -> u64 {
        self.peers.iter().map(|(_, s)| s.reconnects).sum()
    }

    /// Total bytes written across all peer links.
    pub fn bytes_sent(&self) -> u64 {
        self.peers.iter().map(|(_, s)| s.bytes_sent).sum()
    }

    /// Total frames dropped across all peer links.
    pub fn dropped(&self) -> u64 {
        self.peers.iter().map(|(_, s)| s.dropped).sum()
    }
}

/// Everything a [`TcpNode`] hands back when it stops.
pub struct TcpNodeReport {
    /// The final host (ledger, forest, recovery stats, rejection counters).
    pub host: NodeHost,
    /// The node's network counters.
    pub stats: NodeNetStats,
}

/// Commit progress shared between the consensus loop (writer) and reader
/// threads answering status probes.
struct NetStatus {
    committed_txs: AtomicU64,
    committed_blocks: AtomicU64,
    view: AtomicU64,
    /// `chain[l]` is the chain fingerprint of the first `l` committed
    /// blocks, maintained by the consensus thread as commits land; readers
    /// answer prefix probes from it without touching the ledger.
    chain: Mutex<Vec<[u8; 32]>>,
}

impl NetStatus {
    fn new() -> Self {
        Self {
            committed_txs: AtomicU64::new(0),
            committed_blocks: AtomicU64::new(0),
            view: AtomicU64::new(0),
            chain: Mutex::new(Vec::new()),
        }
    }

    /// `prefix_len` of 0 means "the full chain as of now". Before the first
    /// commit lands the fingerprint is all-zeroes.
    fn reply(&self, token: u64, prefix_len: u64) -> StatusReply {
        let blocks = self.committed_blocks.load(Ordering::Acquire);
        let want = if prefix_len == 0 {
            blocks
        } else {
            prefix_len.min(blocks)
        };
        let chain = self.chain.lock().expect("fingerprint lock poisoned");
        StatusReply {
            token,
            committed_txs: self.committed_txs.load(Ordering::Acquire),
            committed_blocks: blocks,
            view: self.view.load(Ordering::Acquire),
            chain_fingerprint: chain.get(want as usize).copied().unwrap_or([0u8; 32]),
        }
    }
}

/// Events delivered to the consensus thread.
enum NodeEvent {
    /// A message this node's verify pool already authenticated.
    Verified(VerifiedMessage),
    /// A batch of client requests (edge-verified by the host).
    Client(Vec<ClientRequest>),
    /// Peer listen addresses learned from the driver (multi-process mode) or
    /// a cluster-side restart notification.
    PeerTable(Vec<(u64, SocketAddr)>),
    Shutdown,
}

/// The TCP backend's [`Transport`]: effects become pre-encoded frames in the
/// per-peer outbound queues; timers stay thread-local exactly as in the
/// threaded backend.
struct NetTransport {
    id: NodeId,
    peers: Arc<Vec<Option<PeerSender>>>,
    timers: Vec<(View, SimTime)>,
    proposals: Vec<(View, SimTime)>,
    sync_timers: Vec<SimTime>,
}

impl NetTransport {
    fn new(id: NodeId, peers: Arc<Vec<Option<PeerSender>>>) -> Self {
        Self {
            id,
            peers,
            timers: Vec::new(),
            proposals: Vec::new(),
            sync_timers: Vec::new(),
        }
    }

    fn next_deadline(&self) -> Option<SimTime> {
        let timer = self.timers.iter().map(|&(_, d)| d).min();
        let proposal = self.proposals.iter().map(|&(_, d)| d).min();
        let sync = self.sync_timers.iter().copied().min();
        [timer, proposal, sync].into_iter().flatten().min()
    }

    fn due_timer(&mut self, now: SimTime) -> Option<View> {
        let index = self.timers.iter().position(|&(_, d)| d <= now)?;
        Some(self.timers.swap_remove(index).0)
    }

    fn due_proposal(&mut self, now: SimTime) -> Option<View> {
        let index = self.proposals.iter().position(|&(_, d)| d <= now)?;
        Some(self.proposals.swap_remove(index).0)
    }

    fn due_sync_timer(&mut self, now: SimTime) -> bool {
        match self.sync_timers.iter().position(|&d| d <= now) {
            Some(index) => {
                self.sync_timers.swap_remove(index);
                true
            }
            None => false,
        }
    }

    fn prune_stale(&mut self, current_view: View) {
        self.timers.retain(|&(view, _)| view >= current_view);
        self.proposals.retain(|&(view, _)| view >= current_view);
    }
}

impl Transport for NetTransport {
    fn unicast(&mut self, to: NodeId, message: Message) {
        // Unicasts to non-replica destinations (client responses) have no
        // socket here; a real deployment would route them to the client's
        // connection, the loopback harness measures commits via status
        // probes instead.
        if let Some(Some(peer)) = self.peers.get(to.index()) {
            let frame: Arc<[u8]> = encode_frame(FrameKind::Msg, &encode_message(&message)).into();
            peer.send(frame);
        }
    }

    fn broadcast(&mut self, message: Message) {
        // Encode once; every peer queue gets a pointer bump of the same
        // frame allocation.
        let frame: Arc<[u8]> = encode_frame(FrameKind::Msg, &encode_message(&message)).into();
        for (index, peer) in self.peers.iter().enumerate() {
            if index != self.id.index() {
                if let Some(peer) = peer {
                    peer.send(Arc::clone(&frame));
                }
            }
        }
    }

    fn arm_timer(&mut self, view: View, deadline: SimTime) {
        self.timers.push((view, deadline));
    }

    fn schedule_proposal(&mut self, view: View, at: SimTime) {
        self.proposals.push((view, at));
    }

    fn arm_sync_timer(&mut self, deadline: SimTime) {
        self.sync_timers.push(deadline);
    }
}

/// A running socket-backed replica.
pub struct TcpNode {
    id: NodeId,
    local_addr: SocketAddr,
    events: Sender<NodeEvent>,
    replica: Option<JoinHandle<NodeHost>>,
    accept: Option<JoinHandle<()>>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    stop: Arc<AtomicBool>,
    peers: Arc<Vec<Option<PeerSender>>>,
    verify: Option<VerifyPool>,
    status: Arc<NetStatus>,
    accepted: Arc<AtomicU64>,
}

/// Poll interval of the (non-blocking) accept loop and the readers' receive
/// timeout; bounds shutdown latency.
const POLL_TICK: Duration = Duration::from_millis(20);
/// Consensus-loop idle wait, mirroring the threaded backend.
const IDLE_WAIT: Duration = Duration::from_millis(20);

impl TcpNode {
    /// Spawns a replica on a pre-bound listener. `peer_addrs[i]` is replica
    /// `i`'s listen address when already known (same-process clusters know
    /// all of them upfront; multi-process replicas start with none and learn
    /// them from the driver's peer table). Consensus starts once every peer
    /// address is known.
    pub fn spawn(
        id: NodeId,
        protocol: ProtocolKind,
        config: Config,
        listener: TcpListener,
        peer_addrs: Vec<Option<SocketAddr>>,
        verify_workers: usize,
        backoff: BackoffPolicy,
    ) -> std::io::Result<Self> {
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let nodes = config.nodes;
        assert_eq!(peer_addrs.len(), nodes, "one address slot per replica");
        let (events, receiver) = channel::<NodeEvent>();
        let peers: Arc<Vec<Option<PeerSender>>> = Arc::new(
            (0..nodes)
                .map(|index| {
                    (index != id.index())
                        .then(|| PeerSender::spawn(id.as_u64(), peer_addrs[index], backoff))
                })
                .collect(),
        );
        let status = Arc::new(NetStatus::new());
        let stop = Arc::new(AtomicBool::new(false));
        let accepted = Arc::new(AtomicU64::new(0));
        let readers = Arc::new(Mutex::new(Vec::new()));

        let deliver_events = events.clone();
        let verify = VerifyPool::new(nodes, verify_workers.max(1), move |_to, verified| {
            // `_to` is always this node: readers submit unicast-to-self.
            let _ = deliver_events.send(NodeEvent::Verified(verified));
        });

        let accept = {
            let handle = verify.handle();
            let events = events.clone();
            let stop = Arc::clone(&stop);
            let status = Arc::clone(&status);
            let accepted = Arc::clone(&accepted);
            let readers = Arc::clone(&readers);
            std::thread::spawn(move || {
                run_acceptor(listener, events, handle, stop, status, accepted, readers)
            })
        };

        let replica = {
            let known: Vec<bool> = (0..nodes)
                .map(|index| index == id.index() || peer_addrs[index].is_some())
                .collect();
            let transport = NetTransport::new(id, Arc::clone(&peers));
            let status = Arc::clone(&status);
            std::thread::spawn(move || {
                run_consensus_loop(id, protocol, config, receiver, transport, status, known)
            })
        };

        Ok(Self {
            id,
            local_addr,
            events,
            replica: Some(replica),
            accept: Some(accept),
            readers,
            stop,
            peers,
            verify: Some(verify),
            status,
            accepted,
        })
    }

    /// The replica's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The address the node's listener is bound to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Submits a batch of client requests directly (same-process path; the
    /// multi-process driver sends [`FrameKind::ClientBatch`] frames instead).
    pub fn submit(&self, requests: Vec<ClientRequest>) {
        let _ = self.events.send(NodeEvent::Client(requests));
    }

    /// Transactions this replica has committed.
    pub fn committed_txs(&self) -> u64 {
        self.status.committed_txs.load(Ordering::Acquire)
    }

    /// Points this node's outbound link for `peer` at a new address (a
    /// restarted replica binds a fresh port).
    pub fn update_peer(&self, peer: NodeId, addr: SocketAddr) {
        let _ = self
            .events
            .send(NodeEvent::PeerTable(vec![(peer.as_u64(), addr)]));
    }

    /// Asks the consensus loop to stop (idempotent; `join` also sends it).
    pub fn request_shutdown(&self) {
        let _ = self.events.send(NodeEvent::Shutdown);
    }

    /// Stops every thread (consensus, acceptor, readers, writers, verify
    /// workers) and returns the final host and counters.
    pub fn join(self) -> TcpNodeReport {
        self.finish(true)
    }

    /// Blocks until something else stops the consensus loop — a
    /// [`FrameKind::Shutdown`] frame from the driver in multi-process mode —
    /// then tears down and reports, like [`TcpNode::join`] but without
    /// initiating the shutdown itself.
    pub fn wait(self) -> TcpNodeReport {
        self.finish(false)
    }

    fn finish(mut self, request_shutdown: bool) -> TcpNodeReport {
        if request_shutdown {
            let _ = self.events.send(NodeEvent::Shutdown);
        }
        let host = self
            .replica
            .take()
            .expect("join called once")
            .join()
            .expect("consensus thread panicked");
        self.stop.store(true, Ordering::Release);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let readers = std::mem::take(&mut *self.readers.lock().expect("readers lock poisoned"));
        for reader in readers {
            let _ = reader.join();
        }
        let peer_stats: Vec<(u64, PeerStats)> = self
            .peers
            .iter()
            .enumerate()
            .filter_map(|(index, peer)| peer.as_ref().map(|p| (index as u64, p.stats())))
            .collect();
        let (verify_accepted, verify_rejected) =
            self.verify.take().expect("join called once").shutdown();
        let stats = NodeNetStats {
            node: self.id.as_u64(),
            peers: peer_stats,
            accepted_connections: self.accepted.load(Ordering::Acquire),
            verify_accepted,
            verify_rejected,
        };
        TcpNodeReport { host, stats }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_acceptor(
    listener: TcpListener,
    events: Sender<NodeEvent>,
    verify: VerifyHandle,
    stop: Arc<AtomicBool>,
    status: Arc<NetStatus>,
    accepted: Arc<AtomicU64>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                accepted.fetch_add(1, Ordering::Release);
                let events = events.clone();
                let verify = verify.clone();
                let stop = Arc::clone(&stop);
                let status = Arc::clone(&status);
                let reader =
                    std::thread::spawn(move || run_reader(stream, events, verify, stop, status));
                readers.lock().expect("readers lock poisoned").push(reader);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_TICK);
            }
            Err(_) => break,
        }
    }
}

/// One connection's receive loop: read, decode frames, dispatch. The first
/// frame must be a hello; anything malformed drops the connection (the peer's
/// writer reconnects on its backoff schedule).
fn run_reader(
    mut stream: TcpStream,
    events: Sender<NodeEvent>,
    verify: VerifyHandle,
    stop: Arc<AtomicBool>,
    status: Arc<NetStatus>,
) {
    let _ = stream.set_read_timeout(Some(POLL_TICK));
    let _ = stream.set_nodelay(true);
    let mut decoder = FrameDecoder::new();
    let mut buf = vec![0u8; 64 * 1024];
    let mut sender: Option<u64> = None;
    'conn: while !stop.load(Ordering::Acquire) {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => decoder.push(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        }
        loop {
            let frame = match decoder.next_frame() {
                Ok(Some(frame)) => frame,
                Ok(None) => break,
                Err(_) => break 'conn,
            };
            match (frame.kind, sender) {
                (FrameKind::Hello, _) => match decode_hello(&frame.payload) {
                    Ok(id) => sender = Some(id),
                    Err(_) => break 'conn,
                },
                // Every other frame requires an established identity first.
                (_, None) => break 'conn,
                (FrameKind::Msg, Some(from)) => {
                    match bamboo_types::wire::decode_message(&frame.payload) {
                        // The claimed sender is attached here and *proved* by
                        // the verify pool: a forged identity fails the
                        // signature check against that identity's key.
                        Ok(message) => verify.submit_unicast(NodeId(from), NodeId(from), message),
                        Err(_) => break 'conn,
                    }
                }
                (FrameKind::ClientBatch, Some(_)) => match decode_client_batch(&frame.payload) {
                    Ok(requests) => {
                        let _ = events.send(NodeEvent::Client(requests));
                    }
                    Err(_) => break 'conn,
                },
                (FrameKind::PeerTable, Some(from)) => {
                    // Peer tables come from the driver, not from replicas.
                    if from != CLIENT_SENDER {
                        break 'conn;
                    }
                    match decode_peer_table(&frame.payload) {
                        Ok(table) => {
                            let _ = events.send(NodeEvent::PeerTable(table));
                        }
                        Err(_) => break 'conn,
                    }
                }
                (FrameKind::Status, Some(_)) => match decode_status(&frame.payload) {
                    Ok((token, prefix_len)) => {
                        let reply = encode_frame(
                            FrameKind::StatusReply,
                            &encode_status_reply(&status.reply(token, prefix_len)),
                        );
                        if stream.write_all(&reply).is_err() {
                            break 'conn;
                        }
                    }
                    Err(_) => break 'conn,
                },
                (FrameKind::StatusReply, Some(_)) => {
                    // Replicas probe nobody; stray replies are ignored.
                }
                (FrameKind::Shutdown, Some(_)) => {
                    let _ = events.send(NodeEvent::Shutdown);
                }
            }
        }
    }
}

/// The consensus thread: the threaded backend's event loop, with a gate that
/// holds the replica back until every peer address is known (multi-process
/// replicas boot before the driver has collected all ports).
fn run_consensus_loop(
    id: NodeId,
    protocol: ProtocolKind,
    config: Config,
    receiver: Receiver<NodeEvent>,
    mut transport: NetTransport,
    status: Arc<NetStatus>,
    mut known: Vec<bool>,
) -> NodeHost {
    let mut host = NodeHost::new(id, protocol, config, ReplicaOptions::default());
    let started_at = Instant::now();
    let now = || SimTime(started_at.elapsed().as_nanos() as u64);
    let mut started = false;

    macro_rules! account {
        ($report:expr) => {{
            let report: StepReport = $report;
            let newly: u64 = report
                .committed
                .iter()
                .map(|b| b.payload.len() as u64)
                .sum();
            if newly > 0 {
                status.committed_txs.fetch_add(newly, Ordering::Release);
            }
            let replica = host.replica();
            status
                .view
                .store(replica.current_view().as_u64(), Ordering::Release);
            if !report.committed.is_empty() {
                let ledger = replica.ledger();
                let new_len = ledger.len();
                {
                    // Extend the prefix-fingerprint history through the new
                    // length (the recompute per prefix is the canonical
                    // ledger hash — quadratic in chain length, fine at
                    // loopback test scale).
                    let mut chain = status.chain.lock().expect("fingerprint lock poisoned");
                    while chain.len() <= new_len {
                        let l = chain.len();
                        chain.push(*ledger.chain_fingerprint_prefix(l).as_bytes());
                    }
                }
                status
                    .committed_blocks
                    .store(new_len as u64, Ordering::Release);
            }
        }};
    }

    if known.iter().all(|&k| k) {
        started = true;
        account!(host.start(now(), &mut transport));
    }

    loop {
        let current = now();

        if started {
            if let Some(view) = transport.due_timer(current) {
                account!(host.handle(ReplicaEvent::TimerFired { view }, current, &mut transport));
                transport.prune_stale(host.replica().current_view());
                continue;
            }
            if let Some(view) = transport.due_proposal(current) {
                account!(host.handle(ReplicaEvent::ProposeNow { view }, current, &mut transport));
                continue;
            }
            if transport.due_sync_timer(current) {
                account!(host.handle(ReplicaEvent::SyncTimer, current, &mut transport));
                continue;
            }
        }

        let wait = match transport.next_deadline() {
            Some(deadline) if started => {
                Duration::from_nanos(deadline.as_nanos().saturating_sub(current.as_nanos()))
                    .min(IDLE_WAIT)
            }
            _ => IDLE_WAIT,
        };
        match receiver.recv_timeout(wait) {
            Ok(NodeEvent::Shutdown) => break,
            Ok(NodeEvent::Verified(verified)) => {
                account!(host.handle_verified(verified, now(), &mut transport));
                transport.prune_stale(host.replica().current_view());
            }
            Ok(NodeEvent::Client(requests)) => {
                account!(host.handle_client_batch(requests, now(), &mut transport));
            }
            Ok(NodeEvent::PeerTable(table)) => {
                for (peer, addr) in table {
                    let index = peer as usize;
                    if peer != id.as_u64() && index < transport.peers.len() {
                        if let Some(Some(link)) = transport.peers.get(index) {
                            link.set_addr(addr);
                        }
                        known[index] = true;
                    }
                }
                if !started && known.iter().all(|&k| k) {
                    started = true;
                    account!(host.start(now(), &mut transport));
                }
            }
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    host
}

//! Real-socket transport backend: chained-BFT replicas talking over TCP.
//!
//! The simulation backend ([`bamboo_core::runner`]) measures protocol
//! behaviour under a modelled network; the threaded backend
//! ([`bamboo_core::threaded`]) runs real concurrency over in-process
//! channels. This crate adds the third rung: replicas exchanging
//! length-prefixed frames over real TCP connections, with the send/receive
//! split a deployment needs — per-peer writer threads draining bounded
//! outbound queues, reader threads feeding a per-node verify pool — so the
//! consensus thread never blocks on a socket.
//!
//! Layers, bottom up:
//!
//! * [`frame`] — the `[u32 len][u8 kind][payload]` framing (the storage
//!   record discipline applied to sockets) and the small control-frame
//!   vocabulary (hello, peer table, client batch, status probe, shutdown);
//!   consensus messages ride the canonical [`bamboo_types::wire`] codec.
//! * [`peer`] — one outbound link: a bounded queue drained by a writer
//!   thread that owns connect, exponential-backoff retry and reconnect.
//!   While a peer is down its frames are dropped and counted, never
//!   buffered unboundedly — chained BFT tolerates loss by design (timeouts
//!   and the sync protocol), so the queue models a real NIC, not a log.
//! * [`node`] — one replica: listener, readers, verify pool, consensus
//!   loop, and the [`bamboo_core::runtime::Transport`] impl that turns
//!   protocol effects into frames.
//! * [`cluster`] — same-process loopback cluster (every node in one
//!   process, real sockets between them); the agreement tests' harness.
//! * [`process`] — one process per replica: spec via environment variable,
//!   `PORT`/`REPORT` stdout protocol, and the driver that distributes the
//!   peer table, submits load, probes progress and collects reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod frame;
pub mod node;
pub mod peer;
pub mod process;

pub use cluster::{TcpCluster, TcpClusterReport};
pub use frame::{Frame, FrameDecoder, FrameError, FrameKind, StatusReply, CLIENT_SENDER};
pub use node::{NodeNetStats, TcpNode, TcpNodeReport, DEFAULT_NODE_VERIFY_WORKERS};
pub use peer::{BackoffPolicy, PeerSender, PeerStats};
pub use process::{maybe_run_replica, ClusterSpec, ProcessCluster, ReplicaSpec, REPLICA_ENV};

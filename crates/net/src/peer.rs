//! Per-peer outbound connections: one writer thread per peer draining a
//! bounded queue, with retry/backoff connection establishment and automatic
//! reconnect.
//!
//! The send side of the transport's send/receive split: consensus threads
//! enqueue pre-encoded frames ([`PeerSender::send`] is a bounded `try_send`
//! plus an atomic bump — it never blocks and never touches a socket), and the
//! writer thread owns all the slow, fallible work: connecting with
//! exponential backoff, writing, and noticing death. A broadcast encodes the
//! frame once into an `Arc<[u8]>` and every peer queue gets a pointer bump,
//! extending the workspace's encode-once discipline across the socket
//! boundary.
//!
//! While a peer is down, frames addressed to it are dropped and counted
//! rather than buffered without bound: chained-BFT tolerates message loss by
//! construction (views time out, state transfer backfills), so the honest
//! failure mode is bounded memory plus a drop counter, not an unbounded
//! queue that turns one dead peer into an OOM.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::frame::{encode_frame, encode_hello, FrameKind};

/// Exponential-backoff schedule for connection attempts: delays double from
/// `initial` to `max` and reset to `initial` after a successful connect.
#[derive(Clone, Copy, Debug)]
pub struct BackoffPolicy {
    /// Delay after the first failed attempt.
    pub initial: Duration,
    /// Ceiling the doubling stops at.
    pub max: Duration,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        Self {
            initial: Duration::from_millis(10),
            max: Duration::from_secs(1),
        }
    }
}

impl BackoffPolicy {
    /// The delay following `current`: doubled, capped at `max`.
    pub fn next(&self, current: Duration) -> Duration {
        (current * 2).min(self.max)
    }
}

/// How long one connection attempt may block the writer thread.
const CONNECT_TIMEOUT: Duration = Duration::from_millis(500);
/// Writer wake-up granularity while the outbound queue is idle; bounds both
/// reconnect-attempt latency and shutdown latency.
const DRAIN_TICK: Duration = Duration::from_millis(10);
/// Outbound frames a peer queue holds before sends start dropping.
pub const DEFAULT_QUEUE_CAPACITY: usize = 1024;

/// Point-in-time snapshot of one peer link's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PeerStats {
    /// Connection attempts (successful or not).
    pub attempts: u64,
    /// Connections successfully established.
    pub connects: u64,
    /// Re-establishments after the first connect (`connects - 1`, floored).
    pub reconnects: u64,
    /// Frames written to the socket.
    pub frames_sent: u64,
    /// Bytes written to the socket (framing included).
    pub bytes_sent: u64,
    /// Frames dropped — queue full, peer down, or write failed.
    pub dropped: u64,
}

#[derive(Default)]
struct PeerCounters {
    attempts: AtomicU64,
    connects: AtomicU64,
    frames_sent: AtomicU64,
    bytes_sent: AtomicU64,
    dropped: AtomicU64,
}

impl PeerCounters {
    fn snapshot(&self) -> PeerStats {
        let connects = self.connects.load(Ordering::Acquire);
        PeerStats {
            attempts: self.attempts.load(Ordering::Acquire),
            connects,
            reconnects: connects.saturating_sub(1),
            frames_sent: self.frames_sent.load(Ordering::Acquire),
            bytes_sent: self.bytes_sent.load(Ordering::Acquire),
            dropped: self.dropped.load(Ordering::Acquire),
        }
    }
}

/// The sending half of one peer link.
///
/// Cheap to share behind an `Arc`; dropping the last clone of the internal
/// queue sender (via [`PeerSender::shutdown`] or dropping the whole struct)
/// is what tells the writer thread to exit.
pub struct PeerSender {
    queue: SyncSender<Arc<[u8]>>,
    addr: Arc<Mutex<Option<SocketAddr>>>,
    counters: Arc<PeerCounters>,
    writer: Option<JoinHandle<()>>,
}

impl PeerSender {
    /// Spawns the writer thread for one peer. `self_id` is announced in the
    /// hello frame that opens every connection; `addr` may start `None` (the
    /// multi-process mode learns addresses from the driver's peer table) and
    /// the writer waits until one is set.
    pub fn spawn(self_id: u64, addr: Option<SocketAddr>, policy: BackoffPolicy) -> Self {
        let (queue, receiver) = sync_channel::<Arc<[u8]>>(DEFAULT_QUEUE_CAPACITY);
        let addr = Arc::new(Mutex::new(addr));
        let counters = Arc::new(PeerCounters::default());
        let writer_addr = Arc::clone(&addr);
        let writer_counters = Arc::clone(&counters);
        let writer = std::thread::spawn(move || {
            run_writer(self_id, receiver, &writer_addr, &writer_counters, policy)
        });
        Self {
            queue,
            addr,
            counters,
            writer: Some(writer),
        }
    }

    /// Enqueues one pre-encoded frame. Never blocks: a full queue (slow or
    /// dead peer) drops the frame and bumps the drop counter.
    pub fn send(&self, frame: Arc<[u8]>) {
        match self.queue.try_send(frame) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => {
                self.counters.dropped.fetch_add(1, Ordering::Release);
            }
            Err(TrySendError::Disconnected(_)) => {}
        }
    }

    /// Points the link at a (new) listen address. The writer picks it up on
    /// its next connect attempt; an existing connection to the old address
    /// keeps draining until it fails.
    pub fn set_addr(&self, addr: SocketAddr) {
        *self.addr.lock().expect("peer addr lock poisoned") = Some(addr);
    }

    /// Snapshot of the link's counters.
    pub fn stats(&self) -> PeerStats {
        self.counters.snapshot()
    }

    /// Stops the writer thread and waits for it to exit.
    pub fn shutdown(mut self) {
        self.stop_writer();
    }

    fn stop_writer(&mut self) {
        // Replacing the queue sender with a dead one drops the original, so
        // the writer's receive loop sees Disconnected and exits.
        let (dead, _) = sync_channel(1);
        self.queue = dead;
        if let Some(writer) = self.writer.take() {
            let _ = writer.join();
        }
    }
}

impl Drop for PeerSender {
    fn drop(&mut self) {
        self.stop_writer();
    }
}

fn run_writer(
    self_id: u64,
    receiver: Receiver<Arc<[u8]>>,
    addr: &Mutex<Option<SocketAddr>>,
    counters: &PeerCounters,
    policy: BackoffPolicy,
) {
    let hello = encode_frame(FrameKind::Hello, &encode_hello(self_id));
    let mut conn: Option<TcpStream> = None;
    let mut backoff = policy.initial;
    let mut next_attempt = Instant::now();
    loop {
        // Connection establishment with retry/backoff. Attempted even while
        // the queue is idle, so a link is typically up before the first
        // frame wants out, and a dead peer is re-dialled on the backoff
        // schedule rather than on traffic.
        if conn.is_none() && Instant::now() >= next_attempt {
            let target = *addr.lock().expect("peer addr lock poisoned");
            if let Some(target) = target {
                counters.attempts.fetch_add(1, Ordering::Release);
                match try_connect(&target, &hello) {
                    Ok((stream, written)) => {
                        counters.connects.fetch_add(1, Ordering::Release);
                        counters.bytes_sent.fetch_add(written, Ordering::Release);
                        conn = Some(stream);
                        backoff = policy.initial;
                    }
                    Err(_) => {
                        next_attempt = Instant::now() + backoff;
                        backoff = policy.next(backoff);
                    }
                }
            }
        }

        match receiver.recv_timeout(DRAIN_TICK) {
            Ok(frame) => match conn.as_mut() {
                Some(stream) => {
                    if stream.write_all(&frame).is_ok() {
                        counters.frames_sent.fetch_add(1, Ordering::Release);
                        counters
                            .bytes_sent
                            .fetch_add(frame.len() as u64, Ordering::Release);
                    } else {
                        // The connection died mid-write; drop it (and this
                        // frame — the stream offset is unknown, resending
                        // could tear a frame) and fall back to the dialler.
                        conn = None;
                        counters.dropped.fetch_add(1, Ordering::Release);
                        next_attempt = Instant::now() + backoff;
                        backoff = policy.next(backoff);
                    }
                }
                None => {
                    counters.dropped.fetch_add(1, Ordering::Release);
                }
            },
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn try_connect(target: &SocketAddr, hello: &[u8]) -> std::io::Result<(TcpStream, u64)> {
    let mut stream = TcpStream::connect_timeout(target, CONNECT_TIMEOUT)?;
    // Consensus messages are small and latency-sensitive; never Nagle them.
    let _ = stream.set_nodelay(true);
    stream.write_all(hello)?;
    Ok((stream, hello.len() as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::net::TcpListener;

    fn read_exact_timeout(stream: &mut TcpStream, buf: &mut [u8]) {
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream.read_exact(buf).unwrap();
    }

    #[test]
    fn connects_sends_hello_then_frames() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let sender = PeerSender::spawn(7, Some(addr), BackoffPolicy::default());
        let (mut conn, _) = listener.accept().unwrap();
        sender.send(encode_frame(FrameKind::Msg, b"hi").into());
        let mut bytes = vec![0u8; 19 + 7];
        read_exact_timeout(&mut conn, &mut bytes);
        let mut decoder = crate::frame::FrameDecoder::new();
        decoder.push(&bytes);
        let hello = decoder.next_frame().unwrap().unwrap();
        assert_eq!(hello.kind, FrameKind::Hello);
        assert_eq!(crate::frame::decode_hello(&hello.payload), Ok(7));
        let msg = decoder.next_frame().unwrap().unwrap();
        assert_eq!(msg.payload, b"hi");
        // The bytes land on our socket before the writer thread bumps its
        // counters; poll instead of asserting a single snapshot.
        let deadline = Instant::now() + Duration::from_secs(5);
        while sender.stats().frames_sent < 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let stats = sender.stats();
        assert_eq!(stats.connects, 1);
        assert_eq!(stats.reconnects, 0);
        assert_eq!(stats.frames_sent, 1);
        assert!(stats.bytes_sent >= 19);
        sender.shutdown();
    }

    #[test]
    fn reconnects_with_backoff_after_listener_moves() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let sender = PeerSender::spawn(
            1,
            Some(addr),
            BackoffPolicy {
                initial: Duration::from_millis(5),
                max: Duration::from_millis(50),
            },
        );
        let (conn, _) = listener.accept().unwrap();
        // Kill the first connection *and* the listener: subsequent attempts
        // fail (counting attempts > connects) until a new listener appears
        // on a different port and the address is updated.
        drop(conn);
        drop(listener);
        // Push frames until the writer notices the dead socket.
        let deadline = Instant::now() + Duration::from_secs(5);
        while sender.stats().dropped == 0 && Instant::now() < deadline {
            sender.send(encode_frame(FrameKind::Msg, b"x").into());
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(sender.stats().dropped > 0, "dead socket noticed");
        let relocated = TcpListener::bind("127.0.0.1:0").unwrap();
        sender.set_addr(relocated.local_addr().unwrap());
        let (mut conn, _) = relocated.accept().unwrap();
        let mut hello = vec![0u8; 19];
        read_exact_timeout(&mut conn, &mut hello);
        let stats = sender.stats();
        assert_eq!(stats.connects, 2);
        assert_eq!(stats.reconnects, 1);
        assert!(
            stats.attempts >= stats.connects,
            "failed dials are counted: {stats:?}"
        );
        sender.shutdown();
    }

    #[test]
    fn frames_drop_while_peer_is_down_instead_of_blocking() {
        let sender = PeerSender::spawn(0, None, BackoffPolicy::default());
        for _ in 0..10 {
            sender.send(encode_frame(FrameKind::Msg, b"void").into());
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while sender.stats().dropped < 10 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(sender.stats().dropped, 10);
        assert_eq!(sender.stats().connects, 0);
        sender.shutdown();
    }
}

//! Same-process loopback TCP cluster: N [`TcpNode`]s, each with its own
//! listener on `127.0.0.1`, exchanging real frames over real sockets.
//!
//! This is the multi-listener test mode the multi-process pipeline builds
//! on: every thread, socket and frame is identical to the per-process
//! deployment, only the address table is known upfront instead of being
//! distributed by the driver. Tests use it to exercise connect, reconnect
//! and catch-up without process management flakiness.

use std::net::{SocketAddr, TcpListener};
use std::time::{Duration, Instant};

use bamboo_core::runtime::NodeHost;
use bamboo_core::threaded::ClusterReport;
use bamboo_crypto::KeyPair;
use bamboo_types::{ClientRequest, Config, NodeId, ProtocolKind, SimTime, Transaction};

use crate::node::{NodeNetStats, TcpNode, DEFAULT_NODE_VERIFY_WORKERS};
use crate::peer::BackoffPolicy;

/// A [`ClusterReport`] extended with the per-node network counters the
/// in-process backends have no equivalent for.
#[derive(Debug)]
pub struct TcpClusterReport {
    /// The protocol-level summary, same shape as the threaded backend's.
    pub cluster: ClusterReport,
    /// Per-node connection/reconnect/bytes counters, including nodes that
    /// were killed and replaced during the run (their counters are frozen at
    /// kill time and listed alongside the replacements').
    pub nodes: Vec<NodeNetStats>,
}

impl TcpClusterReport {
    /// Total outbound reconnects across the whole cluster.
    pub fn total_reconnects(&self) -> u64 {
        self.nodes.iter().map(NodeNetStats::reconnects).sum()
    }

    /// Total bytes written across the whole cluster.
    pub fn total_bytes_sent(&self) -> u64 {
        self.nodes.iter().map(NodeNetStats::bytes_sent).sum()
    }

    /// Total frames dropped at send queues across the whole cluster.
    pub fn total_dropped(&self) -> u64 {
        self.nodes.iter().map(NodeNetStats::dropped).sum()
    }
}

/// A loopback TCP cluster of socket-backed replicas in one process.
pub struct TcpCluster {
    config: Config,
    protocol: ProtocolKind,
    nodes: Vec<Option<TcpNode>>,
    addrs: Vec<SocketAddr>,
    retired: Vec<NodeNetStats>,
    started_at: Instant,
    next_seq: u64,
    verify_workers: usize,
    backoff: BackoffPolicy,
}

impl TcpCluster {
    /// Binds one listener per replica on `127.0.0.1:0` and spawns every node
    /// with the full address table, so consensus starts immediately.
    ///
    /// # Errors
    /// Fails if a listener cannot bind or a node cannot spawn.
    pub fn spawn(protocol: ProtocolKind, config: Config) -> std::io::Result<Self> {
        Self::spawn_with(
            protocol,
            config,
            DEFAULT_NODE_VERIFY_WORKERS,
            BackoffPolicy::default(),
        )
    }

    /// [`TcpCluster::spawn`] with explicit verify-worker count and backoff
    /// policy (tests shrink the backoff to keep reconnect runs fast).
    ///
    /// # Errors
    /// Fails if a listener cannot bind or a node cannot spawn.
    pub fn spawn_with(
        protocol: ProtocolKind,
        config: Config,
        verify_workers: usize,
        backoff: BackoffPolicy,
    ) -> std::io::Result<Self> {
        let listeners: Vec<TcpListener> = (0..config.nodes)
            .map(|_| TcpListener::bind("127.0.0.1:0"))
            .collect::<std::io::Result<_>>()?;
        let addrs: Vec<SocketAddr> = listeners
            .iter()
            .map(TcpListener::local_addr)
            .collect::<std::io::Result<_>>()?;
        let peer_addrs: Vec<Option<SocketAddr>> = addrs.iter().copied().map(Some).collect();
        let nodes = listeners
            .into_iter()
            .enumerate()
            .map(|(index, listener)| {
                TcpNode::spawn(
                    NodeId(index as u64),
                    protocol,
                    config.clone(),
                    listener,
                    peer_addrs.clone(),
                    verify_workers,
                    backoff,
                )
                .map(Some)
            })
            .collect::<std::io::Result<_>>()?;
        Ok(Self {
            config,
            protocol,
            nodes,
            addrs,
            retired: Vec::new(),
            started_at: Instant::now(),
            next_seq: 0,
            verify_workers,
            backoff,
        })
    }

    /// The listener addresses, indexed by replica.
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// Submits `count` transactions of `payload` bytes round-robin across
    /// the live replicas, continuing the sequence numbers of earlier calls.
    /// In signed-client mode each request carries the issuing client's
    /// signature so it passes the edge check.
    pub fn submit_round_robin(&mut self, count: u64, payload: usize) {
        let now = SimTime(self.started_at.elapsed().as_nanos() as u64);
        let client = NodeId(999);
        let keypair = self
            .config
            .signed_requests
            .then(|| KeyPair::client_from_seed(client.as_u64()));
        for _ in 0..count {
            let seq = self.next_seq;
            self.next_seq += 1;
            let tx = Transaction::new(client, seq, payload, now);
            let request = match &keypair {
                Some(keypair) => ClientRequest::signed(tx, keypair),
                None => ClientRequest::unsigned(tx),
            };
            let target = seq % self.config.nodes as u64;
            // Skew to the next live node if the round-robin target is down.
            let node = (0..self.config.nodes)
                .map(|offset| (target as usize + offset) % self.config.nodes)
                .find_map(|index| self.nodes[index].as_ref());
            if let Some(node) = node {
                node.submit(vec![request]);
            }
        }
    }

    /// The smallest committed-transaction count across live replicas — the
    /// whole-cluster progress floor (a lagging or freshly restarted replica
    /// holds it down until catch-up completes).
    pub fn committed_txs_floor(&self) -> u64 {
        self.nodes
            .iter()
            .flatten()
            .map(TcpNode::committed_txs)
            .min()
            .unwrap_or(0)
    }

    /// Runs until **every** live replica has committed at least `min_txs`
    /// transactions or `max_wait` elapses; returns whether the floor was
    /// reached. Polling the floor (not a single observer) makes this double
    /// as the catch-up oracle after a restart.
    pub fn run_until_committed(&self, min_txs: u64, max_wait: Duration) -> bool {
        let deadline = Instant::now() + max_wait;
        loop {
            if self.committed_txs_floor() >= min_txs {
                return true;
            }
            if Instant::now() >= deadline {
                return self.committed_txs_floor() >= min_txs;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Stops replica `id` and tears down its listener. Peers keep trying to
    /// reconnect on their backoff schedule; frames queued for the dead node
    /// are dropped and counted, never buffered unboundedly. The node's
    /// network counters are frozen into the final report.
    ///
    /// # Panics
    /// Panics if the replica is already down.
    pub fn kill(&mut self, id: NodeId) {
        let node = self.nodes[id.index()].take().expect("replica already down");
        let report = node.join();
        self.retired.push(report.stats);
    }

    /// Replaces a killed replica with a fresh one on a **new** port (the
    /// standard library exposes no `SO_REUSEADDR`, so rebinding the old
    /// address races with the kernel's TIME_WAIT) and tells every live peer
    /// the new address. The replacement starts from genesis and catches up
    /// through the sync protocol.
    ///
    /// # Errors
    /// Fails if the new listener cannot bind or the node cannot spawn.
    ///
    /// # Panics
    /// Panics if the replica is still running.
    pub fn restart(&mut self, id: NodeId) -> std::io::Result<()> {
        assert!(self.nodes[id.index()].is_none(), "replica still running");
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        self.addrs[id.index()] = addr;
        let peer_addrs: Vec<Option<SocketAddr>> = self.addrs.iter().copied().map(Some).collect();
        let node = TcpNode::spawn(
            id,
            self.protocol,
            self.config.clone(),
            listener,
            peer_addrs,
            self.verify_workers,
            self.backoff,
        )?;
        for peer in self.nodes.iter().flatten() {
            peer.update_peer(id, addr);
        }
        self.nodes[id.index()] = Some(node);
        Ok(())
    }

    /// Stops every node and builds the final report.
    pub fn shutdown(self) -> TcpClusterReport {
        self.shutdown_with_hosts().0
    }

    /// Like [`TcpCluster::shutdown`], but also hands back the live replicas'
    /// final [`NodeHost`]s (`None` for slots killed and never restarted) so
    /// tests can compare chain fingerprints directly.
    pub fn shutdown_with_hosts(mut self) -> (TcpClusterReport, Vec<Option<NodeHost>>) {
        let mut hosts: Vec<Option<NodeHost>> = Vec::with_capacity(self.nodes.len());
        let mut stats = std::mem::take(&mut self.retired);
        for node in self.nodes.drain(..) {
            match node {
                Some(node) => {
                    let report = node.join();
                    stats.push(report.stats);
                    hosts.push(Some(report.host));
                }
                None => hosts.push(None),
            }
        }
        let live: Vec<&NodeHost> = hosts.iter().flatten().collect();
        let auth_rejections: u64 = live.iter().map(|h| h.auth_rejections()).sum();
        let client_auth_rejections: u64 = live.iter().map(|h| h.client_auth_rejections()).sum();
        let replicas: Vec<_> = live.iter().map(|h| h.replica()).collect();
        let committed_blocks: Vec<usize> = hosts
            .iter()
            .map(|h| h.as_ref().map_or(0, |h| h.replica().ledger().len()))
            .collect();
        let committed_txs = replicas
            .iter()
            .map(|r| r.ledger().committed_txs())
            .max()
            .unwrap_or(0);
        let max_view = replicas
            .iter()
            .map(|r| r.current_view().as_u64())
            .max()
            .unwrap_or(0);
        let mut safety_violations: u64 = replicas.iter().map(|r| r.safety_violations()).sum();
        let timeout_view_changes: u64 = replicas.iter().map(|r| r.timeout_view_changes()).sum();
        let honest: Vec<_> = replicas
            .iter()
            .filter(|r| !self.config.is_byzantine(r.id()))
            .collect();
        let mut consistent = true;
        for pair in honest.windows(2) {
            if !pair[0].ledger().consistent_with(pair[1].ledger()) {
                consistent = false;
                safety_violations += 1;
            }
        }
        let cluster = ClusterReport {
            committed_blocks,
            committed_txs,
            max_view,
            ledgers_consistent: consistent,
            safety_violations,
            timeout_view_changes,
            auth_rejections,
            client_auth_rejections,
        };
        (
            TcpClusterReport {
                cluster,
                nodes: stats,
            },
            hosts,
        )
    }
}

//! Length-prefixed stream framing: `[u32 len][u8 kind][payload]`.
//!
//! The layout reuses the storage-record discipline from `bamboo-core`'s
//! segment log — a big-endian length prefix, a one-byte kind tag, an opaque
//! payload — minus the CRC: TCP already provides per-segment integrity, and
//! every consensus payload is structurally verified by the canonical codec
//! ([`bamboo_types::wire`]) on decode anyway (block ids re-derived,
//! signatures checked downstream by the authenticator).
//!
//! The [`FrameDecoder`] is incremental: readers push whatever byte ranges the
//! socket hands them — single bytes, half frames, three frames at once — and
//! pull out complete frames as they materialise. A partial frame simply waits
//! for more bytes; only an unknown kind tag or an oversized length is an
//! error, and both poison the connection (the stream offset can no longer be
//! trusted), mirroring how the storage decoder stops at its first torn
//! record.

use std::fmt;

use bamboo_types::wire::{put_u16, put_u32, put_u64, WireCursor};
use bamboo_types::{ClientRequest, WireError};

/// Bytes of framing overhead before the payload: 4-byte length + kind tag.
pub const FRAME_HEADER_BYTES: usize = 5;

/// Upper bound on a frame payload, mirroring the storage layer's record
/// bound. Anything larger is treated as stream corruption, not data.
pub const MAX_FRAME_PAYLOAD: usize = 64 << 20;

/// Wire-protocol magic + version carried in every [`FrameKind::Hello`], so a
/// stray connection from an incompatible build is rejected at the first
/// frame instead of misparsing consensus traffic.
pub const HELLO_MAGIC: &[u8; 4] = b"BNET";
/// Protocol version; bump for any framing or codec layout change.
pub const WIRE_VERSION: u16 = 1;

/// The sender id a non-replica (driver or client) connection announces in
/// its hello. Replica ids are dense from zero, so `u64::MAX` can never
/// collide with a validator.
pub const CLIENT_SENDER: u64 = u64::MAX;

/// What a frame carries.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum FrameKind {
    /// First frame on every connection: magic, version and the sender's id.
    Hello = 1,
    /// A consensus message in the canonical [`bamboo_types::wire`] encoding.
    Msg = 2,
    /// A batch of client requests (the driver's load-injection path).
    ClientBatch = 3,
    /// The id → listen-address table, sent by the multi-process driver once
    /// every replica's port is known (and re-sent after a restart moves one).
    PeerTable = 4,
    /// A status probe carrying an opaque token; the receiver answers with a
    /// [`FrameKind::StatusReply`] echoing it (round-trip latency probe).
    Status = 5,
    /// The reply to a status probe: token echo plus commit progress.
    StatusReply = 6,
    /// Orderly shutdown request from the driver.
    Shutdown = 7,
}

impl FrameKind {
    /// Decodes a kind tag.
    pub fn from_u8(tag: u8) -> Option<FrameKind> {
        match tag {
            1 => Some(FrameKind::Hello),
            2 => Some(FrameKind::Msg),
            3 => Some(FrameKind::ClientBatch),
            4 => Some(FrameKind::PeerTable),
            5 => Some(FrameKind::Status),
            6 => Some(FrameKind::StatusReply),
            7 => Some(FrameKind::Shutdown),
            _ => None,
        }
    }
}

/// Why a byte stream stopped decoding. Both cases mean the connection can no
/// longer be trusted and must be dropped (the peer will reconnect).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FrameError {
    /// The kind tag is not a known [`FrameKind`].
    UnknownKind(u8),
    /// The length prefix exceeds [`MAX_FRAME_PAYLOAD`].
    Oversized(u32),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::UnknownKind(tag) => write!(f, "unknown frame kind 0x{tag:02x}"),
            FrameError::Oversized(len) => write!(f, "frame payload of {len} bytes exceeds bound"),
        }
    }
}

impl std::error::Error for FrameError {}

/// One complete frame pulled out of the stream.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Frame {
    /// What the payload is.
    pub kind: FrameKind,
    /// The payload bytes (everything after the 5-byte header).
    pub payload: Vec<u8>,
}

/// Appends one framed payload to `out`.
pub fn frame_into(out: &mut Vec<u8>, kind: FrameKind, payload: &[u8]) {
    put_u32(out, payload.len() as u32);
    out.push(kind as u8);
    out.extend_from_slice(payload);
}

/// Encodes one framed payload into a fresh buffer.
pub fn encode_frame(kind: FrameKind, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    frame_into(&mut out, kind, payload);
    out
}

/// An incremental frame decoder over an arbitrary byte-chunk stream.
///
/// Bytes arrive via [`FrameDecoder::push`] in whatever chunks the socket
/// produces; [`FrameDecoder::next_frame`] yields complete frames and `None`
/// while the tail is still partial. Consumed bytes are compacted away
/// periodically so the buffer stays proportional to the unconsumed tail, not
/// the connection's lifetime.
#[derive(Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    start: usize,
}

/// Compact the buffer once this many consumed bytes accumulate at its front.
const COMPACT_THRESHOLD: usize = 64 * 1024;

impl FrameDecoder {
    /// Creates an empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends freshly received bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start >= COMPACT_THRESHOLD {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Pulls the next complete frame, or `None` while the tail is partial.
    ///
    /// # Errors
    ///
    /// Returns a [`FrameError`] when the header names an unknown kind or an
    /// oversized payload; the stream offset is unrecoverable after either.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        let pending = &self.buf[self.start..];
        if pending.len() < FRAME_HEADER_BYTES {
            return Ok(None);
        }
        let len = u32::from_be_bytes(pending[..4].try_into().unwrap());
        if len as usize > MAX_FRAME_PAYLOAD {
            return Err(FrameError::Oversized(len));
        }
        let kind = FrameKind::from_u8(pending[4]).ok_or(FrameError::UnknownKind(pending[4]))?;
        let total = FRAME_HEADER_BYTES + len as usize;
        if pending.len() < total {
            return Ok(None);
        }
        let payload = pending[FRAME_HEADER_BYTES..total].to_vec();
        self.start += total;
        Ok(Some(Frame { kind, payload }))
    }
}

// ---- control-frame payload codecs -------------------------------------------

/// Encodes a hello payload: magic, version, sender id.
pub fn encode_hello(sender: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(14);
    out.extend_from_slice(HELLO_MAGIC);
    put_u16(&mut out, WIRE_VERSION);
    put_u64(&mut out, sender);
    out
}

/// Decodes a hello payload, checking magic and version.
///
/// # Errors
///
/// Returns [`WireError::BadMagic`] / [`WireError::UnsupportedVersion`] for
/// incompatible peers and [`WireError::Truncated`] / [`WireError::Corrupt`]
/// for malformed payloads.
pub fn decode_hello(payload: &[u8]) -> Result<u64, WireError> {
    let mut cur = WireCursor::new(payload);
    if cur.take(4)? != HELLO_MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = cur.u16()?;
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let sender = cur.u64()?;
    if !cur.done() {
        return Err(WireError::Corrupt("trailing bytes after hello"));
    }
    Ok(sender)
}

/// Encodes a peer table: `(replica id, listen address)` entries. Addresses
/// travel as UTF-8 strings (the `SocketAddr` display form), which round-trips
/// both IPv4 and IPv6 without a bespoke binary layout.
pub fn encode_peer_table(peers: &[(u64, std::net::SocketAddr)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + peers.len() * 32);
    put_u32(&mut out, peers.len() as u32);
    for (id, addr) in peers {
        put_u64(&mut out, *id);
        let text = addr.to_string();
        put_u16(&mut out, text.len() as u16);
        out.extend_from_slice(text.as_bytes());
    }
    out
}

/// Decodes a peer table.
///
/// # Errors
///
/// Returns [`WireError::Truncated`] on short input and
/// [`WireError::Corrupt`] when an address fails to parse or bytes trail the
/// table.
pub fn decode_peer_table(payload: &[u8]) -> Result<Vec<(u64, std::net::SocketAddr)>, WireError> {
    let mut cur = WireCursor::new(payload);
    let count = cur.u32()? as usize;
    let mut peers = Vec::with_capacity(count.min(65_536));
    for _ in 0..count {
        let id = cur.u64()?;
        let len = cur.u16()? as usize;
        let text = std::str::from_utf8(cur.take(len)?)
            .map_err(|_| WireError::Corrupt("peer address is not UTF-8"))?;
        let addr = text
            .parse()
            .map_err(|_| WireError::Corrupt("peer address failed to parse"))?;
        peers.push((id, addr));
    }
    if !cur.done() {
        return Err(WireError::Corrupt("trailing bytes after peer table"));
    }
    Ok(peers)
}

/// Encodes a batch of client requests.
pub fn encode_client_batch(requests: &[ClientRequest]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + requests.len() * 64);
    put_u32(&mut out, requests.len() as u32);
    for request in requests {
        bamboo_types::wire::encode_client_request(&mut out, request);
    }
    out
}

/// Decodes a batch of client requests.
///
/// # Errors
///
/// Returns [`WireError::Truncated`] on short input and
/// [`WireError::Corrupt`] on malformed requests or trailing bytes.
pub fn decode_client_batch(payload: &[u8]) -> Result<Vec<ClientRequest>, WireError> {
    let mut cur = WireCursor::new(payload);
    let count = cur.u32()? as usize;
    let mut requests = Vec::with_capacity(count.min(65_536));
    for _ in 0..count {
        requests.push(bamboo_types::wire::decode_client_request(&mut cur)?);
    }
    if !cur.done() {
        return Err(WireError::Corrupt("trailing bytes after client batch"));
    }
    Ok(requests)
}

/// A replica's answer to a status probe.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StatusReply {
    /// The probe token, echoed back (lets one connection carry overlapping
    /// probes and still match replies to requests).
    pub token: u64,
    /// Transactions the replica has committed.
    pub committed_txs: u64,
    /// Blocks the replica has committed.
    pub committed_blocks: u64,
    /// The replica's current view.
    pub view: u64,
    /// The replica's committed-chain fingerprint (block-id chain hash).
    pub chain_fingerprint: [u8; 32],
}

/// Encodes a status probe. `prefix_len` of 0 asks for the fingerprint of the
/// replica's full committed chain; a positive value asks for the fingerprint
/// of the first `prefix_len` committed blocks (clamped to the chain length) —
/// the cross-process agreement oracle: probe everyone for their length, take
/// the minimum, probe again at that prefix and compare fingerprints.
pub fn encode_status(token: u64, prefix_len: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    put_u64(&mut out, token);
    put_u64(&mut out, prefix_len);
    out
}

/// Decodes a status probe into `(token, prefix_len)`.
///
/// # Errors
///
/// Returns [`WireError::Truncated`] / [`WireError::Corrupt`] on a malformed
/// probe.
pub fn decode_status(payload: &[u8]) -> Result<(u64, u64), WireError> {
    let mut cur = WireCursor::new(payload);
    let token = cur.u64()?;
    let prefix_len = cur.u64()?;
    if !cur.done() {
        return Err(WireError::Corrupt("trailing bytes after status"));
    }
    Ok((token, prefix_len))
}

/// Encodes a status reply.
pub fn encode_status_reply(reply: &StatusReply) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    put_u64(&mut out, reply.token);
    put_u64(&mut out, reply.committed_txs);
    put_u64(&mut out, reply.committed_blocks);
    put_u64(&mut out, reply.view);
    out.extend_from_slice(&reply.chain_fingerprint);
    out
}

/// Decodes a status reply.
///
/// # Errors
///
/// Returns [`WireError::Truncated`] / [`WireError::Corrupt`] on a malformed
/// reply.
pub fn decode_status_reply(payload: &[u8]) -> Result<StatusReply, WireError> {
    let mut cur = WireCursor::new(payload);
    let reply = StatusReply {
        token: cur.u64()?,
        committed_txs: cur.u64()?,
        committed_blocks: cur.u64()?,
        view: cur.u64()?,
        chain_fingerprint: cur.digest32()?,
    };
    if !cur.done() {
        return Err(WireError::Corrupt("trailing bytes after status reply"));
    }
    Ok(reply)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_through_the_decoder() {
        let mut stream = Vec::new();
        frame_into(&mut stream, FrameKind::Hello, &encode_hello(3));
        frame_into(&mut stream, FrameKind::Msg, b"payload");
        frame_into(&mut stream, FrameKind::Shutdown, &[]);
        let mut decoder = FrameDecoder::new();
        decoder.push(&stream);
        let hello = decoder.next_frame().unwrap().unwrap();
        assert_eq!(hello.kind, FrameKind::Hello);
        assert_eq!(decode_hello(&hello.payload), Ok(3));
        let msg = decoder.next_frame().unwrap().unwrap();
        assert_eq!(msg.kind, FrameKind::Msg);
        assert_eq!(msg.payload, b"payload");
        let shutdown = decoder.next_frame().unwrap().unwrap();
        assert_eq!(shutdown.kind, FrameKind::Shutdown);
        assert!(shutdown.payload.is_empty());
        assert_eq!(decoder.next_frame().unwrap(), None);
        assert_eq!(decoder.buffered(), 0);
    }

    #[test]
    fn unknown_kind_and_oversized_length_poison_the_stream() {
        let mut decoder = FrameDecoder::new();
        decoder.push(&[0, 0, 0, 1, 0xee, 42]);
        assert_eq!(decoder.next_frame(), Err(FrameError::UnknownKind(0xee)));
        let mut decoder = FrameDecoder::new();
        decoder.push(&u32::MAX.to_be_bytes());
        decoder.push(&[FrameKind::Msg as u8]);
        assert_eq!(decoder.next_frame(), Err(FrameError::Oversized(u32::MAX)));
    }

    #[test]
    fn hello_rejects_wrong_magic_and_version() {
        let mut bad_magic = encode_hello(1);
        bad_magic[0] = b'X';
        assert_eq!(decode_hello(&bad_magic), Err(WireError::BadMagic));
        let mut bad_version = encode_hello(1);
        bad_version[5] = 99;
        assert_eq!(
            decode_hello(&bad_version),
            Err(WireError::UnsupportedVersion(99))
        );
        assert_eq!(decode_hello(&[]), Err(WireError::Truncated));
    }

    #[test]
    fn peer_table_round_trips() {
        let peers: Vec<(u64, std::net::SocketAddr)> = vec![
            (0, "127.0.0.1:4000".parse().unwrap()),
            (1, "127.0.0.1:4001".parse().unwrap()),
            (2, "[::1]:9000".parse().unwrap()),
        ];
        let bytes = encode_peer_table(&peers);
        assert_eq!(decode_peer_table(&bytes).unwrap(), peers);
        assert!(decode_peer_table(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn status_reply_round_trips() {
        let reply = StatusReply {
            token: 7,
            committed_txs: 1234,
            committed_blocks: 56,
            view: 78,
            chain_fingerprint: [9u8; 32],
        };
        assert_eq!(
            decode_status_reply(&encode_status_reply(&reply)).unwrap(),
            reply
        );
        assert_eq!(decode_status(&encode_status(99, 4)).unwrap(), (99, 4));
    }
}

//! Configuration — the Rust equivalent of the paper's Table I plus the
//! parameters of the simulated deployment substrate.
//!
//! A [`Config`] is fixed for one run and shared (conceptually, as a JSON file)
//! by every node, exactly as in Bamboo. The [`ConfigBuilder`] provides the
//! ergonomic construction path used by examples and benches.

use crate::ids::NodeId;
use crate::time::SimDuration;

/// Which chained-BFT protocol a replica runs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ProtocolKind {
    /// Three-chain HotStuff (chained HotStuff).
    HotStuff,
    /// Two-chain HotStuff (2CHS).
    TwoChainHotStuff,
    /// Streamlet (longest notarized chain, broadcast votes, echoing).
    Streamlet,
    /// Fast-HotStuff (two-chain commit with aggregated-QC view change).
    FastHotStuff,
    /// LBFT-style leaderless rotation variant built on the framework
    /// (provided as a framework extension; not part of the paper's headline
    /// evaluation).
    Lbft,
    /// The independent "original HotStuff" baseline used in Fig. 9.
    OriginalHotStuff,
}

impl ProtocolKind {
    /// Short label used in benchmark output (matches the paper's figure
    /// legends: HS, 2CHS, SL, OHS).
    pub fn label(&self) -> &'static str {
        match self {
            ProtocolKind::HotStuff => "HS",
            ProtocolKind::TwoChainHotStuff => "2CHS",
            ProtocolKind::Streamlet => "SL",
            ProtocolKind::FastHotStuff => "FHS",
            ProtocolKind::Lbft => "LBFT",
            ProtocolKind::OriginalHotStuff => "OHS",
        }
    }

    /// The three protocols evaluated head-to-head in the paper.
    pub fn evaluated() -> [ProtocolKind; 3] {
        [
            ProtocolKind::HotStuff,
            ProtocolKind::TwoChainHotStuff,
            ProtocolKind::Streamlet,
        ]
    }

    /// Parses a figure-legend label back into a protocol kind — the inverse
    /// of [`ProtocolKind::label`], used by the scenario-spec parser.
    pub fn from_label(label: &str) -> Option<ProtocolKind> {
        match label {
            "HS" => Some(ProtocolKind::HotStuff),
            "2CHS" => Some(ProtocolKind::TwoChainHotStuff),
            "SL" => Some(ProtocolKind::Streamlet),
            "FHS" => Some(ProtocolKind::FastHotStuff),
            "LBFT" => Some(ProtocolKind::Lbft),
            "OHS" => Some(ProtocolKind::OriginalHotStuff),
            _ => None,
        }
    }
}

impl std::fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Byzantine strategy assigned to faulty replicas (Table I `strategy`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum ByzantineStrategy {
    /// Faulty replicas behave exactly like honest ones.
    #[default]
    Honest,
    /// Forking attack: propose on an older ancestor to overwrite uncommitted
    /// blocks (§IV-A1).
    Forking,
    /// Silence attack: withhold the proposal for the whole view (§IV-A2).
    Silence,
    /// Signature-forgery flood: replace every outbound vote with a burst of
    /// votes carrying invalid signatures, one minted in each replica's name
    /// (framework extension; exercises the authenticated ingress stage).
    ForgedVote,
    /// QC forgery: propose blocks whose justify QC claims quorum
    /// certification with fabricated signatures (framework extension).
    ForgedQc,
}

impl ByzantineStrategy {
    /// Parses the `strategy` label used by Table I and the scenario specs —
    /// the inverse of the [`std::fmt::Display`] rendering.
    pub fn from_label(label: &str) -> Option<ByzantineStrategy> {
        match label {
            "honest" => Some(ByzantineStrategy::Honest),
            "forking" => Some(ByzantineStrategy::Forking),
            "silence" => Some(ByzantineStrategy::Silence),
            "forged-vote" => Some(ByzantineStrategy::ForgedVote),
            "forged-qc" => Some(ByzantineStrategy::ForgedQc),
            _ => None,
        }
    }
}

impl std::fmt::Display for ByzantineStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ByzantineStrategy::Honest => "honest",
            ByzantineStrategy::Forking => "forking",
            ByzantineStrategy::Silence => "silence",
            ByzantineStrategy::ForgedVote => "forged-vote",
            ByzantineStrategy::ForgedQc => "forged-qc",
        };
        f.write_str(s)
    }
}

/// Leader election policy.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum LeaderPolicy {
    /// Round-robin rotation (`master = 0` in Table I).
    #[default]
    RoundRobin,
    /// A fixed static leader (`master = id`).
    Static(NodeId),
    /// Pseudo-random rotation derived from a hash of the view number — the
    /// "leader election based on hash functions" design choice discussed in
    /// §V-E.
    Hashed,
}

/// Full per-run configuration.
///
/// Field names and default values follow the paper's Table I; extra fields
/// configure the simulated network/CPU substrate (DESIGN.md §3).
#[derive(Clone, PartialEq, Debug)]
pub struct Config {
    // ---- Table I -------------------------------------------------------
    /// Number of replicas (the paper's `address` list length).
    pub nodes: usize,
    /// Leader election policy (`master`).
    pub leader_policy: LeaderPolicy,
    /// Byzantine strategy for faulty nodes (`strategy`).
    pub byzantine_strategy: ByzantineStrategy,
    /// Number of Byzantine nodes (`byzNo`). Byzantine ids are `0..byz_nodes`
    /// unless overridden by the runner.
    pub byz_nodes: usize,
    /// Maximum number of transactions per block (`bsize`, default 400).
    pub block_size: usize,
    /// Capacity of the memory pool (`memsize`, default 1000). The simulator
    /// uses it as a back-pressure bound on buffered transactions per replica.
    pub mempool_size: usize,
    /// Transaction payload size in bytes (`psize`, default 0).
    pub payload_size: usize,
    /// Additional one-way network delay added to every message (`delay`).
    pub extra_delay: SimDuration,
    /// Jitter (± uniform) applied to `extra_delay`, used for the paper's
    /// "5ms ± 1ms" / "10ms ± 2ms" settings.
    pub extra_delay_jitter: SimDuration,
    /// View-change timeout (`timeout`, default 100 ms).
    pub timeout: SimDuration,
    /// Benchmark duration (`runtime`, default 30 s of simulated time).
    pub runtime: SimDuration,
    /// Number of concurrent closed-loop clients (`concurrency`, default 10).
    pub concurrency: usize,

    // ---- Simulated substrate (DESIGN.md §3) -----------------------------
    /// Mean one-way network latency between any two nodes (µ/2 where µ is the
    /// RTT mean of §V-A2). Defaults to 0.25 ms, matching the paper's "inter-VM
    /// latency below 1 ms" data-centre setting.
    pub link_latency_mean: SimDuration,
    /// Standard deviation of the one-way latency.
    pub link_latency_std: SimDuration,
    /// Node NIC bandwidth in bytes per second (§V-B1).
    pub bandwidth_bytes_per_sec: u64,
    /// CPU time charged per cryptographic operation (`t_CPU`).
    pub cpu_delay: SimDuration,
    /// Open-loop transaction arrival rate in tx/s; `None` means closed-loop
    /// driven by `concurrency`.
    pub arrival_rate: Option<f64>,
    /// RNG seed: the whole run is a deterministic function of the config.
    pub seed: u64,
    /// Checkpoint cadence: take a snapshot every `n` committed blocks.
    /// `None` disables checkpointing (the default), which also disables
    /// amnesia recovery — a replica with no checkpoint restarts from genesis.
    pub checkpoint_interval: Option<u64>,

    // ---- Client-ingress pipeline (DESIGN.md §7) -------------------------
    /// Size of the simulated open-loop client population. `None` (the
    /// default) keeps the legacy single anonymous client; `Some(n)` spreads
    /// arrivals over `n` distinct clients whose identities (and, with
    /// [`Config::signed_requests`], keys) are derived lazily from the client
    /// id — memory stays O(1) in the population size.
    pub client_population: Option<u64>,
    /// When true, every client request is signed by the issuing client and
    /// verified at the replica edge through the batched 4-wide path, with the
    /// modeled CPU charged per arrival batch. Defaults to false (the paper's
    /// unauthenticated-client setting).
    pub signed_requests: bool,
    /// Number of independent mempool shards per replica (keyed by transaction
    /// id bits). `1` (the default) is byte-identical to the historical single
    /// queue; higher values bound per-shard capacity at `mempool_size /
    /// shards` and drain round-robin.
    pub mempool_shards: usize,

    // ---- Durable storage (DESIGN.md §8) ---------------------------------
    /// When true, every replica writes an append-only segment log (committed
    /// blocks, QCs, checkpoint markers, pre-vote safety records) and persists
    /// its checkpoint images, enabling durable restarts that replay local
    /// state instead of relying solely on network sync. Defaults to false:
    /// all recorded fingerprints predate durability and must stay valid.
    pub durable_log: bool,
    /// Fsync batching: flush the log after every `n` appended records.
    /// Safety records are always flushed immediately regardless of this
    /// setting — the vote must not outrun its durable watermark.
    pub fsync_interval: usize,
    /// Segment rotation threshold in bytes: a record that would grow the
    /// active segment past this size starts a new segment instead.
    pub segment_bytes: usize,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            nodes: 4,
            leader_policy: LeaderPolicy::RoundRobin,
            byzantine_strategy: ByzantineStrategy::Honest,
            byz_nodes: 0,
            block_size: 400,
            mempool_size: 100_000,
            payload_size: 0,
            extra_delay: SimDuration::ZERO,
            extra_delay_jitter: SimDuration::ZERO,
            timeout: SimDuration::from_millis(100),
            runtime: SimDuration::from_secs(30),
            concurrency: 10,
            link_latency_mean: SimDuration::from_micros(250),
            link_latency_std: SimDuration::from_micros(50),
            bandwidth_bytes_per_sec: 1_250_000_000, // 10 Gbit/s
            cpu_delay: SimDuration::from_micros(20),
            arrival_rate: None,
            seed: 42,
            checkpoint_interval: None,
            client_population: None,
            signed_requests: false,
            mempool_shards: 1,
            durable_log: false,
            fsync_interval: 8,
            segment_bytes: 1 << 20,
        }
    }
}

impl Config {
    /// Creates a builder pre-populated with the Table-I defaults.
    pub fn builder() -> ConfigBuilder {
        ConfigBuilder::default()
    }

    /// Quorum threshold (`2f + 1`) for this configuration.
    pub fn quorum(&self) -> usize {
        crate::ids::quorum_threshold(self.nodes)
    }

    /// Number of honest nodes.
    pub fn honest_nodes(&self) -> usize {
        self.nodes.saturating_sub(self.byz_nodes)
    }

    /// Returns true if `node` is configured to be Byzantine.
    pub fn is_byzantine(&self, node: NodeId) -> bool {
        self.byzantine_strategy != ByzantineStrategy::Honest && (node.index()) < self.byz_nodes
    }

    /// Validates internal consistency of the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`crate::TypeError::InvalidConfig`] describing the first
    /// violated constraint (zero nodes, too many Byzantine nodes, zero block
    /// size, or an empty runtime).
    pub fn validate(&self) -> Result<(), crate::TypeError> {
        if self.nodes == 0 {
            return Err(crate::TypeError::InvalidConfig(
                "nodes must be positive".into(),
            ));
        }
        if self.byz_nodes > crate::ids::max_faults(self.nodes) {
            return Err(crate::TypeError::InvalidConfig(format!(
                "{} byzantine nodes exceed the f = {} bound for n = {}",
                self.byz_nodes,
                crate::ids::max_faults(self.nodes),
                self.nodes
            )));
        }
        if self.block_size == 0 {
            return Err(crate::TypeError::InvalidConfig(
                "block size must be positive".into(),
            ));
        }
        if self.runtime.is_zero() {
            return Err(crate::TypeError::InvalidConfig(
                "runtime must be positive".into(),
            ));
        }
        if self.checkpoint_interval == Some(0) {
            return Err(crate::TypeError::InvalidConfig(
                "checkpoint interval must be positive when set".into(),
            ));
        }
        if self.client_population == Some(0) {
            return Err(crate::TypeError::InvalidConfig(
                "client population must be positive when set".into(),
            ));
        }
        if self.mempool_shards == 0 {
            return Err(crate::TypeError::InvalidConfig(
                "mempool shards must be positive".into(),
            ));
        }
        if self.fsync_interval == 0 {
            return Err(crate::TypeError::InvalidConfig(
                "fsync interval must be positive".into(),
            ));
        }
        if self.segment_bytes < 4096 {
            return Err(crate::TypeError::InvalidConfig(
                "segment size must be at least 4096 bytes".into(),
            ));
        }
        Ok(())
    }
}

/// Builder for [`Config`].
///
/// # Example
///
/// ```
/// use bamboo_types::{Config, SimDuration};
///
/// let config = Config::builder()
///     .nodes(8)
///     .block_size(400)
///     .payload_size(128)
///     .timeout(SimDuration::from_millis(50))
///     .seed(7)
///     .build()
///     .expect("valid config");
/// assert_eq!(config.quorum(), 6);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ConfigBuilder {
    config: Config,
}

impl ConfigBuilder {
    /// Sets the number of replicas.
    pub fn nodes(mut self, nodes: usize) -> Self {
        self.config.nodes = nodes;
        self
    }

    /// Sets the leader election policy.
    pub fn leader_policy(mut self, policy: LeaderPolicy) -> Self {
        self.config.leader_policy = policy;
        self
    }

    /// Sets the Byzantine strategy and the number of Byzantine nodes.
    pub fn byzantine(mut self, strategy: ByzantineStrategy, count: usize) -> Self {
        self.config.byzantine_strategy = strategy;
        self.config.byz_nodes = count;
        self
    }

    /// Sets the block size (transactions per block).
    pub fn block_size(mut self, bsize: usize) -> Self {
        self.config.block_size = bsize;
        self
    }

    /// Sets the mempool capacity.
    pub fn mempool_size(mut self, memsize: usize) -> Self {
        self.config.mempool_size = memsize;
        self
    }

    /// Sets the transaction payload size in bytes.
    pub fn payload_size(mut self, psize: usize) -> Self {
        self.config.payload_size = psize;
        self
    }

    /// Sets the additional per-message network delay and jitter.
    pub fn extra_delay(mut self, delay: SimDuration, jitter: SimDuration) -> Self {
        self.config.extra_delay = delay;
        self.config.extra_delay_jitter = jitter;
        self
    }

    /// Sets the view-change timeout.
    pub fn timeout(mut self, timeout: SimDuration) -> Self {
        self.config.timeout = timeout;
        self
    }

    /// Sets the benchmark runtime.
    pub fn runtime(mut self, runtime: SimDuration) -> Self {
        self.config.runtime = runtime;
        self
    }

    /// Sets the closed-loop client concurrency.
    pub fn concurrency(mut self, concurrency: usize) -> Self {
        self.config.concurrency = concurrency;
        self
    }

    /// Sets the base one-way link latency distribution.
    pub fn link_latency(mut self, mean: SimDuration, std: SimDuration) -> Self {
        self.config.link_latency_mean = mean;
        self.config.link_latency_std = std;
        self
    }

    /// Sets the NIC bandwidth in bytes per second.
    pub fn bandwidth(mut self, bytes_per_sec: u64) -> Self {
        self.config.bandwidth_bytes_per_sec = bytes_per_sec;
        self
    }

    /// Sets the CPU delay charged per crypto operation.
    pub fn cpu_delay(mut self, delay: SimDuration) -> Self {
        self.config.cpu_delay = delay;
        self
    }

    /// Switches the workload to open-loop Poisson arrivals at `tx_per_sec`.
    pub fn arrival_rate(mut self, tx_per_sec: f64) -> Self {
        self.config.arrival_rate = Some(tx_per_sec);
        self
    }

    /// Sets the deterministic RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Enables checkpointing: a snapshot every `blocks` committed blocks.
    pub fn checkpoint_interval(mut self, blocks: u64) -> Self {
        self.config.checkpoint_interval = Some(blocks);
        self
    }

    /// Spreads open-loop arrivals over a population of `clients` distinct
    /// simulated clients.
    pub fn client_population(mut self, clients: u64) -> Self {
        self.config.client_population = Some(clients);
        self
    }

    /// Enables per-client request signatures verified at the replica edge.
    pub fn signed_requests(mut self, signed: bool) -> Self {
        self.config.signed_requests = signed;
        self
    }

    /// Sets the number of mempool shards per replica.
    pub fn mempool_shards(mut self, shards: usize) -> Self {
        self.config.mempool_shards = shards;
        self
    }

    /// Enables the durable segment log and persisted checkpoint images.
    pub fn durable_log(mut self, durable: bool) -> Self {
        self.config.durable_log = durable;
        self
    }

    /// Sets the fsync batching interval (records per flush).
    pub fn fsync_interval(mut self, records: usize) -> Self {
        self.config.fsync_interval = records;
        self
    }

    /// Sets the segment rotation threshold in bytes.
    pub fn segment_bytes(mut self, bytes: usize) -> Self {
        self.config.segment_bytes = bytes;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Propagates the validation errors of [`Config::validate`].
    pub fn build(self) -> Result<Config, crate::TypeError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_one() {
        let c = Config::default();
        assert_eq!(c.block_size, 400, "bsize default");
        assert_eq!(c.payload_size, 0, "psize default");
        assert_eq!(c.timeout, SimDuration::from_millis(100), "timeout default");
        assert_eq!(c.runtime, SimDuration::from_secs(30), "runtime default");
        assert_eq!(c.concurrency, 10, "concurrency default");
        assert_eq!(c.byz_nodes, 0, "byzNo default");
        assert_eq!(c.byzantine_strategy, ByzantineStrategy::Honest);
        assert_eq!(
            c.leader_policy,
            LeaderPolicy::RoundRobin,
            "master=0 means rotating"
        );
        assert_eq!(c.extra_delay, SimDuration::ZERO, "delay default");
    }

    #[test]
    fn builder_round_trips_fields() {
        let c = Config::builder()
            .nodes(32)
            .byzantine(ByzantineStrategy::Forking, 4)
            .block_size(100)
            .payload_size(1024)
            .timeout(SimDuration::from_millis(50))
            .concurrency(20)
            .arrival_rate(50_000.0)
            .seed(99)
            .build()
            .unwrap();
        assert_eq!(c.nodes, 32);
        assert_eq!(c.byz_nodes, 4);
        assert_eq!(c.byzantine_strategy, ByzantineStrategy::Forking);
        assert_eq!(c.block_size, 100);
        assert_eq!(c.payload_size, 1024);
        assert_eq!(c.arrival_rate, Some(50_000.0));
        assert_eq!(c.seed, 99);
        assert_eq!(c.quorum(), 22);
        assert_eq!(c.honest_nodes(), 28);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        assert!(Config::builder().nodes(0).build().is_err());
        assert!(Config::builder()
            .nodes(4)
            .byzantine(ByzantineStrategy::Silence, 2)
            .build()
            .is_err());
        assert!(Config::builder().block_size(0).build().is_err());
        assert!(Config::builder()
            .runtime(SimDuration::ZERO)
            .build()
            .is_err());
        assert!(Config::builder().client_population(0).build().is_err());
        assert!(Config::builder().mempool_shards(0).build().is_err());
    }

    #[test]
    fn client_pipeline_defaults_preserve_legacy_behaviour() {
        let c = Config::default();
        assert_eq!(c.client_population, None);
        assert!(!c.signed_requests);
        assert_eq!(c.mempool_shards, 1);
        let tuned = Config::builder()
            .client_population(1_000_000)
            .signed_requests(true)
            .mempool_shards(8)
            .build()
            .unwrap();
        assert_eq!(tuned.client_population, Some(1_000_000));
        assert!(tuned.signed_requests);
        assert_eq!(tuned.mempool_shards, 8);
    }

    #[test]
    fn durable_storage_defaults_preserve_legacy_behaviour() {
        let c = Config::default();
        assert!(
            !c.durable_log,
            "durability is opt-in: old fingerprints hold"
        );
        assert_eq!(c.fsync_interval, 8);
        assert_eq!(c.segment_bytes, 1 << 20);
        let tuned = Config::builder()
            .durable_log(true)
            .fsync_interval(1)
            .segment_bytes(64 * 1024)
            .build()
            .unwrap();
        assert!(tuned.durable_log);
        assert_eq!(tuned.fsync_interval, 1);
        assert_eq!(tuned.segment_bytes, 64 * 1024);
        assert!(Config::builder().fsync_interval(0).build().is_err());
        assert!(Config::builder().segment_bytes(100).build().is_err());
    }

    #[test]
    fn byzantine_membership_uses_low_ids() {
        let c = Config::builder()
            .nodes(32)
            .byzantine(ByzantineStrategy::Silence, 3)
            .build()
            .unwrap();
        assert!(c.is_byzantine(NodeId(0)));
        assert!(c.is_byzantine(NodeId(2)));
        assert!(!c.is_byzantine(NodeId(3)));
        let honest = Config::default();
        assert!(!honest.is_byzantine(NodeId(0)));
    }

    #[test]
    fn protocol_labels_match_paper_legends() {
        assert_eq!(ProtocolKind::HotStuff.label(), "HS");
        assert_eq!(ProtocolKind::TwoChainHotStuff.label(), "2CHS");
        assert_eq!(ProtocolKind::Streamlet.label(), "SL");
        assert_eq!(ProtocolKind::OriginalHotStuff.label(), "OHS");
        assert_eq!(ProtocolKind::evaluated().len(), 3);
    }

    #[test]
    fn labels_round_trip_through_from_label() {
        for kind in [
            ProtocolKind::HotStuff,
            ProtocolKind::TwoChainHotStuff,
            ProtocolKind::Streamlet,
            ProtocolKind::FastHotStuff,
            ProtocolKind::Lbft,
            ProtocolKind::OriginalHotStuff,
        ] {
            assert_eq!(ProtocolKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(ProtocolKind::from_label("nope"), None);
        for strategy in [
            ByzantineStrategy::Honest,
            ByzantineStrategy::Forking,
            ByzantineStrategy::Silence,
            ByzantineStrategy::ForgedVote,
            ByzantineStrategy::ForgedQc,
        ] {
            assert_eq!(
                ByzantineStrategy::from_label(&strategy.to_string()),
                Some(strategy)
            );
        }
        assert_eq!(ByzantineStrategy::from_label("evil"), None);
    }

    #[test]
    fn configs_are_cloneable_and_comparable() {
        let c = Config::builder().nodes(8).seed(3).build().unwrap();
        let copy = c.clone();
        assert_eq!(c, copy);
        let mut other = c.clone();
        other.seed = 4;
        assert_ne!(c, other);
    }
}

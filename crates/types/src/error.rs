//! Error types shared across the workspace.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing or validating core data types.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum TypeError {
    /// A configuration constraint was violated.
    InvalidConfig(String),
    /// A block failed structural validation (bad id, bad height, ...).
    InvalidBlock(String),
    /// A certificate failed verification.
    InvalidCertificate(String),
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            TypeError::InvalidBlock(msg) => write!(f, "invalid block: {msg}"),
            TypeError::InvalidCertificate(msg) => write!(f, "invalid certificate: {msg}"),
        }
    }
}

impl Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_descriptive() {
        let err = TypeError::InvalidConfig("nodes must be positive".into());
        let rendered = err.to_string();
        assert!(rendered.starts_with("invalid configuration"));
        assert!(rendered.contains("nodes must be positive"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<TypeError>();
    }
}

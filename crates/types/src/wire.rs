//! The canonical binary encoding of consensus data on the wire and on disk.
//!
//! One byte layout serves three consumers: the checkpoint snapshot image
//! (`bamboo-forest`), the durable segment log records (`bamboo-core`'s
//! storage module) and the TCP transport frames (`bamboo-net`). Everything is
//! length-prefixed big-endian; digests and signatures are 32 raw bytes. The
//! encoding is *canonical* — re-encoding a decoded value is byte-identical —
//! which is what lets fingerprint comparisons and log replay double as
//! integrity checks.
//!
//! Block ids are re-derived from the decoded header and payload and compared
//! against the encoded id, so a corrupted or tampered block fails decoding
//! instead of poisoning a forest. Signatures are *not* checked here: a forged
//! signature decodes fine and then fails the [`crate::Authenticator`] (wire
//! integrity and authenticity are separate layers).

use std::fmt;

use bamboo_crypto::{AggregateSignature, Signature};

use crate::block::{Block, BlockId, SharedBlock};
use crate::bytes::Bytes;
use crate::certificate::{QuorumCert, TimeoutCert, TimeoutVote, Vote};
use crate::ids::{Height, NodeId, View};
use crate::message::{ClientRequest, ClientResponse, Message, SyncRequest, SyncResponse};
use crate::time::SimTime;
use crate::transaction::{Transaction, TxId};

/// Why a byte stream failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The byte stream ended before the structure was complete.
    Truncated,
    /// A magic prefix did not match the expected format.
    BadMagic,
    /// A version tag is newer than this decoder understands.
    UnsupportedVersion(u16),
    /// The structure decoded but an integrity check failed.
    Corrupt(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "byte stream truncated"),
            WireError::BadMagic => write!(f, "bad magic prefix"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::Corrupt(what) => write!(f, "corrupt encoding: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// A bounds-checked reader over an immutable byte slice.
///
/// Every decoder in the workspace reads through this cursor, so truncated
/// input surfaces as a typed [`WireError::Truncated`] everywhere instead of a
/// panic anywhere.
pub struct WireCursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireCursor<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Takes the next `n` bytes, or fails if fewer remain.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] at end of input.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian `u16`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] when fewer than 2 bytes remain.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a big-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] when fewer than 4 bytes remain.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a big-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] when fewer than 8 bytes remain.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a 32-byte digest or signature.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] when fewer than 32 bytes remain.
    pub fn digest32(&mut self) -> Result<[u8; 32], WireError> {
        Ok(self.take(32)?.try_into().unwrap())
    }

    /// True once every byte has been consumed.
    pub fn done(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

// ---- primitive writers ------------------------------------------------------

/// Appends a big-endian `u16`.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Appends a big-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Appends a big-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

// ---- consensus structures ---------------------------------------------------

/// Encodes a block: id, header fields, justify QC, then the length-prefixed
/// transaction payload.
pub fn encode_block(out: &mut Vec<u8>, block: &Block) {
    out.extend_from_slice(block.id.0.as_bytes());
    put_u64(out, block.view.as_u64());
    put_u64(out, block.height.as_u64());
    out.extend_from_slice(block.parent.0.as_bytes());
    put_u64(out, block.proposer.as_u64());
    encode_qc(out, &block.justify);
    put_u32(out, block.payload.len() as u32);
    for tx in &block.payload {
        encode_transaction(out, tx);
    }
}

/// Decodes a block and re-derives its id from the decoded contents.
///
/// # Errors
///
/// Returns [`WireError::Truncated`] on short input and
/// [`WireError::Corrupt`] when the encoded id does not match the re-derived
/// one.
pub fn decode_block(cur: &mut WireCursor<'_>) -> Result<Block, WireError> {
    let id = BlockId(bamboo_crypto::Digest::from_bytes(cur.digest32()?));
    let view = View(cur.u64()?);
    let height = Height(cur.u64()?);
    let parent = BlockId(bamboo_crypto::Digest::from_bytes(cur.digest32()?));
    let proposer = NodeId(cur.u64()?);
    let justify = decode_qc(cur)?;
    let tx_count = cur.u32()? as usize;
    let mut payload = Vec::with_capacity(tx_count.min(65_536));
    for _ in 0..tx_count {
        payload.push(decode_transaction(cur)?);
    }
    let block = Block::new(view, height, parent, proposer, justify, payload);
    if block.id != id {
        return Err(WireError::Corrupt("block id mismatch"));
    }
    Ok(block)
}

/// Encodes a transaction. The id is not emitted — it is derived from
/// `(client, seq)` on decode, which is also the integrity check.
pub fn encode_transaction(out: &mut Vec<u8>, tx: &Transaction) {
    put_u64(out, tx.client.as_u64());
    put_u64(out, tx.seq);
    put_u64(out, tx.issued_at.as_nanos());
    put_u32(out, tx.payload.len() as u32);
    out.extend_from_slice(&tx.payload);
}

/// Decodes a transaction, re-deriving its id.
///
/// # Errors
///
/// Returns [`WireError::Truncated`] on short input.
pub fn decode_transaction(cur: &mut WireCursor<'_>) -> Result<Transaction, WireError> {
    let client = NodeId(cur.u64()?);
    let seq = cur.u64()?;
    let issued_at = SimTime(cur.u64()?);
    let len = cur.u32()? as usize;
    let bytes = Bytes::from(cur.take(len)?);
    Ok(Transaction::with_payload(client, seq, bytes, issued_at))
}

/// Encodes a quorum certificate: block id, view, then the aggregate
/// signature as `(signer, signature)` entries in signer order.
pub fn encode_qc(out: &mut Vec<u8>, qc: &QuorumCert) {
    out.extend_from_slice(qc.block.0.as_bytes());
    put_u64(out, qc.view.as_u64());
    encode_aggregate(out, &qc.signatures);
}

/// Decodes a quorum certificate.
///
/// # Errors
///
/// Returns [`WireError::Truncated`] on short input and
/// [`WireError::Corrupt`] on duplicate signers.
pub fn decode_qc(cur: &mut WireCursor<'_>) -> Result<QuorumCert, WireError> {
    let block = BlockId(bamboo_crypto::Digest::from_bytes(cur.digest32()?));
    let view = View(cur.u64()?);
    let signatures = decode_aggregate(cur)?;
    Ok(QuorumCert {
        block,
        view,
        signatures,
    })
}

/// Encodes an optional QC behind a one-byte presence tag.
pub fn encode_opt_qc(out: &mut Vec<u8>, qc: Option<&QuorumCert>) {
    match qc {
        Some(qc) => {
            out.push(1);
            encode_qc(out, qc);
        }
        None => out.push(0),
    }
}

/// Decodes an optional QC.
///
/// # Errors
///
/// Returns [`WireError::Corrupt`] on an invalid presence tag and propagates
/// QC decoding errors.
pub fn decode_opt_qc(cur: &mut WireCursor<'_>) -> Result<Option<QuorumCert>, WireError> {
    match cur.u8()? {
        0 => Ok(None),
        1 => Ok(Some(decode_qc(cur)?)),
        _ => Err(WireError::Corrupt("invalid option tag")),
    }
}

fn encode_aggregate(out: &mut Vec<u8>, signatures: &AggregateSignature) {
    put_u32(out, signatures.len() as u32);
    for (signer, signature) in signatures.entries() {
        put_u64(out, signer);
        out.extend_from_slice(signature.as_bytes());
    }
}

fn decode_aggregate(cur: &mut WireCursor<'_>) -> Result<AggregateSignature, WireError> {
    let signers = cur.u32()? as usize;
    let mut signatures = AggregateSignature::new();
    for _ in 0..signers {
        let signer = cur.u64()?;
        let signature = Signature::from_bytes(cur.digest32()?);
        if !signatures.add(signer, signature) {
            return Err(WireError::Corrupt("duplicate aggregate signer"));
        }
    }
    Ok(signatures)
}

fn encode_vote(out: &mut Vec<u8>, vote: &Vote) {
    out.extend_from_slice(vote.block.0.as_bytes());
    put_u64(out, vote.view.as_u64());
    put_u64(out, vote.voter.as_u64());
    out.extend_from_slice(vote.signature.as_bytes());
}

fn decode_vote(cur: &mut WireCursor<'_>) -> Result<Vote, WireError> {
    let block = BlockId(bamboo_crypto::Digest::from_bytes(cur.digest32()?));
    let view = View(cur.u64()?);
    let voter = NodeId(cur.u64()?);
    let signature = Signature::from_bytes(cur.digest32()?);
    Ok(Vote {
        block,
        view,
        voter,
        signature,
    })
}

fn encode_timeout_vote(out: &mut Vec<u8>, tv: &TimeoutVote) {
    put_u64(out, tv.view.as_u64());
    put_u64(out, tv.voter.as_u64());
    encode_qc(out, &tv.high_qc);
    out.extend_from_slice(tv.signature.as_bytes());
}

fn decode_timeout_vote(cur: &mut WireCursor<'_>) -> Result<TimeoutVote, WireError> {
    let view = View(cur.u64()?);
    let voter = NodeId(cur.u64()?);
    let high_qc = decode_qc(cur)?;
    let signature = Signature::from_bytes(cur.digest32()?);
    Ok(TimeoutVote {
        view,
        voter,
        high_qc,
        signature,
    })
}

fn encode_timeout_cert(out: &mut Vec<u8>, tc: &TimeoutCert) {
    put_u64(out, tc.view.as_u64());
    encode_aggregate(out, &tc.signatures);
    encode_qc(out, &tc.high_qc);
}

fn decode_timeout_cert(cur: &mut WireCursor<'_>) -> Result<TimeoutCert, WireError> {
    let view = View(cur.u64()?);
    let signatures = decode_aggregate(cur)?;
    let high_qc = decode_qc(cur)?;
    Ok(TimeoutCert {
        view,
        signatures,
        high_qc,
    })
}

/// Encodes a client request: the transaction plus an optional signature
/// behind a one-byte presence tag.
pub fn encode_client_request(out: &mut Vec<u8>, request: &ClientRequest) {
    encode_transaction(out, &request.transaction);
    match &request.signature {
        Some(signature) => {
            out.push(1);
            out.extend_from_slice(signature.as_bytes());
        }
        None => out.push(0),
    }
}

/// Decodes a client request.
///
/// # Errors
///
/// Returns [`WireError::Truncated`] on short input and
/// [`WireError::Corrupt`] on an invalid signature-presence tag.
pub fn decode_client_request(cur: &mut WireCursor<'_>) -> Result<ClientRequest, WireError> {
    let transaction = decode_transaction(cur)?;
    let signature = match cur.u8()? {
        0 => None,
        1 => Some(Signature::from_bytes(cur.digest32()?)),
        _ => return Err(WireError::Corrupt("invalid option tag")),
    };
    Ok(ClientRequest {
        transaction,
        signature,
    })
}

fn encode_client_response(out: &mut Vec<u8>, response: &ClientResponse) {
    out.extend_from_slice(response.tx.0.as_bytes());
    put_u64(out, response.client.as_u64());
    put_u64(out, response.issued_at.as_nanos());
    put_u64(out, response.committed_at.as_nanos());
}

fn decode_client_response(cur: &mut WireCursor<'_>) -> Result<ClientResponse, WireError> {
    let tx = TxId(bamboo_crypto::Digest::from_bytes(cur.digest32()?));
    let client = NodeId(cur.u64()?);
    let issued_at = SimTime(cur.u64()?);
    let committed_at = SimTime(cur.u64()?);
    Ok(ClientResponse {
        tx,
        client,
        issued_at,
        committed_at,
    })
}

fn encode_sync_request(out: &mut Vec<u8>, request: &SyncRequest) {
    put_u64(out, request.requester.as_u64());
    out.extend_from_slice(request.head.0.as_bytes());
    put_u64(out, request.height.as_u64());
    out.extend_from_slice(request.signature.as_bytes());
}

fn decode_sync_request(cur: &mut WireCursor<'_>) -> Result<SyncRequest, WireError> {
    let requester = NodeId(cur.u64()?);
    let head = BlockId(bamboo_crypto::Digest::from_bytes(cur.digest32()?));
    let height = Height(cur.u64()?);
    let signature = Signature::from_bytes(cur.digest32()?);
    Ok(SyncRequest {
        requester,
        head,
        height,
        signature,
    })
}

fn encode_sync_response(out: &mut Vec<u8>, response: &SyncResponse) {
    put_u64(out, response.responder.as_u64());
    match &response.snapshot {
        Some(snapshot) => {
            out.push(1);
            put_u32(out, snapshot.len() as u32);
            out.extend_from_slice(snapshot);
        }
        None => out.push(0),
    }
    put_u32(out, response.blocks.len() as u32);
    for block in &response.blocks {
        encode_block(out, block);
    }
    encode_qc(out, &response.high_qc);
}

fn decode_sync_response(cur: &mut WireCursor<'_>) -> Result<SyncResponse, WireError> {
    let responder = NodeId(cur.u64()?);
    let snapshot = match cur.u8()? {
        0 => None,
        1 => {
            let len = cur.u32()? as usize;
            Some(Bytes::from(cur.take(len)?))
        }
        _ => return Err(WireError::Corrupt("invalid option tag")),
    };
    let block_count = cur.u32()? as usize;
    let mut blocks = Vec::with_capacity(block_count.min(65_536));
    for _ in 0..block_count {
        blocks.push(SharedBlock::new(decode_block(cur)?));
    }
    let high_qc = decode_qc(cur)?;
    Ok(SyncResponse {
        responder,
        snapshot,
        blocks,
        high_qc,
    })
}

// ---- message envelope -------------------------------------------------------

const TAG_PROPOSAL: u8 = 1;
const TAG_VOTE: u8 = 2;
const TAG_VOTE_ECHO: u8 = 3;
const TAG_PROPOSAL_ECHO: u8 = 4;
const TAG_TIMEOUT: u8 = 5;
const TAG_TIMEOUT_CERT: u8 = 6;
const TAG_NEW_VIEW: u8 = 7;
const TAG_REQUEST: u8 = 8;
const TAG_RESPONSE: u8 = 9;
const TAG_SYNC_REQUEST: u8 = 10;
const TAG_SYNC_RESPONSE: u8 = 11;

/// Appends the canonical encoding of a message envelope: a one-byte variant
/// tag followed by the variant body.
pub fn encode_message_into(out: &mut Vec<u8>, message: &Message) {
    match message {
        Message::Proposal(block) => {
            out.push(TAG_PROPOSAL);
            encode_block(out, block);
        }
        Message::Vote(vote) => {
            out.push(TAG_VOTE);
            encode_vote(out, vote);
        }
        Message::VoteEcho(vote) => {
            out.push(TAG_VOTE_ECHO);
            encode_vote(out, vote);
        }
        Message::ProposalEcho(block) => {
            out.push(TAG_PROPOSAL_ECHO);
            encode_block(out, block);
        }
        Message::Timeout(tv) => {
            out.push(TAG_TIMEOUT);
            encode_timeout_vote(out, tv);
        }
        Message::TimeoutCertMsg(tc) => {
            out.push(TAG_TIMEOUT_CERT);
            encode_timeout_cert(out, tc);
        }
        Message::NewView(qc) => {
            out.push(TAG_NEW_VIEW);
            encode_qc(out, qc);
        }
        Message::Request(request) => {
            out.push(TAG_REQUEST);
            encode_client_request(out, request);
        }
        Message::Response(response) => {
            out.push(TAG_RESPONSE);
            encode_client_response(out, response);
        }
        Message::SyncRequest(request) => {
            out.push(TAG_SYNC_REQUEST);
            encode_sync_request(out, request);
        }
        Message::SyncResponse(response) => {
            out.push(TAG_SYNC_RESPONSE);
            encode_sync_response(out, response);
        }
    }
}

/// Encodes a message envelope into a fresh buffer sized from
/// [`Message::wire_size`].
pub fn encode_message(message: &Message) -> Vec<u8> {
    let mut out = Vec::with_capacity(message.wire_size() + 1);
    encode_message_into(&mut out, message);
    out
}

/// Decodes a message envelope, rejecting trailing bytes: messages arrive
/// framed, so slack after the body means the frame and the body disagree.
///
/// # Errors
///
/// Returns the [`WireError`] describing the first structural or integrity
/// violation (unknown tag, truncation, id mismatch, trailing bytes).
pub fn decode_message(bytes: &[u8]) -> Result<Message, WireError> {
    let mut cur = WireCursor::new(bytes);
    let message = match cur.u8()? {
        TAG_PROPOSAL => Message::Proposal(SharedBlock::new(decode_block(&mut cur)?)),
        TAG_VOTE => Message::Vote(decode_vote(&mut cur)?),
        TAG_VOTE_ECHO => Message::VoteEcho(decode_vote(&mut cur)?),
        TAG_PROPOSAL_ECHO => Message::ProposalEcho(SharedBlock::new(decode_block(&mut cur)?)),
        TAG_TIMEOUT => Message::Timeout(decode_timeout_vote(&mut cur)?),
        TAG_TIMEOUT_CERT => Message::TimeoutCertMsg(decode_timeout_cert(&mut cur)?),
        TAG_NEW_VIEW => Message::NewView(decode_qc(&mut cur)?),
        TAG_REQUEST => Message::Request(decode_client_request(&mut cur)?),
        TAG_RESPONSE => Message::Response(decode_client_response(&mut cur)?),
        TAG_SYNC_REQUEST => Message::SyncRequest(decode_sync_request(&mut cur)?),
        TAG_SYNC_RESPONSE => Message::SyncResponse(decode_sync_response(&mut cur)?),
        _ => return Err(WireError::Corrupt("unknown message tag")),
    };
    if !cur.done() {
        return Err(WireError::Corrupt("trailing bytes after message"));
    }
    Ok(message)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bamboo_crypto::KeyPair;

    fn sample_block(txs: u64) -> Block {
        Block::new(
            View(3),
            Height(1),
            BlockId::GENESIS,
            NodeId(2),
            QuorumCert::genesis(),
            (0..txs)
                .map(|i| Transaction::new(NodeId(1_000_000 + i), i, 48, SimTime(i * 10)))
                .collect(),
        )
    }

    fn sample_qc() -> QuorumCert {
        let kps: Vec<KeyPair> = (0..4).map(KeyPair::from_seed).collect();
        let block = sample_block(1);
        let votes: Vec<Vote> = (0..3)
            .map(|i| Vote::new(block.id, block.view, NodeId(i), &kps[i as usize]))
            .collect();
        QuorumCert::from_votes(block.id, block.view, &votes)
    }

    fn every_message() -> Vec<Message> {
        let kp = KeyPair::from_seed(0);
        let client = KeyPair::client_from_seed(7);
        let block = SharedBlock::new(sample_block(3));
        let vote = Vote::new(block.id, block.view, NodeId(1), &kp);
        let tv = TimeoutVote::new(View(9), NodeId(2), sample_qc(), &kp);
        let tc = TimeoutCert::from_votes(View(9), std::slice::from_ref(&tv));
        let tx = Transaction::new(NodeId(1_000_007), 4, 16, SimTime(77));
        vec![
            Message::Proposal(block.clone()),
            Message::Vote(vote.clone()),
            Message::VoteEcho(vote),
            Message::ProposalEcho(block.clone()),
            Message::Timeout(tv),
            Message::TimeoutCertMsg(tc),
            Message::NewView(sample_qc()),
            Message::Request(ClientRequest::unsigned(tx.clone())),
            Message::Request(ClientRequest::signed(tx.clone(), &client)),
            Message::Response(ClientResponse {
                tx: tx.id,
                client: tx.client,
                issued_at: SimTime(77),
                committed_at: SimTime(300),
            }),
            Message::SyncRequest(SyncRequest::new(
                NodeId(3),
                BlockId::GENESIS,
                Height::GENESIS,
                &kp,
            )),
            Message::SyncResponse(SyncResponse {
                responder: NodeId(0),
                snapshot: Some(Bytes::from(&b"fake snapshot bytes"[..])),
                blocks: vec![block],
                high_qc: sample_qc(),
            }),
        ]
    }

    #[test]
    fn every_variant_round_trips_canonically() {
        for msg in every_message() {
            let bytes = encode_message(&msg);
            let decoded = decode_message(&bytes)
                .unwrap_or_else(|e| panic!("{} failed to decode: {e}", msg.tag()));
            assert_eq!(decoded, msg, "{}", msg.tag());
            // Canonical: re-encoding the decoded value is byte-identical.
            assert_eq!(encode_message(&decoded), bytes, "{}", msg.tag());
        }
    }

    #[test]
    fn every_truncation_fails_cleanly() {
        for msg in every_message() {
            let bytes = encode_message(&msg);
            for cut in 0..bytes.len() {
                assert!(
                    decode_message(&bytes[..cut]).is_err(),
                    "{} prefix of {cut} bytes decoded",
                    msg.tag()
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        for msg in every_message() {
            let mut bytes = encode_message(&msg);
            bytes.push(0);
            assert_eq!(
                decode_message(&bytes).err(),
                Some(WireError::Corrupt("trailing bytes after message")),
                "{}",
                msg.tag()
            );
        }
    }

    #[test]
    fn unknown_tag_is_rejected() {
        assert_eq!(
            decode_message(&[0xee, 1, 2, 3]).err(),
            Some(WireError::Corrupt("unknown message tag"))
        );
        assert_eq!(decode_message(&[]).err(), Some(WireError::Truncated));
    }

    #[test]
    fn tampered_block_id_is_rejected() {
        let bytes = encode_message(&Message::Proposal(SharedBlock::new(sample_block(2))));
        let mut tampered = bytes.clone();
        tampered[1] ^= 0xff; // first byte of the block id
        assert!(matches!(
            decode_message(&tampered),
            Err(WireError::Corrupt("block id mismatch"))
        ));
        // Tampering a header field (the view, right after the 32-byte id)
        // changes the re-derived id, so it is caught the same way.
        let mut tampered = bytes;
        tampered[40] ^= 0xff;
        assert!(decode_message(&tampered).is_err());
    }

    #[test]
    fn duplicate_aggregate_signer_is_rejected() {
        let kp = KeyPair::from_seed(0);
        let block = sample_block(0);
        let vote = Vote::new(block.id, block.view, NodeId(1), &kp);
        let qc = QuorumCert::from_votes(block.id, block.view, std::slice::from_ref(&vote));
        let mut bytes = Vec::new();
        encode_qc(&mut bytes, &qc);
        // Append the same signer entry again and bump the count.
        let entry = bytes[44..].to_vec();
        bytes.extend_from_slice(&entry);
        bytes[40..44].copy_from_slice(&2u32.to_be_bytes());
        let mut cur = WireCursor::new(&bytes);
        assert_eq!(
            decode_qc(&mut cur).err(),
            Some(WireError::Corrupt("duplicate aggregate signer"))
        );
    }

    #[test]
    fn cursor_reports_remaining_and_done() {
        let mut cur = WireCursor::new(&[1, 2, 3, 4]);
        assert_eq!(cur.remaining(), 4);
        assert_eq!(cur.u16().unwrap(), 0x0102);
        assert!(!cur.done());
        assert_eq!(cur.remaining(), 2);
        assert_eq!(cur.u16().unwrap(), 0x0304);
        assert!(cur.done());
        assert_eq!(cur.u8().err(), Some(WireError::Truncated));
    }
}

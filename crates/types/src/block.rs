//! Blocks and block identifiers.

use std::fmt;
use std::sync::Arc;

use bamboo_crypto::{Digest, Sha256};

use crate::certificate::QuorumCert;
use crate::ids::{Height, NodeId, View};
use crate::transaction::Transaction;

/// A shared, immutable handle to a block.
///
/// Proposal payloads dominate message size (a 400-tx block is tens of
/// kilobytes), so blocks travel and are stored behind an `Arc`: broadcasting a
/// proposal to `n - 1` peers and inserting it into every replica's block
/// forest costs `n` pointer bumps instead of `n` payload copies. A block is
/// hashed at construction and never mutated
/// afterwards, which is what makes the sharing sound.
pub type SharedBlock = Arc<Block>;

/// Identifier of a block: the hash of its header.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct BlockId(pub Digest);

impl BlockId {
    /// The id of the genesis block.
    pub const GENESIS: BlockId = BlockId(Digest::ZERO);

    /// Returns true if this is the genesis id.
    pub fn is_genesis(&self) -> bool {
        self.0.is_zero()
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_genesis() {
            write!(f, "B(genesis)")
        } else {
            write!(f, "B({})", self.0.short_hex())
        }
    }
}

/// A block in the chained-BFT blockchain.
///
/// Every block carries the quorum certificate of (one of) its ancestors in the
/// `justify` field — in the happy path this is the QC of its direct parent —
/// plus a batch of transactions and bookkeeping metadata.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Block {
    /// Hash of the header (computed at construction time).
    pub id: BlockId,
    /// The view in which the block was proposed (its subscript in the paper's
    /// figures).
    pub view: View,
    /// Height in the block tree (parent height + 1).
    pub height: Height,
    /// Identifier of the parent block.
    pub parent: BlockId,
    /// Replica that proposed the block.
    pub proposer: NodeId,
    /// Quorum certificate carried by the block (the proposer's `hQC`).
    pub justify: QuorumCert,
    /// The batch of transactions ordered by this block.
    pub payload: Vec<Transaction>,
}

impl Block {
    /// Constructs the genesis block. Every replica starts with the same
    /// genesis block and its (empty, trusted) genesis certificate.
    pub fn genesis() -> Self {
        Self {
            id: BlockId::GENESIS,
            view: View::GENESIS,
            height: Height::GENESIS,
            parent: BlockId::GENESIS,
            proposer: NodeId(0),
            justify: QuorumCert::genesis(),
            payload: Vec::new(),
        }
    }

    /// Builds a new block and computes its id.
    pub fn new(
        view: View,
        height: Height,
        parent: BlockId,
        proposer: NodeId,
        justify: QuorumCert,
        payload: Vec<Transaction>,
    ) -> Self {
        let id = Self::compute_id(view, height, parent, proposer, &justify, &payload);
        Self {
            id,
            view,
            height,
            parent,
            proposer,
            justify,
            payload,
        }
    }

    /// Computes the block id from header fields and the payload transaction
    /// ids (a Merkle-style binding simplified to a running hash).
    pub fn compute_id(
        view: View,
        height: Height,
        parent: BlockId,
        proposer: NodeId,
        justify: &QuorumCert,
        payload: &[Transaction],
    ) -> BlockId {
        let mut hasher = Sha256::new();
        hasher.update(b"bamboo-block-v1");
        hasher.update(&view.as_u64().to_be_bytes());
        hasher.update(&height.as_u64().to_be_bytes());
        hasher.update(parent.0.as_bytes());
        hasher.update(&proposer.as_u64().to_be_bytes());
        hasher.update(justify.block.0.as_bytes());
        hasher.update(&justify.view.as_u64().to_be_bytes());
        for tx in payload {
            hasher.update(tx.id.0.as_bytes());
        }
        BlockId(Digest::from_bytes(hasher.finalize()))
    }

    /// Returns true if this is the genesis block.
    pub fn is_genesis(&self) -> bool {
        self.id.is_genesis()
    }

    /// Number of transactions in the block.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// Returns true if the block carries no transactions.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }

    /// Fixed serialisation overhead of a block header (id, view, height,
    /// parent, proposer) excluding the justify QC and payload.
    pub const HEADER_BYTES: usize = 32 + 8 + 8 + 32 + 8;

    /// Approximate wire size of the block in bytes, used by the NIC/bandwidth
    /// model to compute transmission delay.
    pub fn wire_size(&self) -> usize {
        Self::HEADER_BYTES
            + self.justify.wire_size()
            + self
                .payload
                .iter()
                .map(Transaction::wire_size)
                .sum::<usize>()
    }

    /// Verifies that the stored id matches the header contents.
    pub fn verify_id(&self) -> bool {
        if self.is_genesis() {
            return true;
        }
        self.id
            == Self::compute_id(
                self.view,
                self.height,
                self.parent,
                self.proposer,
                &self.justify,
                &self.payload,
            )
    }
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}@{} h={} parent={} txs={}",
            self.id,
            self.view,
            self.height.as_u64(),
            self.parent,
            self.payload.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn tx(seq: u64) -> Transaction {
        Transaction::new(NodeId(9), seq, 16, SimTime::ZERO)
    }

    #[test]
    fn genesis_block_is_self_parented() {
        let g = Block::genesis();
        assert!(g.is_genesis());
        assert_eq!(g.parent, BlockId::GENESIS);
        assert_eq!(g.height, Height::GENESIS);
        assert!(g.verify_id());
        assert!(g.is_empty());
    }

    #[test]
    fn block_id_binds_header_and_payload() {
        let qc = QuorumCert::genesis();
        let b1 = Block::new(
            View(1),
            Height(1),
            BlockId::GENESIS,
            NodeId(0),
            qc.clone(),
            vec![tx(1)],
        );
        let b2 = Block::new(
            View(1),
            Height(1),
            BlockId::GENESIS,
            NodeId(0),
            qc.clone(),
            vec![tx(2)],
        );
        let b3 = Block::new(
            View(2),
            Height(1),
            BlockId::GENESIS,
            NodeId(0),
            qc,
            vec![tx(1)],
        );
        assert_ne!(b1.id, b2.id, "payload is bound");
        assert_ne!(b1.id, b3.id, "view is bound");
        assert!(b1.verify_id());
        assert!(b2.verify_id());
    }

    #[test]
    fn tampered_block_fails_verification() {
        let mut b = Block::new(
            View(1),
            Height(1),
            BlockId::GENESIS,
            NodeId(0),
            QuorumCert::genesis(),
            vec![tx(1)],
        );
        b.payload.push(tx(2));
        assert!(!b.verify_id());
    }

    #[test]
    fn wire_size_grows_with_payload() {
        let empty = Block::new(
            View(1),
            Height(1),
            BlockId::GENESIS,
            NodeId(0),
            QuorumCert::genesis(),
            vec![],
        );
        let full = Block::new(
            View(1),
            Height(1),
            BlockId::GENESIS,
            NodeId(0),
            QuorumCert::genesis(),
            (0..10).map(tx).collect(),
        );
        assert!(full.wire_size() > empty.wire_size());
        assert_eq!(
            full.wire_size() - empty.wire_size(),
            10 * (Transaction::HEADER_BYTES + 16)
        );
    }

    #[test]
    fn display_mentions_view_and_height() {
        let b = Block::new(
            View(3),
            Height(2),
            BlockId::GENESIS,
            NodeId(1),
            QuorumCert::genesis(),
            vec![],
        );
        let rendered = b.to_string();
        assert!(rendered.contains("v3"));
        assert!(rendered.contains("h=2"));
    }
}

//! Identifier newtypes: nodes, views and heights.

use std::fmt;

/// Identifier of a replica (or client) in the system.
///
/// Node ids are dense integers `0..N`; the quorum size and round-robin leader
/// election are computed from them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(pub u64);

impl NodeId {
    /// Returns the raw integer id.
    pub fn as_u64(&self) -> u64 {
        self.0
    }

    /// Returns the id as a usize index (for dense per-node vectors).
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u64> for NodeId {
    fn from(v: u64) -> Self {
        NodeId(v)
    }
}

/// A protocol view (round). Each view has a single designated leader.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct View(pub u64);

impl View {
    /// The genesis view.
    pub const GENESIS: View = View(0);

    /// Returns the raw view number.
    pub fn as_u64(&self) -> u64 {
        self.0
    }

    /// The next view.
    pub fn next(&self) -> View {
        View(self.0 + 1)
    }

    /// The previous view, saturating at zero.
    pub fn prev(&self) -> View {
        View(self.0.saturating_sub(1))
    }

    /// Returns `self + n`.
    pub fn advanced_by(&self, n: u64) -> View {
        View(self.0 + n)
    }
}

impl fmt::Display for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u64> for View {
    fn from(v: u64) -> Self {
        View(v)
    }
}

/// The height of a block in the block forest (distance from genesis along its
/// branch). Heights increase strictly monotonically from parent to child.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Height(pub u64);

impl Height {
    /// The genesis height.
    pub const GENESIS: Height = Height(0);

    /// Returns the raw height.
    pub fn as_u64(&self) -> u64 {
        self.0
    }

    /// The next (child) height.
    pub fn next(&self) -> Height {
        Height(self.0 + 1)
    }
}

impl fmt::Display for Height {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

impl From<u64> for Height {
    fn from(v: u64) -> Self {
        Height(v)
    }
}

/// Computes the classic BFT quorum threshold `2f + 1` for `n = 3f + 1 + r`
/// nodes, i.e. `ceil(2n/3)` votes are required (strictly more than two thirds
/// when `n` is not of the form `3f + 1`).
///
/// # Example
///
/// ```
/// use bamboo_types::ids::quorum_threshold;
/// assert_eq!(quorum_threshold(4), 3);
/// assert_eq!(quorum_threshold(7), 5);
/// assert_eq!(quorum_threshold(32), 22);
/// ```
pub fn quorum_threshold(n: usize) -> usize {
    // Maximum tolerated faults f = floor((n - 1) / 3); quorum = n - f.
    let f = (n.saturating_sub(1)) / 3;
    n - f
}

/// Maximum number of Byzantine faults tolerated by `n` replicas.
pub fn max_faults(n: usize) -> usize {
    (n.saturating_sub(1)) / 3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_arithmetic() {
        let v = View(5);
        assert_eq!(v.next(), View(6));
        assert_eq!(v.prev(), View(4));
        assert_eq!(View(0).prev(), View(0));
        assert_eq!(v.advanced_by(10), View(15));
    }

    #[test]
    fn height_ordering() {
        assert!(Height(3) < Height(4));
        assert_eq!(Height::GENESIS.next(), Height(1));
    }

    #[test]
    fn quorum_thresholds_match_bft_bounds() {
        assert_eq!(quorum_threshold(1), 1);
        assert_eq!(quorum_threshold(4), 3);
        assert_eq!(quorum_threshold(5), 4);
        assert_eq!(quorum_threshold(7), 5);
        assert_eq!(quorum_threshold(8), 6);
        assert_eq!(quorum_threshold(16), 11);
        assert_eq!(quorum_threshold(32), 22);
        assert_eq!(quorum_threshold(64), 43);
    }

    #[test]
    fn max_faults_is_consistent_with_quorum() {
        for n in 1..200usize {
            let f = max_faults(n);
            let q = quorum_threshold(n);
            // Two quorums always intersect in at least one honest node.
            assert!(2 * q > n + f, "n={n} q={q} f={f}");
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(View(9).to_string(), "v9");
        assert_eq!(Height(2).to_string(), "h2");
    }
}

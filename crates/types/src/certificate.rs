//! Votes, quorum certificates and timeout certificates.

use std::fmt;

use bamboo_crypto::{AggregateSignature, Digest, KeyPair, PublicKey, Sha256, Signature};

use crate::block::BlockId;
use crate::ids::{NodeId, View};

/// A vote cast by one replica for one block in one view.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Vote {
    /// The block being voted for.
    pub block: BlockId,
    /// The view the block was proposed in.
    pub view: View,
    /// The voting replica.
    pub voter: NodeId,
    /// Signature over `(block, view)`.
    pub signature: Signature,
}

impl Vote {
    /// Creates and signs a vote.
    pub fn new(block: BlockId, view: View, voter: NodeId, keypair: &KeyPair) -> Self {
        let signature = keypair.sign(&Self::signing_bytes(block, view));
        Self {
            block,
            view,
            voter,
            signature,
        }
    }

    /// The canonical byte string a vote signs.
    pub fn signing_bytes(block: BlockId, view: View) -> [u8; 40] {
        let mut buf = [0u8; 40];
        buf[..32].copy_from_slice(block.0.as_bytes());
        buf[32..].copy_from_slice(&view.as_u64().to_be_bytes());
        buf
    }

    /// Verifies the vote's signature against the voter's public key.
    pub fn verify(&self, public_key: &PublicKey) -> bool {
        public_key.verify(&Self::signing_bytes(self.block, self.view), &self.signature)
    }

    /// Approximate wire size in bytes.
    pub fn wire_size(&self) -> usize {
        32 + 8 + 8 + 32
    }
}

impl fmt::Display for Vote {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vote({} for {} @ {})", self.voter, self.block, self.view)
    }
}

/// A quorum certificate: proof that a quorum of replicas voted for `block` in
/// `view`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct QuorumCert {
    /// The certified block.
    pub block: BlockId,
    /// The view in which the block was certified.
    pub view: View,
    /// Aggregated votes.
    pub signatures: AggregateSignature,
}

impl QuorumCert {
    /// The (trusted, empty) certificate for the genesis block.
    pub fn genesis() -> Self {
        Self {
            block: BlockId::GENESIS,
            view: View::GENESIS,
            signatures: AggregateSignature::new(),
        }
    }

    /// Builds a certificate from collected votes. The caller (the Quorum
    /// component) is responsible for checking the threshold.
    pub fn from_votes(block: BlockId, view: View, votes: &[Vote]) -> Self {
        let mut signatures = AggregateSignature::new();
        for vote in votes {
            debug_assert_eq!(vote.block, block);
            debug_assert_eq!(vote.view, view);
            signatures.add(vote.voter.as_u64(), vote.signature);
        }
        Self {
            block,
            view,
            signatures,
        }
    }

    /// Returns true if this is the genesis certificate.
    pub fn is_genesis(&self) -> bool {
        self.block.is_genesis() && self.view == View::GENESIS
    }

    /// Number of signers in the certificate.
    pub fn signer_count(&self) -> usize {
        self.signatures.len()
    }

    /// Verifies every signature in the certificate and checks the quorum
    /// threshold for a system of `n` replicas.
    pub fn verify<F>(&self, n: usize, key_of: F) -> bool
    where
        F: Fn(u64) -> Option<PublicKey>,
    {
        if self.is_genesis() {
            return true;
        }
        if self.signer_count() < crate::ids::quorum_threshold(n) {
            return false;
        }
        self.signatures
            .verify(&Vote::signing_bytes(self.block, self.view), key_of)
    }

    /// A digest uniquely identifying the certificate contents.
    pub fn digest(&self) -> Digest {
        let mut hasher = Sha256::new();
        hasher.update(b"bamboo-qc-v1");
        hasher.update(self.block.0.as_bytes());
        hasher.update(&self.view.as_u64().to_be_bytes());
        for signer in self.signatures.signers() {
            hasher.update(&signer.to_be_bytes());
        }
        Digest::from_bytes(hasher.finalize())
    }

    /// Approximate wire size in bytes.
    pub fn wire_size(&self) -> usize {
        32 + 8 + self.signatures.wire_size()
    }
}

impl fmt::Display for QuorumCert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "QC({} @ {}, {} sigs)",
            self.block,
            self.view,
            self.signer_count()
        )
    }
}

/// A timeout vote broadcast by a replica that gave up on the current view.
///
/// Carries the sender's highest known QC so the next leader can adopt it, as
/// in the LibraBFT pacemaker the paper adopts.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TimeoutVote {
    /// The view being abandoned.
    pub view: View,
    /// The sender.
    pub voter: NodeId,
    /// The sender's highest quorum certificate.
    pub high_qc: QuorumCert,
    /// Signature over the view number.
    pub signature: Signature,
}

impl TimeoutVote {
    /// Creates and signs a timeout vote.
    pub fn new(view: View, voter: NodeId, high_qc: QuorumCert, keypair: &KeyPair) -> Self {
        let signature = keypair.sign(&Self::signing_bytes(view));
        Self {
            view,
            voter,
            high_qc,
            signature,
        }
    }

    /// The canonical byte string a timeout vote signs.
    pub fn signing_bytes(view: View) -> [u8; 16] {
        let mut buf = [0u8; 16];
        buf[..8].copy_from_slice(b"timeout!");
        buf[8..].copy_from_slice(&view.as_u64().to_be_bytes());
        buf
    }

    /// Verifies the signature.
    pub fn verify(&self, public_key: &PublicKey) -> bool {
        public_key.verify(&Self::signing_bytes(self.view), &self.signature)
    }

    /// Approximate wire size in bytes.
    pub fn wire_size(&self) -> usize {
        8 + 8 + 32 + self.high_qc.wire_size()
    }
}

/// A timeout certificate: proof that a quorum of replicas timed out in `view`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TimeoutCert {
    /// The abandoned view.
    pub view: View,
    /// Aggregated timeout signatures.
    pub signatures: AggregateSignature,
    /// The highest QC among the contributing timeout votes.
    pub high_qc: QuorumCert,
}

impl TimeoutCert {
    /// Builds a timeout certificate from collected timeout votes; the highest
    /// contained QC (by view) is retained.
    pub fn from_votes(view: View, votes: &[TimeoutVote]) -> Self {
        let mut signatures = AggregateSignature::new();
        let mut high_qc = QuorumCert::genesis();
        for vote in votes {
            debug_assert_eq!(vote.view, view);
            signatures.add(vote.voter.as_u64(), vote.signature);
            if vote.high_qc.view > high_qc.view {
                high_qc = vote.high_qc.clone();
            }
        }
        Self {
            view,
            signatures,
            high_qc,
        }
    }

    /// Number of signers.
    pub fn signer_count(&self) -> usize {
        self.signatures.len()
    }

    /// Verifies every signature and the quorum threshold for `n` replicas.
    pub fn verify<F>(&self, n: usize, key_of: F) -> bool
    where
        F: Fn(u64) -> Option<PublicKey>,
    {
        if self.signer_count() < crate::ids::quorum_threshold(n) {
            return false;
        }
        self.signatures
            .verify(&TimeoutVote::signing_bytes(self.view), key_of)
    }

    /// Approximate wire size in bytes.
    pub fn wire_size(&self) -> usize {
        8 + self.signatures.wire_size() + self.high_qc.wire_size()
    }
}

impl fmt::Display for TimeoutCert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TC({} sigs @ {})", self.signer_count(), self.view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: u64) -> Vec<KeyPair> {
        (0..n).map(KeyPair::from_seed).collect()
    }

    fn block_id(tag: u8) -> BlockId {
        BlockId(Digest::of(&[tag]))
    }

    #[test]
    fn vote_sign_and_verify() {
        let kps = keys(2);
        let vote = Vote::new(block_id(1), View(3), NodeId(0), &kps[0]);
        assert!(vote.verify(&kps[0].public_key()));
        assert!(!vote.verify(&kps[1].public_key()));
    }

    #[test]
    fn qc_from_votes_reaches_quorum() {
        let kps = keys(4);
        let bid = block_id(7);
        let votes: Vec<Vote> = kps
            .iter()
            .enumerate()
            .take(3)
            .map(|(i, kp)| Vote::new(bid, View(2), NodeId(i as u64), kp))
            .collect();
        let qc = QuorumCert::from_votes(bid, View(2), &votes);
        assert_eq!(qc.signer_count(), 3);
        let pks: Vec<_> = kps.iter().map(|k| k.public_key()).collect();
        assert!(qc.verify(4, |i| pks.get(i as usize).copied()));
    }

    #[test]
    fn qc_below_threshold_fails_verification() {
        let kps = keys(4);
        let bid = block_id(7);
        let votes: Vec<Vote> = kps
            .iter()
            .enumerate()
            .take(2)
            .map(|(i, kp)| Vote::new(bid, View(2), NodeId(i as u64), kp))
            .collect();
        let qc = QuorumCert::from_votes(bid, View(2), &votes);
        let pks: Vec<_> = kps.iter().map(|k| k.public_key()).collect();
        assert!(!qc.verify(4, |i| pks.get(i as usize).copied()));
    }

    #[test]
    fn genesis_qc_always_verifies() {
        let qc = QuorumCert::genesis();
        assert!(qc.is_genesis());
        assert!(qc.verify(100, |_| None));
    }

    #[test]
    fn qc_digest_distinguishes_blocks_and_signers() {
        let kps = keys(4);
        let votes_a: Vec<Vote> = (0..3)
            .map(|i| Vote::new(block_id(1), View(2), NodeId(i), &kps[i as usize]))
            .collect();
        let votes_b: Vec<Vote> = (0..3)
            .map(|i| Vote::new(block_id(2), View(2), NodeId(i), &kps[i as usize]))
            .collect();
        let qc_a = QuorumCert::from_votes(block_id(1), View(2), &votes_a);
        let qc_b = QuorumCert::from_votes(block_id(2), View(2), &votes_b);
        assert_ne!(qc_a.digest(), qc_b.digest());
        let qc_a_fewer = QuorumCert::from_votes(block_id(1), View(2), &votes_a[..2]);
        assert_ne!(qc_a.digest(), qc_a_fewer.digest());
    }

    #[test]
    fn timeout_cert_keeps_highest_qc() {
        let kps = keys(4);
        let low_qc = QuorumCert::from_votes(
            block_id(1),
            View(1),
            &(0..3)
                .map(|i| Vote::new(block_id(1), View(1), NodeId(i), &kps[i as usize]))
                .collect::<Vec<_>>(),
        );
        let high_qc = QuorumCert::from_votes(
            block_id(2),
            View(5),
            &(0..3)
                .map(|i| Vote::new(block_id(2), View(5), NodeId(i), &kps[i as usize]))
                .collect::<Vec<_>>(),
        );
        let votes = vec![
            TimeoutVote::new(View(6), NodeId(0), low_qc, &kps[0]),
            TimeoutVote::new(View(6), NodeId(1), high_qc.clone(), &kps[1]),
            TimeoutVote::new(View(6), NodeId(2), QuorumCert::genesis(), &kps[2]),
        ];
        let tc = TimeoutCert::from_votes(View(6), &votes);
        assert_eq!(tc.high_qc, high_qc);
        assert_eq!(tc.signer_count(), 3);
        let pks: Vec<_> = kps.iter().map(|k| k.public_key()).collect();
        assert!(tc.verify(4, |i| pks.get(i as usize).copied()));
        assert!(!tc.verify(16, |i| pks.get(i as usize).copied()));
    }

    #[test]
    fn timeout_vote_verify_rejects_other_view_signature() {
        let kps = keys(1);
        let tv = TimeoutVote::new(View(3), NodeId(0), QuorumCert::genesis(), &kps[0]);
        assert!(tv.verify(&kps[0].public_key()));
        let mut forged = tv.clone();
        forged.view = View(4);
        assert!(!forged.verify(&kps[0].public_key()));
    }

    #[test]
    fn wire_sizes_are_positive_and_monotone() {
        let kps = keys(4);
        let bid = block_id(1);
        let one_vote =
            QuorumCert::from_votes(bid, View(1), &[Vote::new(bid, View(1), NodeId(0), &kps[0])]);
        let three_votes = QuorumCert::from_votes(
            bid,
            View(1),
            &(0..3)
                .map(|i| Vote::new(bid, View(1), NodeId(i), &kps[i as usize]))
                .collect::<Vec<_>>(),
        );
        assert!(three_votes.wire_size() > one_vote.wire_size());
        assert!(Vote::new(bid, View(1), NodeId(0), &kps[0]).wire_size() > 0);
    }
}

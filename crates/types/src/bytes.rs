//! A minimal cheaply-cloneable byte buffer.
//!
//! Transaction payloads are cloned every time a block is broadcast, echoed or
//! re-queued, so payload bytes are reference-counted: cloning a [`Bytes`] is a
//! pointer copy, never a memcpy. This replaces the external `bytes` crate with
//! the small subset of its API the workspace actually uses.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
///
/// # Example
///
/// ```
/// use bamboo_types::Bytes;
///
/// let payload = Bytes::from(vec![1u8, 2, 3]);
/// let copy = payload.clone(); // O(1), shares the allocation
/// assert_eq!(&*copy, &[1, 2, 3]);
/// assert_eq!(payload.len(), 3);
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a buffer filled with `len` zero bytes.
    pub fn zeroed(len: usize) -> Self {
        Bytes(vec![0u8; len].into())
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns true if the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(bytes: Vec<u8>) -> Self {
        Bytes(bytes.into())
    }
}

impl From<&[u8]> for Bytes {
    fn from(bytes: &[u8]) -> Self {
        Bytes(bytes.into())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} B)", self.0.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_paths_agree() {
        assert_eq!(Bytes::zeroed(4), Bytes::from(vec![0u8; 4]));
        assert_eq!(Bytes::from(&b"abc"[..]).as_slice(), b"abc");
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from(&b"xy"[..]).len(), 2);
    }

    #[test]
    fn clones_share_the_allocation() {
        let a = Bytes::from(vec![7u8; 1024]);
        let b = a.clone();
        assert!(std::ptr::eq(a.as_slice().as_ptr(), b.as_slice().as_ptr()));
        assert_eq!(a, b);
    }

    #[test]
    fn deref_exposes_slice_methods() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.iter().sum::<u8>(), 6);
        assert_eq!(&b[1..], &[2, 3]);
    }
}

//! The authenticated ingress stage: verify every inbound message before it
//! reaches the replica state machine.
//!
//! The paper's analytical model makes cryptographic cost (`t_CPU`) a
//! first-class driver of chained-BFT performance, and the attack surface of a
//! real deployment starts at the wire: a replica must not act on a vote, QC or
//! timeout certificate whose signatures it has not checked. This module is
//! the chokepoint that enforces it:
//!
//! * [`Authenticator`] holds the validator set's public keys and verifies
//!   every message variant — proposals (block id + justify QC), votes,
//!   timeout votes (signature + embedded high-QC), timeout certificates and
//!   NewView QCs — rejecting forgeries with a typed [`AuthError`].
//! * [`VerifiedMessage`] is the proof-of-verification token: it can only be
//!   constructed by [`Authenticator::authenticate`], so any component whose
//!   input type is `VerifiedMessage` is statically guaranteed to never see an
//!   unchecked signature.
//!
//! Certificate checks are *signer-count aware*: the quorum threshold is
//! checked before any signature work, so a sub-quorum certificate is rejected
//! for free, and the per-signer checks go through one reused
//! [`BatchVerifier`], amortising signing-bytes construction across the whole
//! aggregate.
//!
//! Client traffic ([`crate::Message::Request`] / [`crate::Message::Response`])
//! passes through unchecked by default: clients are not part of the validator
//! set and transaction authentication is out of scope for the paper's
//! performance study. The opt-in signed-client mode
//! ([`Authenticator::set_signed_clients`], driven by
//! [`crate::Config::signed_requests`]) changes that for requests: each one
//! must carry the issuing client's signature over a fixed 40-byte tuple, the
//! client's public key is re-derived lazily from its id (no O(clients) key
//! table), and whole arrival batches are checked through the same 4-wide
//! batched pass as quorum certificates
//! ([`Authenticator::verify_client_batch`]).

use std::fmt;

use bamboo_crypto::{BatchVerifier, KeyPair, PublicKey};

use crate::block::Block;
use crate::certificate::{QuorumCert, TimeoutCert, TimeoutVote, Vote};
use crate::ids::{quorum_threshold, NodeId, View};
use crate::message::{ClientRequest, Message, SharedMessage, SyncRequest, SyncResponse};

/// Why an inbound message was rejected at the ingress stage.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AuthError {
    /// A signer index does not belong to the validator set.
    UnknownSigner(NodeId),
    /// A vote signature does not verify under the voter's public key.
    BadVoteSignature(NodeId),
    /// A block's stored id does not match its header and payload.
    BadBlockId(View),
    /// A certificate carries fewer signers than the quorum threshold.
    SubQuorumCert {
        /// Signers present in the certificate.
        got: usize,
        /// Quorum threshold (`2f + 1`).
        need: usize,
    },
    /// At least one signature inside a quorum certificate is invalid.
    BadQcSignature(View),
    /// A timeout-vote signature does not verify under the voter's key.
    BadTimeoutSignature(NodeId),
    /// At least one signature inside a timeout certificate is invalid.
    BadTcSignature(View),
    /// A sync request's signature does not verify under the requester's key.
    BadSyncSignature(NodeId),
    /// Signed-client mode is on but the request carries no signature.
    UnsignedClientRequest(NodeId),
    /// A client-request signature does not verify under the client's key.
    BadClientSignature(NodeId),
}

impl fmt::Display for AuthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuthError::UnknownSigner(node) => write!(f, "unknown signer {node}"),
            AuthError::BadVoteSignature(node) => write!(f, "invalid vote signature from {node}"),
            AuthError::BadBlockId(view) => write!(f, "block id mismatch in proposal @ {view}"),
            AuthError::SubQuorumCert { got, need } => {
                write!(f, "sub-quorum certificate: {got} signers, need {need}")
            }
            AuthError::BadQcSignature(view) => write!(f, "invalid QC signature @ {view}"),
            AuthError::BadTimeoutSignature(node) => {
                write!(f, "invalid timeout signature from {node}")
            }
            AuthError::BadTcSignature(view) => write!(f, "invalid TC signature @ {view}"),
            AuthError::BadSyncSignature(node) => {
                write!(f, "invalid sync-request signature from {node}")
            }
            AuthError::UnsignedClientRequest(client) => {
                write!(f, "unsigned client request from {client}")
            }
            AuthError::BadClientSignature(client) => {
                write!(f, "invalid client-request signature from {client}")
            }
        }
    }
}

impl std::error::Error for AuthError {}

/// A message that has passed cryptographic verification.
///
/// The only constructors are [`Authenticator::authenticate`] and
/// [`Authenticator::authenticate_shared`]; holding a `VerifiedMessage` *is*
/// the proof that every signature the message carries has been checked
/// against the validator set.
///
/// The token holds the message behind a [`SharedMessage`] handle, so cloning
/// it — the verify pool and the simulator both verify a broadcast once and
/// fan the token out to every recipient — is a pointer bump, never an
/// envelope copy. The sole remaining holder recovers the owned message for
/// free via [`VerifiedMessage::into_parts`].
#[derive(Clone, Debug)]
pub struct VerifiedMessage {
    from: NodeId,
    message: SharedMessage,
}

impl VerifiedMessage {
    /// The transport-level sender of the message.
    pub fn sender(&self) -> NodeId {
        self.from
    }

    /// The verified message.
    pub fn message(&self) -> &Message {
        &self.message
    }

    /// Consumes the token and returns `(sender, message)`. When this token is
    /// the last holder of the envelope — every unicast, and the final
    /// recipient of a broadcast fan-out — the message is moved out without a
    /// copy; otherwise the envelope is cloned.
    pub fn into_parts(self) -> (NodeId, Message) {
        let message = SharedMessage::try_unwrap(self.message).unwrap_or_else(|arc| (*arc).clone());
        (self.from, message)
    }

    /// Consumes the token and returns `(sender, shared message)` without
    /// touching the envelope.
    pub fn into_shared_parts(self) -> (NodeId, SharedMessage) {
        (self.from, self.message)
    }
}

/// Verifies inbound messages against the validator set's public keys.
///
/// The authenticator owns a reused [`BatchVerifier`], so repeated certificate
/// checks are allocation-free in steady state; methods therefore take
/// `&mut self`. Each thread of a deployment owns its own authenticator
/// (they are cheap: `n` public keys plus buffers).
///
/// # Example
///
/// ```
/// use bamboo_types::{Authenticator, BlockId, Message, NodeId, View, Vote};
/// use bamboo_crypto::KeyPair;
///
/// let mut auth = Authenticator::for_nodes(4);
/// let vote = Vote::new(BlockId::GENESIS, View(1), NodeId(2), &KeyPair::from_seed(2));
/// let verified = auth
///     .authenticate(NodeId(2), Message::Vote(vote.clone()))
///     .expect("honest vote passes");
/// assert_eq!(verified.sender(), NodeId(2));
///
/// // The same vote under the wrong keypair is a forgery and is rejected.
/// let forged = Vote::new(BlockId::GENESIS, View(1), NodeId(2), &KeyPair::from_seed(3));
/// assert!(auth.authenticate(NodeId(2), Message::Vote(forged)).is_err());
/// ```
#[derive(Debug)]
pub struct Authenticator {
    keys: Vec<PublicKey>,
    batch: BatchVerifier,
    /// When true, client requests must carry a valid signature by the issuing
    /// client's (lazily derived) key; when false they pass unchecked.
    signed_clients: bool,
}

impl Authenticator {
    /// Builds the authenticator for the standard validator set of `nodes`
    /// replicas, whose key pairs are derived from their node ids (the same
    /// derivation every replica uses for its own signing key).
    pub fn for_nodes(nodes: usize) -> Self {
        Self::from_keys(
            (0..nodes as u64)
                .map(|i| KeyPair::from_seed(i).public_key())
                .collect(),
        )
    }

    /// Builds the authenticator from an explicit public-key list; key `i`
    /// belongs to node id `i`.
    pub fn from_keys(keys: Vec<PublicKey>) -> Self {
        Self {
            keys,
            batch: BatchVerifier::new(),
            signed_clients: false,
        }
    }

    /// Switches the signed-client mode on or off. Off (the default) keeps the
    /// paper's unauthenticated-client setting; on, every client request must
    /// verify under the issuing client's key.
    pub fn set_signed_clients(&mut self, signed: bool) {
        self.signed_clients = signed;
    }

    /// Whether client requests are required to carry valid signatures.
    pub fn signed_clients(&self) -> bool {
        self.signed_clients
    }

    /// The issuing client's public key, derived lazily from the client id (the
    /// client keyspace is domain-separated from the validator keyspace, see
    /// [`KeyPair::client_from_seed`]). Two streaming hashes, no allocation, no
    /// per-client state.
    pub fn client_key(client: NodeId) -> PublicKey {
        KeyPair::client_from_seed(client.as_u64()).public_key()
    }

    /// Size of the validator set.
    pub fn nodes(&self) -> usize {
        self.keys.len()
    }

    /// Public key of `node`, if it belongs to the validator set.
    pub fn key_of(&self, node: NodeId) -> Option<PublicKey> {
        self.keys.get(node.index()).copied()
    }

    /// Verifies `message` and wraps it into the [`VerifiedMessage`] proof
    /// token.
    ///
    /// # Errors
    ///
    /// Returns the typed [`AuthError`] describing the first forged or
    /// malformed component found; the message is dropped.
    pub fn authenticate(
        &mut self,
        from: NodeId,
        message: Message,
    ) -> Result<VerifiedMessage, AuthError> {
        self.authenticate_shared(from, SharedMessage::new(message))
    }

    /// Verifies an already-shared envelope and wraps it into the
    /// [`VerifiedMessage`] proof token without copying it.
    ///
    /// # Errors
    ///
    /// Returns the typed [`AuthError`] describing the first forged or
    /// malformed component found; the message is dropped.
    pub fn authenticate_shared(
        &mut self,
        from: NodeId,
        message: SharedMessage,
    ) -> Result<VerifiedMessage, AuthError> {
        self.verify_message(&message)?;
        Ok(VerifiedMessage { from, message })
    }

    /// Runs the per-variant checks of [`Authenticator::authenticate`] without
    /// constructing the proof token.
    ///
    /// # Errors
    ///
    /// Returns the typed [`AuthError`] describing the first forged or
    /// malformed component found.
    pub fn verify_message(&mut self, message: &Message) -> Result<(), AuthError> {
        match message {
            Message::Proposal(block) | Message::ProposalEcho(block) => self.verify_block(block),
            Message::Vote(vote) | Message::VoteEcho(vote) => self.verify_vote(vote),
            Message::Timeout(tv) => self.verify_timeout_vote(tv),
            Message::TimeoutCertMsg(tc) => self.verify_timeout_cert(tc),
            Message::NewView(qc) => self.verify_qc(qc),
            Message::SyncRequest(req) => self.verify_sync_request(req),
            Message::SyncResponse(resp) => self.verify_sync_response(resp),
            // Requests are checked only in signed-client mode; responses (sent
            // by replicas to clients) are never verified here.
            Message::Request(req) => {
                if self.signed_clients {
                    self.verify_client_request(req)
                } else {
                    Ok(())
                }
            }
            Message::Response(_) => Ok(()),
        }
    }

    /// Verifies one client request's signature under the issuing client's
    /// lazily derived key.
    ///
    /// # Errors
    ///
    /// [`AuthError::UnsignedClientRequest`] when the request carries no
    /// signature, [`AuthError::BadClientSignature`] when it does not verify.
    pub fn verify_client_request(&self, req: &ClientRequest) -> Result<(), AuthError> {
        let client = req.transaction.client;
        if req.signature.is_none() {
            return Err(AuthError::UnsignedClientRequest(client));
        }
        if !req.verify(&Self::client_key(client)) {
            return Err(AuthError::BadClientSignature(client));
        }
        Ok(())
    }

    /// Verifies a whole client arrival batch in one batched pass.
    ///
    /// Every request signs the same fixed-length 40-byte tuple, so the staged
    /// checks run 4-wide through the interleaved SHA-256 path — the amortised
    /// edge-ingress cost the modeled CPU charge
    /// (`CpuModel::verify_batch`) accounts for. All-or-nothing: `true` iff
    /// every request is signed and verifies. Callers that need to salvage the
    /// honest majority of a failing batch fall back to
    /// [`Authenticator::verify_client_request`] per item.
    pub fn verify_client_batch(&mut self, requests: &[ClientRequest]) -> bool {
        let mut all_signed = true;
        for req in requests {
            let Some(signature) = req.signature else {
                all_signed = false;
                break;
            };
            let key = Self::client_key(req.transaction.client);
            self.batch.push(
                key,
                &ClientRequest::signing_bytes(&req.transaction),
                signature,
            );
        }
        if !all_signed {
            self.batch.clear();
            return false;
        }
        self.batch.verify_all()
    }

    /// Verifies a proposal: the block id must bind the header and payload,
    /// and the justify QC must be a valid quorum certificate. The proposer's
    /// authorship is bound through the id (the header includes the proposer),
    /// mirroring how the simulated scheme folds identity into the hash.
    pub fn verify_block(&mut self, block: &Block) -> Result<(), AuthError> {
        if !block.verify_id() {
            return Err(AuthError::BadBlockId(block.view));
        }
        self.verify_qc(&block.justify)
    }

    /// Verifies a single vote signature.
    pub fn verify_vote(&self, vote: &Vote) -> Result<(), AuthError> {
        let key = self
            .key_of(vote.voter)
            .ok_or(AuthError::UnknownSigner(vote.voter))?;
        if !vote.verify(&key) {
            return Err(AuthError::BadVoteSignature(vote.voter));
        }
        Ok(())
    }

    /// Verifies a quorum certificate: signer count against the quorum
    /// threshold first (free), then every signature in one batched pass.
    pub fn verify_qc(&mut self, qc: &QuorumCert) -> Result<(), AuthError> {
        if qc.is_genesis() {
            return Ok(());
        }
        self.check_threshold(qc.signer_count())?;
        let msg = Vote::signing_bytes(qc.block, qc.view);
        let keys = &self.keys;
        self.batch
            .push_aggregate(&msg, &qc.signatures, |i| keys.get(i as usize).copied())
            .map_err(|signer| AuthError::UnknownSigner(NodeId(signer)))?;
        if !self.batch.verify_all() {
            return Err(AuthError::BadQcSignature(qc.view));
        }
        Ok(())
    }

    /// Verifies a timeout vote: the vote signature plus the embedded high-QC
    /// the next leader would adopt.
    pub fn verify_timeout_vote(&mut self, tv: &TimeoutVote) -> Result<(), AuthError> {
        let key = self
            .key_of(tv.voter)
            .ok_or(AuthError::UnknownSigner(tv.voter))?;
        if !tv.verify(&key) {
            return Err(AuthError::BadTimeoutSignature(tv.voter));
        }
        self.verify_qc(&tv.high_qc)
    }

    /// Verifies a timeout certificate: threshold, every timeout signature
    /// (batched), and the embedded high-QC.
    pub fn verify_timeout_cert(&mut self, tc: &TimeoutCert) -> Result<(), AuthError> {
        self.check_threshold(tc.signer_count())?;
        let msg = TimeoutVote::signing_bytes(tc.view);
        let keys = &self.keys;
        self.batch
            .push_aggregate(&msg, &tc.signatures, |i| keys.get(i as usize).copied())
            .map_err(|signer| AuthError::UnknownSigner(NodeId(signer)))?;
        if !self.batch.verify_all() {
            return Err(AuthError::BadTcSignature(tc.view));
        }
        self.verify_qc(&tc.high_qc)
    }

    /// Verifies a sync request's signature over `(head, height)`.
    pub fn verify_sync_request(&self, req: &SyncRequest) -> Result<(), AuthError> {
        let key = self
            .key_of(req.requester)
            .ok_or(AuthError::UnknownSigner(req.requester))?;
        if !req.verify(&key) {
            return Err(AuthError::BadSyncSignature(req.requester));
        }
        Ok(())
    }

    /// Verifies a sync response: every carried block (id binding + justify
    /// QC) and the responder's high-QC. Snapshot bytes are *not* checked here
    /// — their integrity checks are structural and happen when the requester
    /// decodes and installs the snapshot.
    pub fn verify_sync_response(&mut self, resp: &SyncResponse) -> Result<(), AuthError> {
        for block in &resp.blocks {
            self.verify_block(block)?;
        }
        self.verify_qc(&resp.high_qc)
    }

    fn check_threshold(&self, got: usize) -> Result<(), AuthError> {
        let need = quorum_threshold(self.keys.len());
        if got < need {
            return Err(AuthError::SubQuorumCert { got, need });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockId;
    use crate::ids::Height;
    use crate::transaction::Transaction;
    use crate::SimTime;
    use bamboo_crypto::AggregateSignature;

    fn keypairs(n: u64) -> Vec<KeyPair> {
        (0..n).map(KeyPair::from_seed).collect()
    }

    fn quorum_qc(block: BlockId, view: View, kps: &[KeyPair]) -> QuorumCert {
        let votes: Vec<Vote> = kps
            .iter()
            .enumerate()
            .take(3)
            .map(|(i, kp)| Vote::new(block, view, NodeId(i as u64), kp))
            .collect();
        QuorumCert::from_votes(block, view, &votes)
    }

    fn block_id(tag: u8) -> BlockId {
        BlockId(bamboo_crypto::Digest::of(&[tag]))
    }

    #[test]
    fn honest_vote_and_qc_pass() {
        let kps = keypairs(4);
        let mut auth = Authenticator::for_nodes(4);
        let vote = Vote::new(block_id(1), View(2), NodeId(1), &kps[1]);
        assert!(auth.verify_vote(&vote).is_ok());
        let qc = quorum_qc(block_id(1), View(2), &kps);
        assert!(auth.verify_qc(&qc).is_ok());
        // Reuse works: the internal batch was cleared.
        assert!(auth.verify_qc(&qc).is_ok());
    }

    #[test]
    fn forged_vote_is_rejected_with_typed_error() {
        let kps = keypairs(4);
        let mut auth = Authenticator::for_nodes(4);
        let forged = Vote::new(block_id(1), View(2), NodeId(1), &kps[2]);
        assert_eq!(
            auth.verify_vote(&forged),
            Err(AuthError::BadVoteSignature(NodeId(1)))
        );
        assert!(auth.authenticate(NodeId(1), Message::Vote(forged)).is_err());
        let unknown = Vote::new(block_id(1), View(2), NodeId(9), &kps[2]);
        assert_eq!(
            auth.verify_vote(&unknown),
            Err(AuthError::UnknownSigner(NodeId(9)))
        );
    }

    #[test]
    fn sub_quorum_qc_is_rejected_before_any_signature_work() {
        let kps = keypairs(4);
        let mut auth = Authenticator::for_nodes(4);
        let votes: Vec<Vote> = kps
            .iter()
            .enumerate()
            .take(2)
            .map(|(i, kp)| Vote::new(block_id(1), View(2), NodeId(i as u64), kp))
            .collect();
        let qc = QuorumCert::from_votes(block_id(1), View(2), &votes);
        assert_eq!(
            auth.verify_qc(&qc),
            Err(AuthError::SubQuorumCert { got: 2, need: 3 })
        );
    }

    #[test]
    fn qc_with_forged_signature_is_rejected() {
        let kps = keypairs(4);
        let mut auth = Authenticator::for_nodes(4);
        let mut sigs = AggregateSignature::new();
        // All three "signatures" minted by replica 3's key under indices 0..2.
        let msg = Vote::signing_bytes(block_id(1), View(2));
        for i in 0..3u64 {
            sigs.add(i, kps[3].sign(&msg));
        }
        let forged = QuorumCert {
            block: block_id(1),
            view: View(2),
            signatures: sigs,
        };
        assert_eq!(
            auth.verify_qc(&forged),
            Err(AuthError::BadQcSignature(View(2)))
        );
    }

    #[test]
    fn genesis_qc_passes_and_timeout_paths_check_embedded_qc() {
        let kps = keypairs(4);
        let mut auth = Authenticator::for_nodes(4);
        assert!(auth.verify_qc(&QuorumCert::genesis()).is_ok());

        let high_qc = quorum_qc(block_id(2), View(3), &kps);
        let tv = TimeoutVote::new(View(4), NodeId(0), high_qc.clone(), &kps[0]);
        assert!(auth.verify_timeout_vote(&tv).is_ok());

        // Same timeout vote, but the embedded QC's signatures are corrupted.
        let mut bad_qc = high_qc.clone();
        let msg = Vote::signing_bytes(block_id(9), View(9));
        let mut sigs = AggregateSignature::new();
        for i in 0..3u64 {
            sigs.add(i, kps[i as usize].sign(&msg));
        }
        bad_qc.signatures = sigs;
        let bad_tv = TimeoutVote::new(View(4), NodeId(0), bad_qc, &kps[0]);
        assert!(auth.verify_timeout_vote(&bad_tv).is_err());

        let tvs: Vec<TimeoutVote> = (0..3)
            .map(|i| TimeoutVote::new(View(4), NodeId(i), high_qc.clone(), &kps[i as usize]))
            .collect();
        let tc = TimeoutCert::from_votes(View(4), &tvs);
        assert!(auth.verify_timeout_cert(&tc).is_ok());
        let sub = TimeoutCert::from_votes(View(4), &tvs[..2]);
        assert!(matches!(
            auth.verify_timeout_cert(&sub),
            Err(AuthError::SubQuorumCert { .. })
        ));
    }

    #[test]
    fn proposal_with_tampered_payload_or_forged_justify_is_rejected() {
        let kps = keypairs(4);
        let mut auth = Authenticator::for_nodes(4);
        let justify = quorum_qc(block_id(1), View(1), &kps);
        let good = Block::new(
            View(2),
            Height(2),
            block_id(1),
            NodeId(2),
            justify.clone(),
            vec![Transaction::new(NodeId(9), 0, 16, SimTime::ZERO)],
        );
        assert!(auth.verify_block(&good).is_ok());

        let mut tampered = good.clone();
        tampered
            .payload
            .push(Transaction::new(NodeId(9), 1, 16, SimTime::ZERO));
        assert_eq!(
            auth.verify_block(&tampered),
            Err(AuthError::BadBlockId(View(2)))
        );

        let mut forged_justify = justify;
        let msg = Vote::signing_bytes(block_id(1), View(1));
        let mut sigs = AggregateSignature::new();
        for i in 0..3u64 {
            sigs.add(i, kps[3].sign(&msg));
        }
        forged_justify.signatures = sigs;
        // Rebuilding keeps the id valid (the id binds the justify's block and
        // view, not its signature bytes), so the rejection must come from the
        // QC check — exactly the forged-QC attack surface.
        let forged = Block::new(
            View(2),
            Height(2),
            block_id(1),
            NodeId(2),
            forged_justify,
            good.payload.clone(),
        );
        assert!(forged.verify_id());
        assert_eq!(
            auth.verify_block(&forged),
            Err(AuthError::BadQcSignature(View(1)))
        );
    }

    #[test]
    fn sync_messages_are_verified() {
        let kps = keypairs(4);
        let mut auth = Authenticator::for_nodes(4);

        let req = SyncRequest::new(NodeId(2), block_id(1), Height(5), &kps[2]);
        assert!(auth.verify_sync_request(&req).is_ok());

        // Same request signed with the wrong key is a forgery.
        let forged = SyncRequest::new(NodeId(2), block_id(1), Height(5), &kps[3]);
        assert_eq!(
            auth.verify_sync_request(&forged),
            Err(AuthError::BadSyncSignature(NodeId(2)))
        );
        let unknown = SyncRequest::new(NodeId(9), block_id(1), Height(5), &kps[3]);
        assert_eq!(
            auth.verify_sync_request(&unknown),
            Err(AuthError::UnknownSigner(NodeId(9)))
        );

        // A response is checked block-by-block plus the carried high-QC.
        let justify = quorum_qc(block_id(1), View(1), &kps);
        let good_block = Block::new(
            View(2),
            Height(2),
            block_id(1),
            NodeId(2),
            justify.clone(),
            vec![Transaction::new(NodeId(9), 0, 16, SimTime::ZERO)],
        );
        let resp = SyncResponse {
            responder: NodeId(1),
            snapshot: None,
            blocks: vec![good_block.clone().into()],
            high_qc: justify.clone(),
        };
        assert!(auth.verify_sync_response(&resp).is_ok());
        assert!(auth
            .authenticate(NodeId(1), Message::SyncResponse(resp))
            .is_ok());

        // Corrupting the high-QC fails the response.
        let msg = Vote::signing_bytes(block_id(1), View(1));
        let mut sigs = AggregateSignature::new();
        for i in 0..3u64 {
            sigs.add(i, kps[3].sign(&msg));
        }
        let mut bad_qc = justify;
        bad_qc.signatures = sigs;
        let bad = SyncResponse {
            responder: NodeId(1),
            snapshot: None,
            blocks: vec![good_block.into()],
            high_qc: bad_qc,
        };
        assert_eq!(
            auth.verify_sync_response(&bad),
            Err(AuthError::BadQcSignature(View(1)))
        );
    }

    #[test]
    fn client_traffic_passes_through() {
        let mut auth = Authenticator::for_nodes(4);
        let request = Message::Request(ClientRequest::unsigned(Transaction::new(
            NodeId(9),
            0,
            8,
            SimTime::ZERO,
        )));
        let verified = auth.authenticate(NodeId(9), request).expect("clients pass");
        let (from, message) = verified.into_parts();
        assert_eq!(from, NodeId(9));
        assert!(matches!(message, Message::Request(_)));
    }

    #[test]
    fn signed_client_mode_verifies_and_rejects_at_the_edge() {
        let mut auth = Authenticator::for_nodes(4);
        auth.set_signed_clients(true);
        assert!(auth.signed_clients());
        let client = NodeId(1_000_321);
        let kp = KeyPair::client_from_seed(client.as_u64());
        let tx = Transaction::new(client, 0, 8, SimTime(5));
        let good = ClientRequest::signed(tx.clone(), &kp);
        assert!(auth.verify_client_request(&good).is_ok());
        assert!(auth
            .authenticate(client, Message::Request(good.clone()))
            .is_ok());

        // Unsigned requests no longer pass.
        let unsigned = ClientRequest::unsigned(tx.clone());
        assert_eq!(
            auth.verify_client_request(&unsigned),
            Err(AuthError::UnsignedClientRequest(client))
        );

        // A signature minted by a different client is a forgery.
        let forged = ClientRequest::signed(tx, &KeyPair::client_from_seed(7));
        assert_eq!(
            auth.verify_client_request(&forged),
            Err(AuthError::BadClientSignature(client))
        );
        assert!(auth.authenticate(client, Message::Request(forged)).is_err());
    }

    #[test]
    fn client_batches_verify_four_wide_and_fail_on_one_forgery() {
        let mut auth = Authenticator::for_nodes(4);
        auth.set_signed_clients(true);
        // 11 requests: two quad chunks plus three stragglers.
        let mut batch: Vec<ClientRequest> = (0..11u64)
            .map(|i| {
                let client = NodeId(1_000_000 + i);
                let tx = Transaction::new(client, i, 8, SimTime(i));
                ClientRequest::signed(tx, &KeyPair::client_from_seed(client.as_u64()))
            })
            .collect();
        assert!(auth.verify_client_batch(&batch));
        // The verifier is reusable after a pass.
        assert!(auth.verify_client_batch(&batch));
        // One forged (or one unsigned) request fails the whole batch, and the
        // per-item fallback isolates exactly the culprit.
        batch[6].signature = Some(KeyPair::client_from_seed(999).sign(b"junk"));
        assert!(!auth.verify_client_batch(&batch));
        let bad: Vec<usize> = batch
            .iter()
            .enumerate()
            .filter(|(_, req)| auth.verify_client_request(req).is_err())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(bad, vec![6]);
        batch[6].signature = None;
        assert!(!auth.verify_client_batch(&batch));
    }

    #[test]
    fn errors_render_human_readable() {
        let err = AuthError::SubQuorumCert { got: 2, need: 22 };
        assert!(err.to_string().contains("sub-quorum"));
        assert!(AuthError::UnknownSigner(NodeId(7))
            .to_string()
            .contains("7"));
    }
}

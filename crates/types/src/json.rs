//! A minimal JSON document model, pretty-printer and parser.
//!
//! Instead of an external serialisation framework the workspace builds
//! [`Json`] values explicitly and renders them; the [`ToJson`] trait is
//! implemented for the report types the benches serialise and for the
//! scenario-engine reports. [`Json::parse`] reads documents back — the
//! bench-diff tool compares a fresh `micro_components` run against the
//! repo's committed `BENCH_*.json` snapshots, and the scenario engine parses
//! declarative experiment specs (`scenarios/*.json`) with it.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number. Non-finite values render as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(fields: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Parses a JSON document. Standard JSON: objects, arrays, strings with
    /// escapes, finite numbers, booleans and null; trailing content after the
    /// top-level value is an error.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error, with
    /// its byte offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(format!("trailing content at byte {}", parser.pos));
        }
        Ok(value)
    }

    /// Looks up a field of an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as pretty-printed JSON (two-space indent).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, 0);
        out.push('\n');
        out
    }

    fn render(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    // JSON has no Infinity/NaN literal.
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    item.render(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    escape_into(key, out);
                    out.push_str(": ");
                    value.render(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", byte as char, self.pos))
        }
    }

    fn eat_literal(&mut self, literal: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not needed for bench
                            // artifacts; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8")?;
                    let ch = text.chars().next().ok_or("unterminated string")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number at byte {start}"))
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

/// Conversion into a [`Json`] document.
pub trait ToJson {
    /// Renders `self` as a JSON value.
    fn to_json(&self) -> Json;
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::arr(self.iter().map(ToJson::to_json))
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::arr(self.iter().map(ToJson::to_json))
    }
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let doc = Json::obj([
            ("name", Json::from("bench")),
            ("ok", Json::from(true)),
            ("points", Json::arr([Json::from(1.5), Json::from(2u64)])),
            ("nothing", Json::Null),
        ]);
        let text = doc.render_pretty();
        assert!(text.contains("\"name\": \"bench\""));
        assert!(text.contains("\"ok\": true"));
        assert!(text.contains("1.5"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings() {
        let doc = Json::from("a\"b\\c\nd");
        assert_eq!(doc.render_pretty(), "\"a\\\"b\\\\c\\nd\"\n");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::INFINITY).render_pretty(), "null\n");
        assert_eq!(Json::Num(f64::NAN).render_pretty(), "null\n");
    }

    #[test]
    fn empty_collections_are_compact() {
        assert_eq!(Json::arr([]).render_pretty(), "[]\n");
        assert_eq!(Json::obj::<String>([]).render_pretty(), "{}\n");
    }

    #[test]
    fn parse_round_trips_rendered_documents() {
        let doc = Json::obj([
            ("name", Json::from("bench \"quoted\" \\ path\nnext")),
            ("ok", Json::from(true)),
            ("missing", Json::Null),
            (
                "nums",
                Json::arr([Json::from(1.5), Json::from(-2.0), Json::from(1e9)]),
            ),
            (
                "nested",
                Json::obj([
                    ("empty_arr", Json::arr([])),
                    ("empty_obj", Json::obj::<String>([])),
                ]),
            ),
        ]);
        let parsed = Json::parse(&doc.render_pretty()).expect("round trip parses");
        assert_eq!(parsed, doc);
    }

    #[test]
    fn parse_real_snapshot_shapes() {
        let text = r#"{
            "benches": {
                "micro_components": [
                    {"name": "sha256_1k", "ns_per_iter": 5434.7, "iters": 55295}
                ]
            }
        }"#;
        let doc = Json::parse(text).unwrap();
        let micros = doc
            .get("benches")
            .and_then(|b| b.get("micro_components"))
            .and_then(Json::as_array)
            .unwrap();
        assert_eq!(
            micros[0].get("name").and_then(Json::as_str),
            Some("sha256_1k")
        );
        assert_eq!(
            micros[0].get("ns_per_iter").and_then(Json::as_f64),
            Some(5434.7)
        );
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("\"open").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("nulll").is_err());
        assert!(Json::parse("+-3").is_err());
    }

    #[test]
    fn parse_handles_escapes_and_unicode() {
        let doc = Json::parse(r#""aA\té € b""#).unwrap();
        assert_eq!(doc.as_str(), Some("aA\té € b"));
    }
}

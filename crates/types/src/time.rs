//! Simulated time.
//!
//! The discrete-event simulator measures time in nanoseconds since the start
//! of the run. Wrapping the value in [`SimTime`] / [`SimDuration`] newtypes
//! keeps instants and durations from being mixed up and gives convenient
//! constructors mirroring `std::time::Duration`.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant in simulated time (nanoseconds since the start of the run).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Time zero (the start of the simulation).
    pub const ZERO: SimTime = SimTime(0);

    /// Returns the raw nanosecond count.
    pub fn as_nanos(&self) -> u64 {
        self.0
    }

    /// Returns the time in (fractional) milliseconds.
    pub fn as_millis_f64(&self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns the time in (fractional) seconds.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    pub fn since(&self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from nanoseconds.
    pub fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Builds a duration from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Builds a duration from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Builds a duration from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Builds a duration from fractional milliseconds, saturating at zero.
    pub fn from_millis_f64(ms: f64) -> Self {
        SimDuration((ms.max(0.0) * 1_000_000.0).round() as u64)
    }

    /// Builds a duration from fractional seconds, saturating at zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1_000_000_000.0).round() as u64)
    }

    /// Returns the raw nanosecond count.
    pub fn as_nanos(&self) -> u64 {
        self.0
    }

    /// Returns the duration in fractional milliseconds.
    pub fn as_millis_f64(&self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns the duration in fractional seconds.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Returns true if the duration is zero.
    pub fn is_zero(&self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(&self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimDuration::from_millis(5), SimDuration::from_micros(5_000));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
        assert_eq!(
            SimDuration::from_millis_f64(2.5),
            SimDuration::from_micros(2_500)
        );
        assert_eq!(
            SimDuration::from_secs_f64(0.25),
            SimDuration::from_millis(250)
        );
    }

    #[test]
    fn negative_float_durations_saturate_to_zero() {
        assert_eq!(SimDuration::from_millis_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn time_arithmetic() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_millis(10);
        assert_eq!(t1.as_millis_f64(), 10.0);
        assert_eq!(t1 - t0, SimDuration::from_millis(10));
        // Subtraction saturates rather than underflowing.
        assert_eq!(t0 - t1, SimDuration::ZERO);
        assert_eq!(t1.since(t0), SimDuration::from_millis(10));
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::from_millis(6);
        assert_eq!(d * 2, SimDuration::from_millis(12));
        assert_eq!(d / 3, SimDuration::from_millis(2));
        assert_eq!(
            d + SimDuration::from_millis(4),
            SimDuration::from_millis(10)
        );
        assert_eq!(
            d - SimDuration::from_millis(10),
            SimDuration::ZERO,
            "subtraction saturates"
        );
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(SimDuration::from_millis(3).to_string(), "3.000ms");
        assert_eq!(SimTime(1_500_000).to_string(), "1.500ms");
    }
}

//! Client transactions.

use std::fmt;

use bamboo_crypto::Digest;

use crate::bytes::Bytes;
use crate::ids::NodeId;
use crate::time::SimTime;

/// Unique identifier of a transaction (hash of its origin and sequence).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct TxId(pub Digest);

impl TxId {
    /// Derives a transaction id from the issuing client and a per-client
    /// sequence number.
    pub fn derive(client: NodeId, seq: u64) -> Self {
        let mut buf = [0u8; 16];
        buf[..8].copy_from_slice(&client.as_u64().to_be_bytes());
        buf[8..].copy_from_slice(&seq.to_be_bytes());
        TxId(Digest::of(&buf))
    }
}

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tx:{}", self.0.short_hex())
    }
}

/// A client transaction (an opaque payload in this reproduction, mirroring the
/// paper's in-memory key-value workload where only the payload size matters
/// to protocol-level performance).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Transaction {
    /// Unique id.
    pub id: TxId,
    /// Client that issued the transaction.
    pub client: NodeId,
    /// Per-client sequence number.
    pub seq: u64,
    /// Opaque payload bytes (`psize` in Table I).
    pub payload: Bytes,
    /// Simulated time at which the client issued the transaction. Used by the
    /// benchmarker to compute end-to-end latency.
    pub issued_at: SimTime,
}

impl Transaction {
    /// Creates a new transaction with a zero-filled payload of `payload_size`
    /// bytes.
    ///
    /// # Example
    ///
    /// ```
    /// use bamboo_types::{NodeId, SimTime, Transaction};
    ///
    /// let tx = Transaction::new(NodeId(1), 7, 128, SimTime::ZERO);
    /// assert_eq!(tx.payload.len(), 128);
    /// assert_eq!(tx.wire_size(), 128 + Transaction::HEADER_BYTES);
    /// ```
    pub fn new(client: NodeId, seq: u64, payload_size: usize, issued_at: SimTime) -> Self {
        Self {
            id: TxId::derive(client, seq),
            client,
            seq,
            payload: Bytes::zeroed(payload_size),
            issued_at,
        }
    }

    /// Creates a transaction carrying the given payload.
    pub fn with_payload(client: NodeId, seq: u64, payload: Bytes, issued_at: SimTime) -> Self {
        Self {
            id: TxId::derive(client, seq),
            client,
            seq,
            payload,
            issued_at,
        }
    }

    /// Fixed serialisation overhead of a transaction on the wire (id, client,
    /// sequence number, timestamp), independent of the payload.
    pub const HEADER_BYTES: usize = 32 + 8 + 8 + 8;

    /// Approximate wire size of the transaction in bytes.
    pub fn wire_size(&self) -> usize {
        Self::HEADER_BYTES + self.payload.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_per_client_and_sequence() {
        let a = TxId::derive(NodeId(1), 1);
        let b = TxId::derive(NodeId(1), 2);
        let c = TxId::derive(NodeId(2), 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, TxId::derive(NodeId(1), 1));
    }

    #[test]
    fn wire_size_includes_header_and_payload() {
        let tx = Transaction::new(NodeId(0), 0, 0, SimTime::ZERO);
        assert_eq!(tx.wire_size(), Transaction::HEADER_BYTES);
        let tx = Transaction::new(NodeId(0), 0, 1024, SimTime::ZERO);
        assert_eq!(tx.wire_size(), Transaction::HEADER_BYTES + 1024);
    }

    #[test]
    fn with_payload_preserves_bytes() {
        let payload = Bytes::from(&b"hello world"[..]);
        let tx = Transaction::with_payload(NodeId(3), 9, payload.clone(), SimTime(42));
        assert_eq!(tx.payload, payload);
        assert_eq!(tx.issued_at, SimTime(42));
        assert_eq!(tx.id, TxId::derive(NodeId(3), 9));
    }

    #[test]
    fn display_of_txid_is_short() {
        let id = TxId::derive(NodeId(5), 77);
        let rendered = id.to_string();
        assert!(rendered.starts_with("tx:"));
        assert_eq!(rendered.len(), 3 + 8);
    }
}

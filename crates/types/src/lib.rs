//! Core data types shared by every crate in the bamboo-rs workspace.
//!
//! This crate defines the vocabulary of a chained-BFT (cBFT) system as
//! described in *Dissecting the Performance of Chained-BFT* (ICDCS 2021):
//!
//! * identifiers — [`NodeId`], [`View`], [`Height`], [`BlockId`],
//! * payload — [`Transaction`], [`Block`],
//! * certificates — [`Vote`], [`QuorumCert`], [`TimeoutVote`], [`TimeoutCert`],
//! * the wire [`Message`] enum exchanged by replicas and clients,
//! * the canonical binary codec for blocks, certificates and messages —
//!   [`wire`] — shared by checkpoint images, durable log records and the TCP
//!   transport frames,
//! * the authenticated ingress stage — [`Authenticator`] verifies every
//!   inbound message against the validator set and mints [`VerifiedMessage`]
//!   proof tokens; forgeries are rejected with a typed [`AuthError`],
//! * simulated time — [`SimTime`], [`SimDuration`],
//! * the Table-I [`Config`] surface,
//! * a dependency-free JSON document model — [`Json`] / [`ToJson`] — used by
//!   the bench artifacts and the scenario-spec files.
//!
//! Everything here is a plain, serialisable data structure; behaviour lives in
//! the other crates (`bamboo-forest`, `bamboo-protocols`, `bamboo-core`, ...).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auth;
pub mod block;
pub mod bytes;
pub mod certificate;
pub mod config;
pub mod error;
pub mod ids;
pub mod json;
pub mod message;
pub mod time;
pub mod transaction;
pub mod wire;

pub use auth::{AuthError, Authenticator, VerifiedMessage};
pub use block::{Block, BlockId, SharedBlock};
pub use bytes::Bytes;
pub use certificate::{QuorumCert, TimeoutCert, TimeoutVote, Vote};
pub use config::{ByzantineStrategy, Config, ConfigBuilder, LeaderPolicy, ProtocolKind};
pub use error::TypeError;
pub use ids::{Height, NodeId, View};
pub use json::{Json, ToJson};
pub use message::{
    ClientRequest, ClientResponse, Message, MessageKind, SharedMessage, SyncRequest, SyncResponse,
};
pub use time::{SimDuration, SimTime};
pub use transaction::{Transaction, TxId};
pub use wire::{WireCursor, WireError};

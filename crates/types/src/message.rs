//! Wire messages exchanged between replicas and clients.

use std::fmt;
use std::sync::Arc;

use bamboo_crypto::{KeyPair, PublicKey, Signature};

use crate::block::{BlockId, SharedBlock};
use crate::bytes::Bytes;
use crate::certificate::{QuorumCert, TimeoutCert, TimeoutVote, Vote};
use crate::ids::{Height, NodeId, View};
use crate::time::SimTime;
use crate::transaction::{Transaction, TxId};

/// A shared, immutable handle to a whole message envelope.
///
/// The counterpart of [`SharedBlock`] one layer up: blocks made *proposal
/// payloads* zero-copy, but votes, timeout votes and certificates carry
/// signer vectors and aggregate signatures of their own, so cloning a
/// `Message` envelope per broadcast recipient still allocates O(n). Backends
/// that fan one envelope out to many recipients (the simulator's event queue,
/// the threaded runtime's channels, the verify pool's proof tokens) therefore
/// deliver `SharedMessage` handles: a broadcast costs n − 1 pointer bumps at
/// schedule time, the sole-owner receiver (every unicast, the last broadcast
/// recipient) recovers the owned message for free via [`Arc::try_unwrap`],
/// and other broadcast recipients copy only what they retain. Messages are
/// immutable once constructed, which is what makes the sharing sound.
pub type SharedMessage = Arc<Message>;

/// A client request carrying one transaction.
///
/// Requests are optionally signed by the issuing client
/// ([`crate::Config::signed_requests`]): the signature covers the fixed-size
/// `(tx id, issued_at)` tuple, so every request signs (and verifies) a
/// 40-byte message — which is exactly the equal-length precondition the
/// 4-wide batched verifier needs to check an arrival batch in `⌈n/4⌉`
/// interleaved SHA-256 passes. The signature authenticates ingress only: the
/// replica edge verifies and strips it, and only the bare [`Transaction`]
/// enters the mempool, blocks, and checkpoints.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ClientRequest {
    /// The transaction to be ordered.
    pub transaction: Transaction,
    /// The issuing client's signature over [`ClientRequest::signing_bytes`];
    /// `None` in the legacy unauthenticated-client mode.
    pub signature: Option<Signature>,
}

impl ClientRequest {
    /// Wraps a transaction in an unsigned request (the legacy client mode).
    pub fn unsigned(transaction: Transaction) -> Self {
        Self {
            transaction,
            signature: None,
        }
    }

    /// Creates and signs a request with the issuing client's key pair.
    pub fn signed(transaction: Transaction, keypair: &KeyPair) -> Self {
        let signature = keypair.sign(&Self::signing_bytes(&transaction));
        Self {
            transaction,
            signature: Some(signature),
        }
    }

    /// The canonical byte string a client request signs: the transaction id
    /// (which already binds client, sequence number and payload) plus the
    /// issue timestamp. Fixed-length by construction.
    pub fn signing_bytes(transaction: &Transaction) -> [u8; 40] {
        let mut buf = [0u8; 40];
        buf[..32].copy_from_slice(transaction.id.0.as_bytes());
        buf[32..].copy_from_slice(&transaction.issued_at.0.to_be_bytes());
        buf
    }

    /// Verifies the request's signature against the issuing client's public
    /// key. Unsigned requests never verify.
    pub fn verify(&self, public_key: &PublicKey) -> bool {
        match &self.signature {
            Some(signature) => {
                public_key.verify(&Self::signing_bytes(&self.transaction), signature)
            }
            None => false,
        }
    }

    /// Approximate wire size in bytes.
    pub fn wire_size(&self) -> usize {
        self.transaction.wire_size() + if self.signature.is_some() { 32 } else { 0 }
    }
}

/// A client response confirming a committed transaction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ClientResponse {
    /// Id of the committed transaction.
    pub tx: TxId,
    /// The client that issued it.
    pub client: NodeId,
    /// When the transaction was issued (echoed back for latency bookkeeping).
    pub issued_at: SimTime,
    /// Simulated time at which the replica committed the transaction.
    pub committed_at: SimTime,
}

impl ClientResponse {
    /// Approximate wire size in bytes.
    pub fn wire_size(&self) -> usize {
        32 + 8 + 8 + 8
    }
}

/// A state-transfer request: "my committed head is `head` at `height`; send
/// me what I am missing". Signed by the requester so a Byzantine peer cannot
/// trigger sync floods in someone else's name.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SyncRequest {
    /// The replica asking to be caught up.
    pub requester: NodeId,
    /// The requester's committed head block.
    pub head: BlockId,
    /// Height of that head (genesis = 0 for a fresh / amnesiac replica).
    pub height: Height,
    /// Signature over `(head, height)`.
    pub signature: Signature,
}

impl SyncRequest {
    /// Creates and signs a sync request.
    pub fn new(requester: NodeId, head: BlockId, height: Height, keypair: &KeyPair) -> Self {
        let signature = keypair.sign(&Self::signing_bytes(head, height));
        Self {
            requester,
            head,
            height,
            signature,
        }
    }

    /// The canonical byte string a sync request signs.
    pub fn signing_bytes(head: BlockId, height: Height) -> [u8; 40] {
        let mut buf = [0u8; 40];
        buf[..32].copy_from_slice(head.0.as_bytes());
        buf[32..].copy_from_slice(&height.as_u64().to_be_bytes());
        buf
    }

    /// Verifies the request's signature against the requester's public key.
    pub fn verify(&self, public_key: &PublicKey) -> bool {
        public_key.verify(
            &Self::signing_bytes(self.head, self.height),
            &self.signature,
        )
    }

    /// Approximate wire size in bytes.
    pub fn wire_size(&self) -> usize {
        8 + 32 + 8 + 32
    }
}

/// A state-transfer response: an optional checkpoint snapshot (when the
/// requester is so far behind that the responder no longer stores the blocks
/// between the two heads) plus a batch of blocks extending it, oldest first,
/// and the responder's high-QC.
///
/// The response carries no signature of its own: every block is
/// self-authenticating (id binds header + payload, justify QC is quorum
/// signed), the high-QC is quorum signed, and snapshot bytes are integrity
/// checked structurally during decode — a forged response either fails the
/// [`crate::Authenticator`] or fails to install.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SyncResponse {
    /// The replica serving the response.
    pub responder: NodeId,
    /// Encoded checkpoint snapshot (`bamboo_forest::Snapshot` bytes), present
    /// only when the requester must restart from a checkpoint.
    pub snapshot: Option<Bytes>,
    /// Blocks above the snapshot (or above the requester's claimed head),
    /// oldest first; capped per response, the requester re-requests while
    /// still behind.
    pub blocks: Vec<SharedBlock>,
    /// The responder's high-QC, so the requester can catch up its pacemaker
    /// state as well as its chain.
    pub high_qc: QuorumCert,
}

impl SyncResponse {
    /// Approximate wire size in bytes.
    pub fn wire_size(&self) -> usize {
        8 + self.snapshot.as_ref().map(|s| s.len()).unwrap_or(0)
            + self.blocks.iter().map(|b| b.wire_size()).sum::<usize>()
            + self.high_qc.wire_size()
    }
}

/// Every message type exchanged in the system.
///
/// The enum mirrors Bamboo's message handlers: block proposals, votes, the
/// pacemaker's timeout votes and timeout certificates, plus the client-facing
/// request/response pair.
///
/// Proposals carry their block as a [`SharedBlock`], so cloning a `Message`
/// for per-peer fan-out never copies the transaction payload.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Message {
    /// A block proposal broadcast by the view leader.
    Proposal(SharedBlock),
    /// A vote sent to the next leader (HotStuff family) or broadcast
    /// (Streamlet).
    Vote(Vote),
    /// An echoed vote (Streamlet echoes every message it receives).
    VoteEcho(Vote),
    /// An echoed proposal (Streamlet).
    ProposalEcho(SharedBlock),
    /// A pacemaker timeout vote, broadcast when a replica's view timer fires.
    Timeout(TimeoutVote),
    /// A timeout certificate forwarded to the next leader.
    TimeoutCertMsg(TimeoutCert),
    /// A standalone QC forwarded to the next leader (used by protocols whose
    /// votes are collected by the current leader rather than the next one).
    NewView(QuorumCert),
    /// A client request.
    Request(ClientRequest),
    /// A client response.
    Response(ClientResponse),
    /// A state-transfer request from a replica that detected it is behind.
    SyncRequest(SyncRequest),
    /// A state-transfer response: snapshot and/or block suffix.
    SyncResponse(SyncResponse),
}

/// Coarse classification of a message, used by metrics and the network model.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MessageKind {
    /// Block proposals (and proposal echoes).
    Proposal,
    /// Votes (and vote echoes).
    Vote,
    /// Pacemaker messages (timeouts, TCs, new-view).
    Pacemaker,
    /// Client traffic.
    Client,
    /// State-transfer traffic (sync requests and responses).
    Sync,
}

impl Message {
    /// Returns the coarse kind of the message.
    pub fn kind(&self) -> MessageKind {
        match self {
            Message::Proposal(_) | Message::ProposalEcho(_) => MessageKind::Proposal,
            Message::Vote(_) | Message::VoteEcho(_) => MessageKind::Vote,
            Message::Timeout(_) | Message::TimeoutCertMsg(_) | Message::NewView(_) => {
                MessageKind::Pacemaker
            }
            Message::Request(_) | Message::Response(_) => MessageKind::Client,
            Message::SyncRequest(_) | Message::SyncResponse(_) => MessageKind::Sync,
        }
    }

    /// Approximate wire size of the message in bytes. The NIC model charges
    /// `2 * size / bandwidth` per hop, following the paper's model (§V-B1).
    pub fn wire_size(&self) -> usize {
        const ENVELOPE: usize = 16;
        ENVELOPE
            + match self {
                Message::Proposal(b) | Message::ProposalEcho(b) => b.wire_size(),
                Message::Vote(v) | Message::VoteEcho(v) => v.wire_size(),
                Message::Timeout(t) => t.wire_size(),
                Message::TimeoutCertMsg(tc) => tc.wire_size(),
                Message::NewView(qc) => qc.wire_size(),
                Message::Request(r) => r.wire_size(),
                Message::Response(r) => r.wire_size(),
                Message::SyncRequest(r) => r.wire_size(),
                Message::SyncResponse(r) => r.wire_size(),
            }
    }

    /// The view the message pertains to, if any.
    pub fn view(&self) -> Option<View> {
        match self {
            Message::Proposal(b) | Message::ProposalEcho(b) => Some(b.view),
            Message::Vote(v) | Message::VoteEcho(v) => Some(v.view),
            Message::Timeout(t) => Some(t.view),
            Message::TimeoutCertMsg(tc) => Some(tc.view),
            Message::NewView(qc) => Some(qc.view),
            Message::Request(_) | Message::Response(_) => None,
            Message::SyncRequest(_) | Message::SyncResponse(_) => None,
        }
    }

    /// Short human-readable tag for logging.
    pub fn tag(&self) -> &'static str {
        match self {
            Message::Proposal(_) => "proposal",
            Message::ProposalEcho(_) => "proposal-echo",
            Message::Vote(_) => "vote",
            Message::VoteEcho(_) => "vote-echo",
            Message::Timeout(_) => "timeout",
            Message::TimeoutCertMsg(_) => "timeout-cert",
            Message::NewView(_) => "new-view",
            Message::Request(_) => "request",
            Message::Response(_) => "response",
            Message::SyncRequest(_) => "sync-request",
            Message::SyncResponse(_) => "sync-response",
        }
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.view() {
            Some(view) => write!(f, "{}@{}", self.tag(), view),
            None => write!(f, "{}", self.tag()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Block, BlockId};
    use bamboo_crypto::KeyPair;

    fn sample_block() -> Block {
        Block::new(
            View(2),
            crate::ids::Height(1),
            BlockId::GENESIS,
            NodeId(0),
            QuorumCert::genesis(),
            vec![Transaction::new(NodeId(1), 0, 64, SimTime::ZERO)],
        )
    }

    #[test]
    fn kinds_cover_all_variants() {
        let kp = KeyPair::from_seed(0);
        let block = sample_block();
        let vote = Vote::new(block.id, block.view, NodeId(0), &kp);
        let timeout = TimeoutVote::new(View(2), NodeId(0), QuorumCert::genesis(), &kp);
        let tc = TimeoutCert::from_votes(View(2), std::slice::from_ref(&timeout));
        let block = SharedBlock::new(block);
        let cases = vec![
            (Message::Proposal(block.clone()), MessageKind::Proposal),
            (Message::ProposalEcho(block.clone()), MessageKind::Proposal),
            (Message::Vote(vote.clone()), MessageKind::Vote),
            (Message::VoteEcho(vote), MessageKind::Vote),
            (Message::Timeout(timeout), MessageKind::Pacemaker),
            (Message::TimeoutCertMsg(tc), MessageKind::Pacemaker),
            (
                Message::NewView(QuorumCert::genesis()),
                MessageKind::Pacemaker,
            ),
            (
                Message::Request(ClientRequest::unsigned(Transaction::new(
                    NodeId(1),
                    0,
                    0,
                    SimTime::ZERO,
                ))),
                MessageKind::Client,
            ),
            (
                Message::Response(ClientResponse {
                    tx: TxId::default(),
                    client: NodeId(1),
                    issued_at: SimTime::ZERO,
                    committed_at: SimTime(10),
                }),
                MessageKind::Client,
            ),
            (
                Message::SyncRequest(SyncRequest::new(
                    NodeId(0),
                    BlockId::GENESIS,
                    crate::ids::Height::GENESIS,
                    &kp,
                )),
                MessageKind::Sync,
            ),
            (
                Message::SyncResponse(SyncResponse {
                    responder: NodeId(1),
                    snapshot: Some(Bytes::from(vec![1u8; 64])),
                    blocks: vec![block],
                    high_qc: QuorumCert::genesis(),
                }),
                MessageKind::Sync,
            ),
        ];
        for (msg, kind) in cases {
            assert_eq!(msg.kind(), kind, "{}", msg.tag());
            assert!(msg.wire_size() > 0);
            assert!(!msg.tag().is_empty());
        }
    }

    #[test]
    fn proposal_wire_size_dominated_by_payload() {
        let small = Message::Proposal(
            Block::new(
                View(1),
                crate::ids::Height(1),
                BlockId::GENESIS,
                NodeId(0),
                QuorumCert::genesis(),
                vec![],
            )
            .into(),
        );
        let big = Message::Proposal(
            Block::new(
                View(1),
                crate::ids::Height(1),
                BlockId::GENESIS,
                NodeId(0),
                QuorumCert::genesis(),
                (0..400)
                    .map(|i| Transaction::new(NodeId(1), i, 128, SimTime::ZERO))
                    .collect(),
            )
            .into(),
        );
        assert!(big.wire_size() > small.wire_size() + 400 * 128);
    }

    #[test]
    fn views_are_exposed() {
        let block = sample_block();
        assert_eq!(Message::Proposal(block.into()).view(), Some(View(2)));
        let req = Message::Request(ClientRequest::unsigned(Transaction::new(
            NodeId(1),
            0,
            0,
            SimTime::ZERO,
        )));
        assert_eq!(req.view(), None);
    }

    #[test]
    fn signed_requests_verify_and_reject_tampering() {
        let client = KeyPair::client_from_seed(17);
        let tx = Transaction::new(NodeId(1_000_017), 5, 0, SimTime(42));
        let req = ClientRequest::signed(tx.clone(), &client);
        assert!(req.verify(&client.public_key()));
        assert!(!req.verify(&KeyPair::client_from_seed(18).public_key()));
        assert!(!ClientRequest::unsigned(tx.clone()).verify(&client.public_key()));
        let forged = ClientRequest {
            transaction: Transaction::new(NodeId(1_000_017), 6, 0, SimTime(42)),
            signature: req.signature,
        };
        assert!(!forged.verify(&client.public_key()));
        assert_eq!(
            req.wire_size(),
            ClientRequest::unsigned(tx).wire_size() + 32
        );
    }

    #[test]
    fn display_includes_tag_and_view() {
        let block = sample_block();
        let msg = Message::Proposal(block.into());
        assert_eq!(msg.to_string(), "proposal@v2");
        let req = Message::Request(ClientRequest::unsigned(Transaction::new(
            NodeId(1),
            0,
            0,
            SimTime::ZERO,
        )));
        assert_eq!(req.to_string(), "request");
    }
}

//! The Quorum component: vote collection and QC formation.
//!
//! Bamboo's Quorum component "supports two simple interfaces to collect votes
//! (via the interface voted()) and generate QCs (via certified())" (§III-E).
//! [`QuorumTracker`] is that component: it accumulates votes per block,
//! deduplicates voters, and emits a [`QuorumCert`] exactly once when the
//! threshold is reached.

use std::collections::HashMap;

use bamboo_types::{ids::quorum_threshold, BlockId, QuorumCert, View, Vote};

/// Collects votes and forms quorum certificates.
#[derive(Debug, Clone)]
pub struct QuorumTracker {
    nodes: usize,
    /// Pending votes per block.
    votes: HashMap<BlockId, Vec<Vote>>,
    /// Blocks for which a QC has already been produced.
    certified: HashMap<BlockId, View>,
    /// Total votes accepted (for metrics).
    accepted: u64,
    /// Votes dropped as duplicates or stale.
    dropped: u64,
}

impl QuorumTracker {
    /// Creates a tracker for a system of `nodes` replicas.
    pub fn new(nodes: usize) -> Self {
        Self {
            nodes,
            votes: HashMap::new(),
            certified: HashMap::new(),
            accepted: 0,
            dropped: 0,
        }
    }

    /// The vote threshold (`2f + 1`).
    pub fn threshold(&self) -> usize {
        quorum_threshold(self.nodes)
    }

    /// `voted()`: registers a vote. Returns `Some(qc)` the moment the block
    /// reaches the threshold (and never again for the same block).
    pub fn add_vote(&mut self, vote: Vote) -> Option<QuorumCert> {
        if self.certified.contains_key(&vote.block) {
            self.dropped += 1;
            return None;
        }
        let entry = self.votes.entry(vote.block).or_default();
        if entry.iter().any(|v| v.voter == vote.voter) {
            self.dropped += 1;
            return None;
        }
        self.accepted += 1;
        entry.push(vote.clone());
        if entry.len() >= quorum_threshold(self.nodes) {
            let votes = self.votes.remove(&vote.block).expect("entry exists");
            self.certified.insert(vote.block, vote.view);
            return Some(QuorumCert::from_votes(vote.block, vote.view, &votes));
        }
        None
    }

    /// `certified()`: returns true if a QC has been produced for `block`.
    pub fn is_certified(&self, block: BlockId) -> bool {
        self.certified.contains_key(&block)
    }

    /// Number of votes currently buffered for `block`.
    pub fn pending_votes(&self, block: BlockId) -> usize {
        self.votes.get(&block).map(Vec::len).unwrap_or(0)
    }

    /// Drops buffered votes for blocks proposed before `view`; called after
    /// commits to keep memory bounded over long runs.
    pub fn prune_below(&mut self, view: View) {
        self.votes
            .retain(|_, votes| votes.first().map(|v| v.view >= view).unwrap_or(false));
        self.certified.retain(|_, v| *v >= view);
    }

    /// Total accepted and dropped vote counts.
    pub fn counters(&self) -> (u64, u64) {
        (self.accepted, self.dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bamboo_crypto::{Digest, KeyPair};
    use bamboo_types::NodeId;

    fn vote(block: u8, view: u64, voter: u64) -> Vote {
        let kp = KeyPair::from_seed(voter);
        Vote::new(
            BlockId(Digest::of(&[block])),
            View(view),
            NodeId(voter),
            &kp,
        )
    }

    #[test]
    fn qc_forms_exactly_at_threshold() {
        let mut q = QuorumTracker::new(4);
        assert_eq!(q.threshold(), 3);
        assert!(q.add_vote(vote(1, 2, 0)).is_none());
        assert!(q.add_vote(vote(1, 2, 1)).is_none());
        let qc = q.add_vote(vote(1, 2, 2)).expect("third vote certifies");
        assert_eq!(qc.signer_count(), 3);
        assert_eq!(qc.view, View(2));
        assert!(q.is_certified(BlockId(Digest::of(&[1]))));
    }

    #[test]
    fn duplicate_voters_do_not_count() {
        let mut q = QuorumTracker::new(4);
        assert!(q.add_vote(vote(1, 2, 0)).is_none());
        assert!(q.add_vote(vote(1, 2, 0)).is_none());
        assert!(q.add_vote(vote(1, 2, 0)).is_none());
        assert!(!q.is_certified(BlockId(Digest::of(&[1]))));
        assert_eq!(q.counters(), (1, 2));
    }

    #[test]
    fn votes_after_certification_are_ignored() {
        let mut q = QuorumTracker::new(4);
        q.add_vote(vote(1, 2, 0));
        q.add_vote(vote(1, 2, 1));
        assert!(q.add_vote(vote(1, 2, 2)).is_some());
        assert!(
            q.add_vote(vote(1, 2, 3)).is_none(),
            "late vote produces no second QC"
        );
    }

    #[test]
    fn separate_blocks_are_tracked_independently() {
        let mut q = QuorumTracker::new(4);
        q.add_vote(vote(1, 2, 0));
        q.add_vote(vote(2, 2, 0));
        assert_eq!(q.pending_votes(BlockId(Digest::of(&[1]))), 1);
        assert_eq!(q.pending_votes(BlockId(Digest::of(&[2]))), 1);
    }

    #[test]
    fn prune_discards_old_buffers() {
        let mut q = QuorumTracker::new(7);
        q.add_vote(vote(1, 2, 0));
        q.add_vote(vote(2, 9, 0));
        q.prune_below(View(5));
        assert_eq!(q.pending_votes(BlockId(Digest::of(&[1]))), 0);
        assert_eq!(q.pending_votes(BlockId(Digest::of(&[2]))), 1);
    }

    #[test]
    fn larger_systems_need_larger_quorums() {
        let mut q = QuorumTracker::new(32);
        assert_eq!(q.threshold(), 22);
        for voter in 0..21 {
            assert!(q.add_vote(vote(1, 1, voter)).is_none());
        }
        assert!(q.add_vote(vote(1, 1, 21)).is_some());
    }
}

//! The verification worker pool of the threaded runtime.
//!
//! Signature checking is the dominant CPU cost of a chained-BFT replica (the
//! paper's `t_CPU` term), and doing it on the consensus thread serialises
//! crypto with the protocol logic. The [`VerifyPool`] moves authentication
//! into a stage of its own: transports submit raw inbound messages, a set of
//! worker threads (plain `std::thread` + mpsc channels — the workspace takes
//! no external dependencies) verifies them against the validator set, and
//! only [`VerifiedMessage`] proof tokens are delivered onward. The consensus
//! thread therefore pipelines with verification instead of blocking on it.
//!
//! The pool is a *cluster-level* service, which buys a second, larger win: a
//! broadcast is verified **once per unique message**, not once per recipient.
//! With `n = 32` replicas, inline per-replica ingress performs 31 redundant
//! verifications of every proposal; the pool performs one and fans the proof
//! token out (the token is `Clone`; proposals are `Arc`-backed, so the
//! fan-out is pointer bumps). In-process, all replicas share one trusted
//! computing base anyway — the transport — so sharing the verifier weakens
//! nothing. Since PR 4 the deterministic simulator applies the same
//! verify-once trick synchronously: each unique envelope is checked when the
//! runner absorbs it, and recipients receive fanned-out proof tokens, with
//! modeled per-replica CPU accounting unchanged.
//!
//! Jobs are distributed round-robin over per-worker channels (no shared
//! receiver lock), and a forged message is counted exactly once however many
//! recipients it had.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use bamboo_types::{Authenticator, Message, NodeId, VerifiedMessage};

/// Where a verified message should be delivered.
#[derive(Clone, Copy, Debug)]
enum Recipients {
    /// A single replica.
    One(NodeId),
    /// Every replica except the sender.
    AllExceptSender,
}

struct VerifyJob {
    from: NodeId,
    recipients: Recipients,
    message: Message,
}

/// A cheap, cloneable handle for submitting messages to a [`VerifyPool`].
///
/// Each replica thread's transport owns one; dropping every handle (plus the
/// pool's own) is what lets the workers drain and exit.
#[derive(Clone)]
pub struct VerifyHandle {
    senders: Vec<Sender<VerifyJob>>,
    next: Arc<AtomicUsize>,
}

impl VerifyHandle {
    /// Submits a message addressed to a single replica.
    pub fn submit_unicast(&self, from: NodeId, to: NodeId, message: Message) {
        self.submit(VerifyJob {
            from,
            recipients: Recipients::One(to),
            message,
        });
    }

    /// Submits a broadcast: verified once, delivered to every replica except
    /// `from`.
    pub fn submit_broadcast(&self, from: NodeId, message: Message) {
        self.submit(VerifyJob {
            from,
            recipients: Recipients::AllExceptSender,
            message,
        });
    }

    fn submit(&self, job: VerifyJob) {
        let index = self.next.fetch_add(1, Ordering::Relaxed) % self.senders.len();
        // A send error means the pool is shutting down; messages in flight at
        // shutdown are dropped, exactly like the channel sends in the
        // threaded transport.
        let _ = self.senders[index].send(job);
    }
}

/// A pool of verification worker threads for one cluster.
pub struct VerifyPool {
    handle: VerifyHandle,
    workers: Vec<JoinHandle<()>>,
    accepted: Arc<AtomicU64>,
    rejected: Arc<AtomicU64>,
}

impl VerifyPool {
    /// Spawns `workers` verification threads for a validator set of `nodes`
    /// replicas. Each verified message is handed to `deliver` once per
    /// recipient; forged messages are dropped (and counted) without ever
    /// reaching `deliver`.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero (a cluster that wants inline verification
    /// simply does not construct a pool).
    pub fn new<F>(nodes: usize, workers: usize, deliver: F) -> Self
    where
        F: Fn(NodeId, VerifiedMessage) + Send + Sync + 'static,
    {
        assert!(workers > 0, "a verify pool needs at least one worker");
        let deliver = Arc::new(deliver);
        let accepted = Arc::new(AtomicU64::new(0));
        let rejected = Arc::new(AtomicU64::new(0));
        let mut senders = Vec::with_capacity(workers);
        let mut joins = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = channel::<VerifyJob>();
            senders.push(tx);
            let deliver = Arc::clone(&deliver);
            let accepted = Arc::clone(&accepted);
            let rejected = Arc::clone(&rejected);
            joins.push(std::thread::spawn(move || {
                run_worker(nodes, rx, &*deliver, &accepted, &rejected)
            }));
        }
        Self {
            handle: VerifyHandle {
                senders,
                next: Arc::new(AtomicUsize::new(0)),
            },
            workers: joins,
            accepted,
            rejected,
        }
    }

    /// A submission handle for transports.
    pub fn handle(&self) -> VerifyHandle {
        self.handle.clone()
    }

    /// Unique messages that passed verification.
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Acquire)
    }

    /// Unique messages rejected as forged or malformed.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Acquire)
    }

    /// Total unique messages processed (accepted + rejected). Lets callers
    /// wait for a known amount of submitted work to drain.
    pub fn processed(&self) -> u64 {
        // Two relaxed loads can momentarily disagree mid-update; acquire
        // ordering on both keeps the sum monotone for pollers.
        self.accepted() + self.rejected()
    }

    /// Stops accepting work, drains in-flight jobs, joins the workers and
    /// returns the final `(accepted, rejected)` totals — sampled only after
    /// the drain, so jobs still queued at shutdown are counted. Handles still
    /// held elsewhere keep their workers alive until dropped.
    pub fn shutdown(self) -> (u64, u64) {
        let VerifyPool {
            handle,
            workers,
            accepted,
            rejected,
        } = self;
        drop(handle);
        for worker in workers {
            let _ = worker.join();
        }
        (
            accepted.load(Ordering::Acquire),
            rejected.load(Ordering::Acquire),
        )
    }
}

fn run_worker(
    nodes: usize,
    jobs: Receiver<VerifyJob>,
    deliver: &(dyn Fn(NodeId, VerifiedMessage) + Send + Sync),
    accepted: &AtomicU64,
    rejected: &AtomicU64,
) {
    // Each worker owns its authenticator: the batch-verifier buffers inside
    // are reused across jobs, so steady-state verification is allocation-free
    // and workers never contend on shared state.
    let mut authenticator = Authenticator::for_nodes(nodes);
    while let Ok(job) = jobs.recv() {
        match authenticator.authenticate(job.from, job.message) {
            Ok(verified) => {
                accepted.fetch_add(1, Ordering::Release);
                match job.recipients {
                    Recipients::One(to) => deliver(to, verified),
                    Recipients::AllExceptSender => {
                        for id in 0..nodes as u64 {
                            let to = NodeId(id);
                            if to != job.from {
                                deliver(to, verified.clone());
                            }
                        }
                    }
                }
            }
            Err(_) => {
                rejected.fetch_add(1, Ordering::Release);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bamboo_crypto::KeyPair;
    use bamboo_types::{BlockId, View, Vote};
    use std::sync::mpsc::channel as std_channel;
    use std::time::Duration;

    fn vote(voter: u64, seed: u64) -> Message {
        Message::Vote(Vote::new(
            BlockId::GENESIS,
            View(1),
            NodeId(voter),
            &KeyPair::from_seed(seed),
        ))
    }

    #[test]
    fn pool_delivers_valid_messages_and_drops_forgeries() {
        let (tx, rx) = std_channel::<(NodeId, VerifiedMessage)>();
        let pool = VerifyPool::new(4, 2, move |to, vm| {
            let _ = tx.send((to, vm));
        });
        let handle = pool.handle();
        handle.submit_unicast(NodeId(1), NodeId(2), vote(1, 1));
        handle.submit_unicast(NodeId(1), NodeId(2), vote(1, 3)); // forged
        let (to, vm) = rx
            .recv_timeout(Duration::from_secs(5))
            .expect("valid vote delivered");
        assert_eq!(to, NodeId(2));
        assert_eq!(vm.sender(), NodeId(1));
        // The forgery is never delivered.
        while pool.processed() < 2 {
            std::thread::yield_now();
        }
        assert_eq!(pool.accepted(), 1);
        assert_eq!(pool.rejected(), 1);
        assert!(rx.try_recv().is_err());
        drop(handle);
        pool.shutdown();
    }

    #[test]
    fn broadcast_is_verified_once_and_fanned_out_to_everyone_else() {
        let (tx, rx) = std_channel::<NodeId>();
        let pool = VerifyPool::new(4, 1, move |to, _vm| {
            let _ = tx.send(to);
        });
        pool.handle().submit_broadcast(NodeId(0), vote(0, 0));
        let mut recipients: Vec<NodeId> = (0..3)
            .map(|_| rx.recv_timeout(Duration::from_secs(5)).expect("delivered"))
            .collect();
        recipients.sort();
        assert_eq!(recipients, vec![NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(pool.accepted(), 1, "one verification for three deliveries");
        pool.shutdown();
    }

    #[test]
    fn shutdown_joins_workers_after_handles_drop() {
        let pool = VerifyPool::new(4, 3, |_, _| {});
        let handle = pool.handle();
        handle.submit_broadcast(NodeId(0), vote(0, 0));
        drop(handle);
        pool.shutdown(); // must not hang
    }
}

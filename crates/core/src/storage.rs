//! Durable storage: an append-only segment log plus persisted checkpoint
//! images (DESIGN.md §8).
//!
//! The log is the replica's write-ahead record of everything it must not
//! forget across process death: committed blocks, the QCs that drove them,
//! checkpoint markers, and — most importantly — a [`RecordKind::SafetyRecord`]
//! carrying the voted-view watermark and locked QC, flushed *before* any vote
//! leaves the process. On restart the replica replays the latest checkpoint
//! image plus the log tail to rebuild its forest/ledger and restore the
//! safety state, falling back to network sync only for whatever it missed
//! while down.
//!
//! ## Record framing
//!
//! Every record is `[u32 len][u32 crc][u8 kind][payload…]`, big-endian, where
//! `len` counts the payload bytes and `crc` is CRC-32 (IEEE) over the kind
//! byte followed by the payload. The decoder recovers the **longest valid
//! prefix**: the first record that fails the length, kind, or CRC check ends
//! replay — a torn tail is indistinguishable from a crash mid-write, which is
//! exactly what it is.
//!
//! ## Backends and determinism
//!
//! The [`SegmentBackend`] trait splits the byte-shuffling from the framing
//! policy. The simulator uses [`MemoryBackend`], whose explicit
//! durable/buffered split models fsync semantics deterministically (and lets
//! [`StorageFault`]s maul the durable image byte-for-byte reproducibly at
//! every shard count); the threaded cluster uses [`FileBackend`] over real
//! temp-dir files.

use std::collections::BTreeMap;
use std::fs;
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};

use bamboo_forest::{decode_qc_record, encode_qc_record, SnapshotError};
use bamboo_types::{QuorumCert, View};

/// Frame overhead per record: `[u32 len][u32 crc][u8 kind]`.
pub const RECORD_HEADER_BYTES: usize = 9;

/// Sanity bound on a single record's payload. Anything larger is treated as
/// framing corruption — a real payload (a block with its QC) is orders of
/// magnitude smaller.
const MAX_PAYLOAD_BYTES: u32 = 64 << 20;

// ---- CRC-32 (IEEE 802.3, reflected) -----------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 (IEEE) over `bytes` — the integrity check framing every log record.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

fn crc_of(kind: u8, payload: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    c = CRC_TABLE[((c ^ kind as u32) & 0xFF) as usize] ^ (c >> 8);
    for &b in payload {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---- records ----------------------------------------------------------------

/// What a log record carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecordKind {
    /// A committed ledger entry (block + commit metadata), encoded with
    /// [`bamboo_forest::encode_committed_record`].
    CommittedBlock,
    /// A quorum certificate, encoded with [`bamboo_forest::encode_qc_record`].
    Qc,
    /// Marks that the checkpoint image at the recorded height subsumes every
    /// earlier segment. Always the first record of a fresh segment.
    CheckpointMarker,
    /// The pre-vote safety state `{ voted_view, locked_qc }`, flushed before
    /// the vote it covers is sent.
    SafetyRecord,
}

impl RecordKind {
    fn tag(self) -> u8 {
        match self {
            RecordKind::CommittedBlock => 1,
            RecordKind::Qc => 2,
            RecordKind::CheckpointMarker => 3,
            RecordKind::SafetyRecord => 4,
        }
    }

    fn from_tag(tag: u8) -> Option<RecordKind> {
        match tag {
            1 => Some(RecordKind::CommittedBlock),
            2 => Some(RecordKind::Qc),
            3 => Some(RecordKind::CheckpointMarker),
            4 => Some(RecordKind::SafetyRecord),
            _ => None,
        }
    }
}

fn frame(kind: RecordKind, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_HEADER_BYTES + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&crc_of(kind.tag(), payload).to_be_bytes());
    out.push(kind.tag());
    out.extend_from_slice(payload);
    out
}

/// Encodes the pre-vote safety state: `[u64 voted_view][u8 tag][qc…]`.
pub fn encode_safety_record(voted_view: View, locked_qc: Option<&QuorumCert>) -> Vec<u8> {
    let mut out = Vec::with_capacity(128);
    out.extend_from_slice(&voted_view.as_u64().to_be_bytes());
    match locked_qc {
        Some(qc) => {
            out.push(1);
            out.extend_from_slice(&encode_qc_record(qc));
        }
        None => out.push(0),
    }
    out
}

/// Decodes a payload produced by [`encode_safety_record`].
///
/// # Errors
///
/// Returns the [`SnapshotError`] describing the first structural violation.
pub fn decode_safety_record(bytes: &[u8]) -> Result<(View, Option<QuorumCert>), SnapshotError> {
    if bytes.len() < 9 {
        return Err(SnapshotError::Truncated);
    }
    let view = View(u64::from_be_bytes(bytes[..8].try_into().expect("8 bytes")));
    match bytes[8] {
        0 if bytes.len() == 9 => Ok((view, None)),
        0 => Err(SnapshotError::Corrupt("trailing bytes after record")),
        1 => Ok((view, Some(decode_qc_record(&bytes[9..])?))),
        _ => Err(SnapshotError::Corrupt("invalid option tag")),
    }
}

/// Encodes a checkpoint marker payload: the committed height of the image.
pub fn encode_checkpoint_marker(height: u64) -> Vec<u8> {
    height.to_be_bytes().to_vec()
}

/// Decodes a payload produced by [`encode_checkpoint_marker`].
///
/// # Errors
///
/// Returns [`SnapshotError::Truncated`] unless the payload is exactly 8 bytes.
pub fn decode_checkpoint_marker(bytes: &[u8]) -> Result<u64, SnapshotError> {
    let arr: [u8; 8] = bytes.try_into().map_err(|_| SnapshotError::Truncated)?;
    Ok(u64::from_be_bytes(arr))
}

// ---- stream decoding ---------------------------------------------------------

/// The outcome of decoding one segment's byte stream.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DecodedStream {
    /// The longest valid prefix of records, in append order.
    pub records: Vec<(RecordKind, Vec<u8>)>,
    /// Records lost past the first failure: the failed record itself plus
    /// every later record whose framing is still walkable (CRC corruption
    /// leaves length fields intact; a torn tail does not). Deterministic, so
    /// recovery counters fingerprint identically at every shard count.
    pub discarded: u64,
    /// Whether the stream ended exactly on a record boundary with every
    /// check passing.
    pub clean: bool,
}

/// Reads one frame header, returning `(payload_len, crc, kind_tag)` if the
/// declared length fits in the remaining bytes.
fn read_header(rest: &[u8]) -> Option<(usize, u32, u8)> {
    if rest.len() < RECORD_HEADER_BYTES {
        return None;
    }
    let len = u32::from_be_bytes(rest[..4].try_into().expect("4 bytes"));
    if len > MAX_PAYLOAD_BYTES || (len as usize) > rest.len() - RECORD_HEADER_BYTES {
        return None;
    }
    let crc = u32::from_be_bytes(rest[4..8].try_into().expect("4 bytes"));
    Some((len as usize, crc, rest[8]))
}

/// Decodes a segment byte stream into its longest valid prefix of records.
/// Never panics: any framing, kind, or CRC violation ends the valid prefix,
/// after which the walk continues (where framing allows) purely to count the
/// records being discarded.
pub fn decode_records(bytes: &[u8]) -> DecodedStream {
    let mut out = DecodedStream {
        clean: true,
        ..DecodedStream::default()
    };
    let mut pos = 0usize;
    let mut broken = false;
    while pos < bytes.len() {
        let Some((len, crc, kind_tag)) = read_header(&bytes[pos..]) else {
            // Unwalkable tail: a torn or truncated record of unknowable
            // extent counts as one loss.
            out.discarded += 1;
            out.clean = false;
            break;
        };
        let payload = &bytes[pos + RECORD_HEADER_BYTES..pos + RECORD_HEADER_BYTES + len];
        let valid = RecordKind::from_tag(kind_tag)
            .filter(|_| crc_of(kind_tag, payload) == crc)
            .filter(|_| !broken);
        match valid {
            Some(kind) => out.records.push((kind, payload.to_vec())),
            None => {
                broken = true;
                out.clean = false;
                out.discarded += 1;
            }
        }
        pos += RECORD_HEADER_BYTES + len;
    }
    out
}

// ---- fault injection ---------------------------------------------------------

/// A crash-point storage fault, injected deterministically by the scenario
/// engine when a durable restart fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StorageFault {
    /// The final durable record is cut mid-write, as if the process died
    /// between `write` and `fsync`.
    TornTail,
    /// The last non-empty segment loses its second half — gross media damage
    /// rather than a torn write.
    TruncateSegment,
    /// One byte of the CRC field of durable record `record` (clamped to the
    /// last record) is flipped.
    CorruptCrc {
        /// Zero-based index of the record, counted across all segments.
        record: u64,
    },
    /// The fsync whose batch contains write index `index` silently fails:
    /// that whole batch never reaches the platter, leaving a record-aligned
    /// hole later appends write past.
    DropFsync {
        /// Zero-based append index of a record in the dropped batch.
        index: u64,
    },
}

// ---- backends ----------------------------------------------------------------

/// Byte-level storage for the segment log: numbered append-only segments plus
/// one checkpoint image slot. Implementations distinguish *buffered* writes
/// (lost on crash) from *durable* ones (survive crash) so fsync semantics are
/// explicit.
pub trait SegmentBackend: Send {
    /// Buffers `bytes` at the tail of `segment`, creating it on demand.
    fn append(&mut self, segment: u64, bytes: &[u8]);
    /// Promotes every buffered byte (segments and checkpoint) to durable.
    fn sync(&mut self);
    /// Discards buffered segment bytes without persisting them — the failed
    /// fsync of [`StorageFault::DropFsync`]. File-backed storage cannot
    /// un-write, so only deterministic backends model this.
    fn drop_buffered(&mut self);
    /// Simulates process death: anything not yet durable vanishes.
    fn crash(&mut self);
    /// Durable segments in index order (empty segments omitted).
    fn segments(&self) -> Vec<(u64, Vec<u8>)>;
    /// Overwrites one durable segment's bytes (fault injection).
    fn set_segment(&mut self, segment: u64, bytes: Vec<u8>);
    /// Drops every segment with an index below `segment` (prune).
    fn drop_below(&mut self, segment: u64);
    /// Stages the checkpoint image for `height` (durable after [`Self::sync`]).
    fn put_checkpoint(&mut self, height: u64, bytes: &[u8]);
    /// The durable checkpoint image, if any.
    fn checkpoint(&self) -> Option<(u64, Vec<u8>)>;
}

#[derive(Clone, Debug, Default)]
struct SegmentBuf {
    durable: Vec<u8>,
    buffered: Vec<u8>,
}

/// Deterministic in-memory backend used by the simulator. The
/// durable/buffered split makes fsync — and its injected failures —
/// reproducible at every shard count.
#[derive(Debug, Default)]
pub struct MemoryBackend {
    segments: BTreeMap<u64, SegmentBuf>,
    checkpoint_durable: Option<(u64, Vec<u8>)>,
    checkpoint_buffered: Option<(u64, Vec<u8>)>,
}

impl MemoryBackend {
    /// Creates an empty in-memory backend.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SegmentBackend for MemoryBackend {
    fn append(&mut self, segment: u64, bytes: &[u8]) {
        self.segments
            .entry(segment)
            .or_default()
            .buffered
            .extend_from_slice(bytes);
    }

    fn sync(&mut self) {
        for buf in self.segments.values_mut() {
            let pending = std::mem::take(&mut buf.buffered);
            buf.durable.extend_from_slice(&pending);
        }
        if let Some(cp) = self.checkpoint_buffered.take() {
            self.checkpoint_durable = Some(cp);
        }
    }

    fn drop_buffered(&mut self) {
        for buf in self.segments.values_mut() {
            buf.buffered.clear();
        }
    }

    fn crash(&mut self) {
        self.drop_buffered();
        self.checkpoint_buffered = None;
        self.segments.retain(|_, buf| !buf.durable.is_empty());
    }

    fn segments(&self) -> Vec<(u64, Vec<u8>)> {
        self.segments
            .iter()
            .filter(|(_, buf)| !buf.durable.is_empty())
            .map(|(&seg, buf)| (seg, buf.durable.clone()))
            .collect()
    }

    fn set_segment(&mut self, segment: u64, bytes: Vec<u8>) {
        self.segments.entry(segment).or_default().durable = bytes;
    }

    fn drop_below(&mut self, segment: u64) {
        self.segments.retain(|&seg, _| seg >= segment);
    }

    fn put_checkpoint(&mut self, height: u64, bytes: &[u8]) {
        self.checkpoint_buffered = Some((height, bytes.to_vec()));
    }

    fn checkpoint(&self) -> Option<(u64, Vec<u8>)> {
        self.checkpoint_durable.clone()
    }
}

/// Real-file backend used by the threaded cluster: `segment-NNNNNNNN.log`
/// files plus a `checkpoint-HEIGHT.bsnp` image in one directory, with
/// `File::sync_data` behind [`SegmentBackend::sync`].
///
/// Process death inside the *same* OS instance keeps page-cache writes, so
/// un-fsynced-byte loss (and [`StorageFault::DropFsync`]) cannot be modeled
/// here; crash-point fault injection is the deterministic backend's job.
#[derive(Debug)]
pub struct FileBackend {
    dir: PathBuf,
    active: Option<(u64, fs::File)>,
}

impl FileBackend {
    /// Opens (creating if needed) the storage directory.
    ///
    /// # Errors
    ///
    /// Propagates the `std::io::Error` if the directory cannot be created.
    pub fn open(dir: &Path) -> std::io::Result<Self> {
        fs::create_dir_all(dir)?;
        Ok(Self {
            dir: dir.to_path_buf(),
            active: None,
        })
    }

    fn segment_path(&self, segment: u64) -> PathBuf {
        self.dir.join(format!("segment-{segment:08}.log"))
    }

    fn segment_files(&self) -> Vec<(u64, PathBuf)> {
        let mut out = Vec::new();
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return out;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(idx) = name
                .strip_prefix("segment-")
                .and_then(|rest| rest.strip_suffix(".log"))
                .and_then(|digits| digits.parse::<u64>().ok())
            {
                out.push((idx, entry.path()));
            }
        }
        out.sort_unstable_by_key(|(idx, _)| *idx);
        out
    }

    fn checkpoint_files(&self) -> Vec<(u64, PathBuf)> {
        let mut out = Vec::new();
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return out;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(height) = name
                .strip_prefix("checkpoint-")
                .and_then(|rest| rest.strip_suffix(".bsnp"))
                .and_then(|digits| digits.parse::<u64>().ok())
            {
                out.push((height, entry.path()));
            }
        }
        out.sort_unstable_by_key(|(height, _)| *height);
        out
    }
}

impl SegmentBackend for FileBackend {
    fn append(&mut self, segment: u64, bytes: &[u8]) {
        if self.active.as_ref().map(|(seg, _)| *seg) != Some(segment) {
            let file = fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(self.segment_path(segment))
                .expect("open log segment");
            self.active = Some((segment, file));
        }
        let (_, file) = self.active.as_mut().expect("just opened");
        file.write_all(bytes).expect("append to log segment");
    }

    fn sync(&mut self) {
        if let Some((_, file)) = self.active.as_mut() {
            file.sync_data().expect("fsync log segment");
        }
    }

    fn drop_buffered(&mut self) {
        // Files cannot un-write; DropFsync is a deterministic-backend fault.
    }

    fn crash(&mut self) {
        self.active = None;
    }

    fn segments(&self) -> Vec<(u64, Vec<u8>)> {
        self.segment_files()
            .into_iter()
            .filter_map(|(idx, path)| {
                let mut bytes = Vec::new();
                fs::File::open(path)
                    .and_then(|mut f| f.read_to_end(&mut bytes))
                    .ok()?;
                (!bytes.is_empty()).then_some((idx, bytes))
            })
            .collect()
    }

    fn set_segment(&mut self, segment: u64, bytes: Vec<u8>) {
        self.active = None;
        fs::write(self.segment_path(segment), bytes).expect("rewrite log segment");
    }

    fn drop_below(&mut self, segment: u64) {
        for (idx, path) in self.segment_files() {
            if idx < segment {
                let _ = fs::remove_file(path);
            }
        }
    }

    fn put_checkpoint(&mut self, height: u64, bytes: &[u8]) {
        let tmp = self.dir.join("checkpoint.tmp");
        fs::write(&tmp, bytes).expect("write checkpoint image");
        let path = self.dir.join(format!("checkpoint-{height:016}.bsnp"));
        fs::rename(&tmp, &path).expect("publish checkpoint image");
        for (h, old) in self.checkpoint_files() {
            if h != height {
                let _ = fs::remove_file(old);
            }
        }
    }

    fn checkpoint(&self) -> Option<(u64, Vec<u8>)> {
        let (height, path) = self.checkpoint_files().pop()?;
        fs::read(path).ok().map(|bytes| (height, bytes))
    }
}

// ---- the segment log ---------------------------------------------------------

/// Everything a replay recovered from durable storage.
#[derive(Clone, Debug, Default)]
pub struct ReplayResult {
    /// The durable checkpoint image `(committed_height, BSNP bytes)`, if any.
    pub checkpoint: Option<(u64, Vec<u8>)>,
    /// The longest valid prefix of log records, in append order.
    pub records: Vec<(RecordKind, Vec<u8>)>,
    /// Records lost to corruption: the record that failed its check plus
    /// every later record (even well-framed ones — ordering is broken past
    /// the first failure).
    pub corrupt_records_discarded: u64,
    /// Total durable bytes scanned (segments + checkpoint image), the input
    /// to the modeled disk-read cost.
    pub bytes_read: u64,
}

/// The append-only segment log: record framing, fsync batching, segment
/// rotation, prune-to-checkpoint, crash-point fault injection, and replay.
pub struct SegmentLog {
    backend: Box<dyn SegmentBackend>,
    segment_bytes: usize,
    fsync_interval: usize,
    active: u64,
    active_len: usize,
    records_appended: u64,
    unsynced_records: usize,
    pending_fault: Option<StorageFault>,
    syncs: u64,
}

impl std::fmt::Debug for SegmentLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentLog")
            .field("segment_bytes", &self.segment_bytes)
            .field("fsync_interval", &self.fsync_interval)
            .field("active", &self.active)
            .field("records_appended", &self.records_appended)
            .field("syncs", &self.syncs)
            .finish_non_exhaustive()
    }
}

impl SegmentLog {
    /// Wraps `backend` with the given rotation threshold and fsync batching
    /// interval (both clamped to sane minimums).
    pub fn new(
        backend: Box<dyn SegmentBackend>,
        segment_bytes: usize,
        fsync_interval: usize,
    ) -> Self {
        let mut log = Self {
            backend,
            segment_bytes: segment_bytes.max(RECORD_HEADER_BYTES),
            fsync_interval: fsync_interval.max(1),
            active: 0,
            active_len: 0,
            records_appended: 0,
            unsynced_records: 0,
            pending_fault: None,
            syncs: 0,
        };
        // Resume appending after any existing durable content (fresh
        // backends scan nothing).
        log.reset_from_durable();
        log
    }

    /// A log over the deterministic in-memory backend (the simulator's).
    pub fn in_memory(segment_bytes: usize, fsync_interval: usize) -> Self {
        Self::new(
            Box::new(MemoryBackend::new()),
            segment_bytes,
            fsync_interval,
        )
    }

    /// A log over real files in `dir` (the threaded cluster's).
    ///
    /// # Errors
    ///
    /// Propagates the `std::io::Error` if the directory cannot be created.
    pub fn on_disk(
        dir: &Path,
        segment_bytes: usize,
        fsync_interval: usize,
    ) -> std::io::Result<Self> {
        Ok(Self::new(
            Box::new(FileBackend::open(dir)?),
            segment_bytes,
            fsync_interval,
        ))
    }

    /// Appends a record, flushing per the fsync batching policy. Returns the
    /// framed byte count (the input to the modeled disk-write cost).
    pub fn append(&mut self, kind: RecordKind, payload: &[u8]) -> u64 {
        let bytes = self.append_record(kind, payload);
        if self.unsynced_records >= self.fsync_interval {
            self.sync();
        }
        bytes
    }

    /// Appends a record and flushes immediately — the safety-record path:
    /// the vote must not outrun its durable watermark.
    pub fn append_synced(&mut self, kind: RecordKind, payload: &[u8]) -> u64 {
        let bytes = self.append_record(kind, payload);
        self.sync();
        bytes
    }

    fn append_record(&mut self, kind: RecordKind, payload: &[u8]) -> u64 {
        let frame = frame(kind, payload);
        if self.active_len > 0 && self.active_len + frame.len() > self.segment_bytes {
            self.active += 1;
            self.active_len = 0;
        }
        self.backend.append(self.active, &frame);
        self.active_len += frame.len();
        self.records_appended += 1;
        self.unsynced_records += 1;
        frame.len() as u64
    }

    /// Flushes buffered records to durable storage. An armed
    /// [`StorageFault::DropFsync`] whose index falls in this batch makes the
    /// flush silently fail instead — the batch is gone.
    pub fn sync(&mut self) {
        if self.unsynced_records == 0 {
            return;
        }
        if let Some(StorageFault::DropFsync { index }) = self.pending_fault {
            let first_unsynced = self.records_appended - self.unsynced_records as u64;
            if first_unsynced <= index && index < self.records_appended {
                self.backend.drop_buffered();
                self.pending_fault = None;
                self.unsynced_records = 0;
                self.syncs += 1;
                return;
            }
        }
        self.backend.sync();
        self.unsynced_records = 0;
        self.syncs += 1;
    }

    /// Persists a checkpoint image and cuts the log over to it: flush,
    /// publish the image, rotate to a fresh segment whose first record is the
    /// [`RecordKind::CheckpointMarker`], and prune every older segment.
    /// Returns the bytes written (image + marker) for the disk-cost model.
    pub fn install_checkpoint(&mut self, height: u64, snapshot: &[u8]) -> u64 {
        self.sync();
        self.backend.put_checkpoint(height, snapshot);
        self.active += 1;
        self.active_len = 0;
        self.backend.drop_below(self.active);
        let marker = encode_checkpoint_marker(height);
        let marker_bytes = self.append_record(RecordKind::CheckpointMarker, &marker);
        self.sync();
        marker_bytes + snapshot.len() as u64
    }

    /// Arms a crash-point fault. [`StorageFault::DropFsync`] fires at the
    /// matching [`SegmentLog::sync`]; the others maul the durable image when
    /// [`SegmentLog::crash`] runs.
    pub fn schedule_fault(&mut self, fault: StorageFault) {
        self.pending_fault = Some(fault);
    }

    /// Simulates process death: buffered bytes vanish, any armed fault is
    /// applied to the durable image, and append bookkeeping is rebuilt from
    /// what actually survived.
    pub fn crash(&mut self) {
        self.backend.crash();
        if let Some(fault) = self.pending_fault.take() {
            self.apply_fault(fault);
        }
        self.reset_from_durable();
    }

    fn apply_fault(&mut self, fault: StorageFault) {
        match fault {
            StorageFault::TornTail => {
                let Some((seg, mut bytes)) = self.last_segment() else {
                    return;
                };
                // Re-walk the frames to find where the final record starts,
                // then cut partway into it — a write the crash interrupted.
                let mut pos = 0usize;
                let mut last_start = 0usize;
                while pos + RECORD_HEADER_BYTES <= bytes.len() {
                    let len = u32::from_be_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"))
                        as usize;
                    if pos + RECORD_HEADER_BYTES + len > bytes.len() {
                        break;
                    }
                    last_start = pos;
                    pos += RECORD_HEADER_BYTES + len;
                }
                let torn = last_start + (bytes.len() - last_start).div_ceil(2).max(1);
                bytes.truncate(torn.min(bytes.len().saturating_sub(1)));
                self.backend.set_segment(seg, bytes);
            }
            StorageFault::TruncateSegment => {
                let Some((seg, mut bytes)) = self.last_segment() else {
                    return;
                };
                bytes.truncate(bytes.len() / 2);
                self.backend.set_segment(seg, bytes);
            }
            StorageFault::CorruptCrc { record } => {
                let segments = self.backend.segments();
                let total: u64 = segments
                    .iter()
                    .map(|(_, bytes)| decode_records(bytes).records.len() as u64)
                    .sum();
                if total == 0 {
                    return;
                }
                let mut target = record.min(total - 1);
                for (seg, mut bytes) in segments {
                    let here = decode_records(&bytes).records.len() as u64;
                    if target >= here {
                        target -= here;
                        continue;
                    }
                    // Walk to the target record's frame and flip a CRC byte.
                    let mut pos = 0usize;
                    for _ in 0..target {
                        let len =
                            u32::from_be_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"))
                                as usize;
                        pos += RECORD_HEADER_BYTES + len;
                    }
                    bytes[pos + 4] ^= 0xA5;
                    self.backend.set_segment(seg, bytes);
                    return;
                }
            }
            // Consumed at sync time; armed-but-unfired means the batch it
            // named was never flushed, so there is nothing to maul.
            StorageFault::DropFsync { .. } => {}
        }
    }

    fn last_segment(&self) -> Option<(u64, Vec<u8>)> {
        self.backend.segments().pop()
    }

    fn reset_from_durable(&mut self) {
        let segments = self.backend.segments();
        self.unsynced_records = 0;
        self.records_appended = segments
            .iter()
            .map(|(_, bytes)| decode_records(bytes).records.len() as u64)
            .sum();
        match segments.last() {
            Some((seg, bytes)) => {
                self.active = *seg;
                self.active_len = bytes.len();
            }
            None => {
                // Preserve the rotation point: a pruned log must not reuse
                // dropped segment indices.
                self.active_len = 0;
            }
        }
    }

    /// Replays durable state: the checkpoint image plus the longest valid
    /// prefix of log records.
    pub fn replay(&self) -> ReplayResult {
        let mut result = ReplayResult {
            checkpoint: self.backend.checkpoint(),
            ..ReplayResult::default()
        };
        if let Some((_, bytes)) = &result.checkpoint {
            result.bytes_read += bytes.len() as u64;
        }
        let mut broken = false;
        for (_, bytes) in self.backend.segments() {
            result.bytes_read += bytes.len() as u64;
            let decoded = decode_records(&bytes);
            if broken {
                // Ordering is broken past the first failure: well-framed
                // records in later segments are unusable.
                result.corrupt_records_discarded +=
                    decoded.records.len() as u64 + decoded.discarded;
                continue;
            }
            result.records.extend(decoded.records);
            result.corrupt_records_discarded += decoded.discarded;
            broken = !decoded.clean;
        }
        result
    }

    /// Total records appended since the log was opened (or last crashed).
    pub fn records_appended(&self) -> u64 {
        self.records_appended
    }

    /// Number of flushes performed (batched appends amortise this).
    pub fn syncs(&self) -> u64 {
        self.syncs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift — the tests must not depend on external RNGs.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    fn random_records(seed: u64, count: usize) -> Vec<(RecordKind, Vec<u8>)> {
        let mut rng = Rng(seed | 1);
        (0..count)
            .map(|_| {
                let kind = match rng.next() % 4 {
                    0 => RecordKind::CommittedBlock,
                    1 => RecordKind::Qc,
                    2 => RecordKind::CheckpointMarker,
                    _ => RecordKind::SafetyRecord,
                };
                let len = (rng.next() % 200) as usize;
                let payload: Vec<u8> = (0..len).map(|_| (rng.next() & 0xFF) as u8).collect();
                (kind, payload)
            })
            .collect()
    }

    fn stream_of(records: &[(RecordKind, Vec<u8>)]) -> Vec<u8> {
        let mut out = Vec::new();
        for (kind, payload) in records {
            out.extend_from_slice(&frame(*kind, payload));
        }
        out
    }

    #[test]
    fn crc32_matches_ieee_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trips_randomized_record_sequences() {
        for seed in [1u64, 7, 42, 2021] {
            let records = random_records(seed, 100);
            // Small segments force rotation; batching leaves a buffered tail
            // that an explicit sync must flush.
            let mut log = SegmentLog::in_memory(512, 5);
            for (kind, payload) in &records {
                log.append(*kind, payload);
            }
            log.sync();
            log.crash();
            let replay = log.replay();
            assert_eq!(replay.records, records, "seed {seed}");
            assert_eq!(replay.corrupt_records_discarded, 0);
            assert!(replay.bytes_read > 0);
        }
    }

    #[test]
    fn unsynced_tail_is_lost_on_crash() {
        let mut log = SegmentLog::in_memory(1 << 20, 100);
        let records = random_records(3, 10);
        for (kind, payload) in &records {
            log.append(*kind, payload);
        }
        // No sync: interval is 100, so everything is still buffered.
        log.crash();
        assert!(log.replay().records.is_empty());
        assert_eq!(log.records_appended(), 0);
    }

    #[test]
    fn fsync_interval_batches_flushes() {
        let mut log = SegmentLog::in_memory(1 << 20, 4);
        for (kind, payload) in random_records(9, 8) {
            log.append(kind, &payload);
        }
        assert_eq!(log.syncs(), 2, "8 records at interval 4");
        let mut synced = SegmentLog::in_memory(1 << 20, 4);
        synced.append_synced(RecordKind::SafetyRecord, b"watermark");
        assert_eq!(synced.syncs(), 1, "safety records flush immediately");
    }

    #[test]
    fn torn_tail_recovers_longest_valid_prefix_at_every_cut() {
        let records = random_records(11, 20);
        let stream = stream_of(&records);
        for cut in 0..stream.len() {
            let decoded = decode_records(&stream[..cut]);
            assert!(
                decoded.records.len() <= records.len(),
                "cut {cut} produced extra records"
            );
            for (got, want) in decoded.records.iter().zip(records.iter()) {
                assert_eq!(got, want, "cut {cut} diverged");
            }
            if cut < stream.len() {
                assert!(!decoded.clean || decoded.records.len() < records.len());
            }
        }
        assert!(decode_records(&stream).clean);
    }

    #[test]
    fn corrupt_byte_at_every_offset_never_panics() {
        let records = random_records(13, 8);
        let stream = stream_of(&records);
        for offset in 0..stream.len() {
            let mut mauled = stream.clone();
            mauled[offset] ^= 0xFF;
            let decoded = decode_records(&mauled);
            for (got, want) in decoded.records.iter().zip(records.iter()) {
                if got != want {
                    // A flipped byte may still frame correctly only within
                    // the record it hit; all earlier records must match.
                    break;
                }
            }
            assert!(decoded.records.len() <= records.len());
        }
    }

    #[test]
    fn garbage_suffix_is_discarded() {
        let records = random_records(17, 6);
        let mut stream = stream_of(&records);
        stream.extend_from_slice(&[0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02, 0x03]);
        let decoded = decode_records(&stream);
        assert_eq!(decoded.records, records);
        assert!(!decoded.clean);
    }

    #[test]
    fn torn_tail_fault_drops_only_the_final_record() {
        let records = random_records(19, 12);
        let mut log = SegmentLog::in_memory(1 << 20, 1);
        for (kind, payload) in &records {
            log.append(*kind, payload);
        }
        log.schedule_fault(StorageFault::TornTail);
        log.crash();
        let replay = log.replay();
        assert_eq!(replay.records, records[..records.len() - 1].to_vec());
        assert_eq!(replay.corrupt_records_discarded, 1);
    }

    #[test]
    fn truncate_segment_fault_recovers_a_prefix() {
        let records = random_records(23, 12);
        let mut log = SegmentLog::in_memory(1 << 20, 1);
        for (kind, payload) in &records {
            log.append(*kind, payload);
        }
        log.schedule_fault(StorageFault::TruncateSegment);
        log.crash();
        let replay = log.replay();
        assert!(replay.records.len() < records.len());
        assert_eq!(replay.records, records[..replay.records.len()].to_vec());
        assert!(replay.corrupt_records_discarded >= 1);
    }

    #[test]
    fn corrupt_crc_fault_stops_replay_at_the_record() {
        let records = random_records(29, 10);
        let mut log = SegmentLog::in_memory(1 << 20, 1);
        for (kind, payload) in &records {
            log.append(*kind, payload);
        }
        log.schedule_fault(StorageFault::CorruptCrc { record: 4 });
        log.crash();
        let replay = log.replay();
        assert_eq!(replay.records, records[..4].to_vec());
        // The mauled record plus the five well-framed ones after it.
        assert_eq!(replay.corrupt_records_discarded, 6);
    }

    #[test]
    fn drop_fsync_fault_leaves_a_record_aligned_hole() {
        let records = random_records(31, 12);
        let mut log = SegmentLog::in_memory(1 << 20, 4);
        log.schedule_fault(StorageFault::DropFsync { index: 5 });
        for (kind, payload) in &records {
            log.append(*kind, payload);
        }
        log.crash();
        let replay = log.replay();
        // Batch [4..8) vanished; earlier and later batches survived. The
        // stream still frames cleanly — the hole is semantic, which is why
        // the replica must verify chain linkage during replay.
        let mut expected = records[..4].to_vec();
        expected.extend_from_slice(&records[8..]);
        assert_eq!(replay.records, expected);
        assert_eq!(replay.corrupt_records_discarded, 0);
    }

    #[test]
    fn rotation_spreads_records_across_segments_in_order() {
        let records = random_records(37, 40);
        let mut log = SegmentLog::in_memory(256, 1);
        for (kind, payload) in &records {
            log.append(*kind, payload);
        }
        log.crash();
        assert_eq!(log.replay().records, records);
    }

    #[test]
    fn checkpoint_prunes_older_segments() {
        let mut log = SegmentLog::in_memory(256, 1);
        for (kind, payload) in random_records(41, 30) {
            log.append(kind, &payload);
        }
        let image = b"BSNP-image-stand-in".to_vec();
        log.install_checkpoint(30, &image);
        let post: Vec<(RecordKind, Vec<u8>)> = random_records(43, 5);
        for (kind, payload) in &post {
            log.append(*kind, payload);
        }
        log.sync();
        log.crash();
        let replay = log.replay();
        assert_eq!(replay.checkpoint, Some((30, image)));
        let mut expected = vec![(RecordKind::CheckpointMarker, encode_checkpoint_marker(30))];
        expected.extend(post);
        assert_eq!(replay.records, expected, "pre-checkpoint records pruned");
    }

    #[test]
    fn safety_record_codec_round_trips() {
        let (view, qc) = decode_safety_record(&encode_safety_record(View(17), None)).unwrap();
        assert_eq!(view, View(17));
        assert!(qc.is_none());
        let genesis = QuorumCert::genesis();
        let (view, qc) =
            decode_safety_record(&encode_safety_record(View(99), Some(&genesis))).unwrap();
        assert_eq!(view, View(99));
        assert_eq!(qc, Some(genesis));
        assert!(decode_safety_record(&[1, 2, 3]).is_err());
        assert!(decode_checkpoint_marker(&encode_checkpoint_marker(7)).unwrap() == 7);
        assert!(decode_checkpoint_marker(&[0; 7]).is_err());
    }

    #[test]
    fn file_backend_round_trips_through_real_files() {
        let dir = std::env::temp_dir().join(format!(
            "bamboo-storage-test-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock")
                .as_nanos()
        ));
        let records = random_records(47, 25);
        {
            let mut log = SegmentLog::on_disk(&dir, 512, 3).expect("open");
            for (kind, payload) in &records {
                log.append(*kind, payload);
            }
            log.install_checkpoint(25, b"image");
            for (kind, payload) in &records[..5] {
                log.append(*kind, payload);
            }
            log.sync();
        }
        // A brand-new log over the same directory resumes from the files.
        let log = SegmentLog::on_disk(&dir, 512, 3).expect("reopen");
        let replay = log.replay();
        assert_eq!(replay.checkpoint, Some((25, b"image".to_vec())));
        assert_eq!(replay.records.len(), 6, "marker + 5 post-checkpoint");
        assert_eq!(replay.records[1..].to_vec(), records[..5].to_vec());
        assert_eq!(log.records_appended(), 6);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}

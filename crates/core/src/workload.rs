//! Workload generation: the Bamboo client library.
//!
//! Two client models are provided, matching how the paper drives its
//! benchmarks:
//!
//! * [`OpenLoopWorkload`] — transactions arrive according to a Poisson process
//!   with a configurable rate and are sent to a uniformly random replica
//!   (exactly the arrival model assumed by the analytical model of §V). The
//!   figures' curves are produced by sweeping this rate until saturation.
//! * [`ClosedLoopWorkload`] — a fixed number of concurrent clients (Table I's
//!   `concurrency`), each with one outstanding request: a client issues its
//!   next transaction only after the previous one commits.

use bamboo_sim::SimRng;
use bamboo_types::{NodeId, SimDuration, SimTime, Transaction, TxId};

/// A transaction arrival produced by a workload generator.
#[derive(Clone, Debug)]
pub struct Arrival {
    /// When the client issues the transaction.
    pub issued_at: SimTime,
    /// The replica it is sent to.
    pub replica: NodeId,
    /// The transaction.
    pub transaction: Transaction,
}

/// A source of client transactions.
pub trait Workload {
    /// Generates the arrivals issued during `[from, to)`.
    fn arrivals(&mut self, from: SimTime, to: SimTime, rng: &mut SimRng) -> Vec<Arrival>;

    /// Notifies the workload that `tx` committed at `at` (used by closed-loop
    /// clients to issue their next request).
    fn on_commit(&mut self, tx: TxId, at: SimTime);

    /// Total transactions issued so far.
    fn total_issued(&self) -> u64;
}

/// Open-loop Poisson arrivals at a fixed aggregate rate.
#[derive(Clone, Debug)]
pub struct OpenLoopWorkload {
    rate_tx_per_sec: f64,
    payload_size: usize,
    replicas: usize,
    client: NodeId,
    next_seq: u64,
    /// Time of the next scheduled arrival (carried across windows).
    next_arrival: Option<SimTime>,
}

impl OpenLoopWorkload {
    /// Creates an open-loop workload issuing `rate_tx_per_sec` transactions
    /// per second spread uniformly over `replicas` replicas.
    pub fn new(rate_tx_per_sec: f64, payload_size: usize, replicas: usize) -> Self {
        Self {
            rate_tx_per_sec,
            payload_size,
            replicas,
            client: NodeId(1_000_000),
            next_seq: 0,
            next_arrival: None,
        }
    }

    /// The configured arrival rate.
    pub fn rate(&self) -> f64 {
        self.rate_tx_per_sec
    }
}

impl Workload for OpenLoopWorkload {
    fn arrivals(&mut self, from: SimTime, to: SimTime, rng: &mut SimRng) -> Vec<Arrival> {
        if self.rate_tx_per_sec <= 0.0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut cursor = self.next_arrival.unwrap_or_else(|| {
            from + SimDuration::from_secs_f64(rng.exponential(self.rate_tx_per_sec))
        });
        while cursor < to {
            let replica = NodeId(rng.choose_index(self.replicas) as u64);
            let tx = Transaction::new(self.client, self.next_seq, self.payload_size, cursor);
            self.next_seq += 1;
            out.push(Arrival {
                issued_at: cursor,
                replica,
                transaction: tx,
            });
            cursor += SimDuration::from_secs_f64(rng.exponential(self.rate_tx_per_sec));
        }
        self.next_arrival = Some(cursor);
        out
    }

    fn on_commit(&mut self, _tx: TxId, _at: SimTime) {}

    fn total_issued(&self) -> u64 {
        self.next_seq
    }
}

/// Closed-loop clients: `concurrency` clients each keep exactly one request in
/// flight.
#[derive(Clone, Debug)]
pub struct ClosedLoopWorkload {
    concurrency: usize,
    payload_size: usize,
    replicas: usize,
    next_seq: u64,
    started: bool,
    /// Requests that became ready when their predecessor committed but have
    /// not been handed to the runner yet.
    ready: Vec<Arrival>,
    /// Maps in-flight transaction ids to the issuing client slot.
    in_flight: std::collections::HashMap<TxId, usize>,
}

impl ClosedLoopWorkload {
    /// Creates a closed-loop workload with `concurrency` clients.
    pub fn new(concurrency: usize, payload_size: usize, replicas: usize) -> Self {
        Self {
            concurrency,
            payload_size,
            replicas,
            next_seq: 0,
            started: false,
            ready: Vec::new(),
            in_flight: std::collections::HashMap::new(),
        }
    }

    fn issue(&mut self, slot: usize, at: SimTime, rng: &mut SimRng) -> Arrival {
        let client = NodeId(2_000_000 + slot as u64);
        let tx = Transaction::new(client, self.next_seq, self.payload_size, at);
        self.next_seq += 1;
        self.in_flight.insert(tx.id, slot);
        Arrival {
            issued_at: at,
            replica: NodeId(rng.choose_index(self.replicas) as u64),
            transaction: tx,
        }
    }
}

impl Workload for ClosedLoopWorkload {
    fn arrivals(&mut self, from: SimTime, _to: SimTime, rng: &mut SimRng) -> Vec<Arrival> {
        let mut out = Vec::new();
        if !self.started {
            self.started = true;
            for slot in 0..self.concurrency {
                out.push(self.issue(slot, from, rng));
            }
        }
        // Hand over requests whose predecessors have committed; re-stamp the
        // replica choice here so it uses the runner's RNG stream.
        for mut arrival in std::mem::take(&mut self.ready) {
            arrival.replica = NodeId(rng.choose_index(self.replicas) as u64);
            out.push(arrival);
        }
        out
    }

    fn on_commit(&mut self, tx: TxId, at: SimTime) {
        if let Some(slot) = self.in_flight.remove(&tx) {
            let client = NodeId(2_000_000 + slot as u64);
            let next = Transaction::new(client, self.next_seq, self.payload_size, at);
            self.next_seq += 1;
            self.in_flight.insert(next.id, slot);
            self.ready.push(Arrival {
                issued_at: at,
                replica: NodeId(0),
                transaction: next,
            });
        }
    }

    fn total_issued(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_loop_rate_is_respected() {
        let mut wl = OpenLoopWorkload::new(10_000.0, 0, 4);
        let mut rng = SimRng::new(1);
        let arrivals = wl.arrivals(
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::from_secs(1),
            &mut rng,
        );
        let n = arrivals.len() as f64;
        assert!((n - 10_000.0).abs() < 500.0, "got {n} arrivals");
        assert_eq!(wl.total_issued(), arrivals.len() as u64);
        // All arrivals are inside the window and target valid replicas.
        for a in &arrivals {
            assert!(a.issued_at < SimTime::ZERO + SimDuration::from_secs(1));
            assert!(a.replica.index() < 4);
        }
    }

    #[test]
    fn open_loop_windows_do_not_lose_or_duplicate_arrivals() {
        let mut whole = OpenLoopWorkload::new(5_000.0, 0, 4);
        let mut split = OpenLoopWorkload::new(5_000.0, 0, 4);
        let mut rng_a = SimRng::new(7);
        let mut rng_b = SimRng::new(7);
        let full = whole.arrivals(
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::from_millis(100),
            &mut rng_a,
        );
        let mut pieces = Vec::new();
        for i in 0..10 {
            pieces.extend(split.arrivals(
                SimTime::ZERO + SimDuration::from_millis(i * 10),
                SimTime::ZERO + SimDuration::from_millis((i + 1) * 10),
                &mut rng_b,
            ));
        }
        assert_eq!(full.len(), pieces.len());
    }

    #[test]
    fn zero_rate_open_loop_is_silent() {
        let mut wl = OpenLoopWorkload::new(0.0, 0, 4);
        let mut rng = SimRng::new(1);
        assert!(wl
            .arrivals(SimTime::ZERO, SimTime(1_000_000_000), &mut rng)
            .is_empty());
    }

    #[test]
    fn closed_loop_keeps_concurrency_in_flight() {
        let mut wl = ClosedLoopWorkload::new(8, 32, 4);
        let mut rng = SimRng::new(2);
        let first = wl.arrivals(SimTime::ZERO, SimTime(1), &mut rng);
        assert_eq!(first.len(), 8, "one request per client at start");
        // Nothing new until something commits.
        assert!(wl.arrivals(SimTime(1), SimTime(2), &mut rng).is_empty());
        // Commit two of them: exactly two replacements appear.
        wl.on_commit(first[0].transaction.id, SimTime(500));
        wl.on_commit(first[3].transaction.id, SimTime(600));
        let next = wl.arrivals(SimTime(700), SimTime(701), &mut rng);
        assert_eq!(next.len(), 2);
        assert_eq!(wl.total_issued(), 10);
        // Unknown commits are ignored.
        wl.on_commit(first[0].transaction.id, SimTime(800));
        assert!(wl.arrivals(SimTime(900), SimTime(901), &mut rng).is_empty());
    }
}

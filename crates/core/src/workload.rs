//! Workload generation: the Bamboo client library.
//!
//! Two client models are provided, matching how the paper drives its
//! benchmarks:
//!
//! * [`OpenLoopWorkload`] — transactions arrive according to a Poisson process
//!   with a configurable rate and are sent to a uniformly random replica
//!   (exactly the arrival model assumed by the analytical model of §V). The
//!   figures' curves are produced by sweeping this rate until saturation.
//!   The workload scales to a *population* of millions of distinct clients
//!   ([`OpenLoopWorkload::with_population`]): each arrival draws a client id
//!   uniformly from the population, and in signed mode
//!   ([`OpenLoopWorkload::with_signing`]) the issuing client's key is derived
//!   lazily from that id and the request signed on the spot — O(1) memory in
//!   the population size, and zero heap allocation per arrival (the payload
//!   is a cloned `Arc` template, the signing buffer is reused, and arrivals
//!   are written into a caller-owned buffer).
//! * [`ClosedLoopWorkload`] — a fixed number of concurrent clients (Table I's
//!   `concurrency`), each with one outstanding request: a client issues its
//!   next transaction only after the previous one commits.

use bamboo_crypto::{KeyPair, Signature};
use bamboo_sim::SimRng;
use bamboo_types::{Bytes, ClientRequest, NodeId, SimDuration, SimTime, Transaction, TxId};

/// Base of the simulated open-loop client id space: client `i` of the
/// population is `NodeId(CLIENT_ID_BASE + i)`. Far above any replica id, so
/// client and replica id spaces never collide.
pub const CLIENT_ID_BASE: u64 = 1_000_000;

/// A transaction arrival produced by a workload generator.
#[derive(Clone, Debug)]
pub struct Arrival {
    /// When the client issues the transaction.
    pub issued_at: SimTime,
    /// The replica it is sent to.
    pub replica: NodeId,
    /// The transaction.
    pub transaction: Transaction,
    /// The issuing client's request signature (signed-client mode only).
    pub signature: Option<Signature>,
}

impl Arrival {
    /// Packages the arrival as the wire-level client request.
    pub fn into_request(self) -> ClientRequest {
        ClientRequest {
            transaction: self.transaction,
            signature: self.signature,
        }
    }
}

/// A source of client transactions.
pub trait Workload {
    /// Generates the arrivals issued during `[from, to)`, appending them to
    /// `out` (which the caller clears and reuses across windows, keeping the
    /// generation loop allocation-free in steady state).
    fn arrivals(&mut self, from: SimTime, to: SimTime, rng: &mut SimRng, out: &mut Vec<Arrival>);

    /// Notifies the workload that `tx` committed at `at` (used by closed-loop
    /// clients to issue their next request).
    fn on_commit(&mut self, tx: TxId, at: SimTime);

    /// Total transactions issued so far.
    fn total_issued(&self) -> u64;
}

/// Open-loop Poisson arrivals at a fixed aggregate rate.
#[derive(Clone, Debug)]
pub struct OpenLoopWorkload {
    rate_tx_per_sec: f64,
    replicas: usize,
    /// The legacy anonymous client id, used when no population is configured.
    client: NodeId,
    /// Size of the simulated client population; `None` = one anonymous client
    /// (the historical stream, which also draws nothing extra from the RNG).
    population: Option<u64>,
    /// Sign each request with the issuing client's lazily derived key.
    signing: bool,
    /// Shared payload template: every transaction of a run carries the same
    /// zeroed payload, so per-arrival payloads are `Arc` clones, not fresh
    /// allocations.
    payload: Bytes,
    /// Reusable signing-bytes buffer for signed mode.
    scratch: Vec<u8>,
    next_seq: u64,
    /// Time of the next scheduled arrival (carried across windows).
    next_arrival: Option<SimTime>,
}

impl OpenLoopWorkload {
    /// Creates an open-loop workload issuing `rate_tx_per_sec` transactions
    /// per second spread uniformly over `replicas` replicas.
    pub fn new(rate_tx_per_sec: f64, payload_size: usize, replicas: usize) -> Self {
        Self {
            rate_tx_per_sec,
            replicas,
            client: NodeId(CLIENT_ID_BASE),
            population: None,
            signing: false,
            payload: Bytes::zeroed(payload_size),
            scratch: Vec::new(),
            next_seq: 0,
            next_arrival: None,
        }
    }

    /// Spreads arrivals over a population of `clients` distinct client ids
    /// (`CLIENT_ID_BASE + 0..clients`), each arrival drawing its issuer
    /// uniformly. Memory stays O(1) in `clients`.
    pub fn with_population(mut self, clients: u64) -> Self {
        self.population = Some(clients.max(1));
        self
    }

    /// Enables per-request signing by the issuing client's derived key.
    pub fn with_signing(mut self, signing: bool) -> Self {
        self.signing = signing;
        self
    }

    /// The configured arrival rate.
    pub fn rate(&self) -> f64 {
        self.rate_tx_per_sec
    }
}

impl Workload for OpenLoopWorkload {
    fn arrivals(&mut self, from: SimTime, to: SimTime, rng: &mut SimRng, out: &mut Vec<Arrival>) {
        if self.rate_tx_per_sec <= 0.0 {
            return;
        }
        let mut cursor = self.next_arrival.unwrap_or_else(|| {
            from + SimDuration::from_secs_f64(rng.exponential(self.rate_tx_per_sec))
        });
        while cursor < to {
            let replica = NodeId(rng.choose_index(self.replicas) as u64);
            // The population draw is gated so the legacy single-client stream
            // consumes exactly the RNG values it always did.
            let client = match self.population {
                Some(clients) => NodeId(CLIENT_ID_BASE + rng.choose_index(clients as usize) as u64),
                None => self.client,
            };
            let tx = Transaction::with_payload(client, self.next_seq, self.payload.clone(), cursor);
            let signature = if self.signing {
                // Lazy per-client key derivation: two streaming hashes, no
                // allocation, no O(population) key table.
                let keypair = KeyPair::client_from_seed(client.as_u64());
                Some(
                    keypair
                        .sign_with_scratch(&mut self.scratch, &ClientRequest::signing_bytes(&tx)),
                )
            } else {
                None
            };
            self.next_seq += 1;
            out.push(Arrival {
                issued_at: cursor,
                replica,
                transaction: tx,
                signature,
            });
            cursor += SimDuration::from_secs_f64(rng.exponential(self.rate_tx_per_sec));
        }
        self.next_arrival = Some(cursor);
    }

    fn on_commit(&mut self, _tx: TxId, _at: SimTime) {}

    fn total_issued(&self) -> u64 {
        self.next_seq
    }
}

/// Closed-loop clients: `concurrency` clients each keep exactly one request in
/// flight.
#[derive(Clone, Debug)]
pub struct ClosedLoopWorkload {
    concurrency: usize,
    payload_size: usize,
    replicas: usize,
    next_seq: u64,
    started: bool,
    /// Requests that became ready when their predecessor committed but have
    /// not been handed to the runner yet.
    ready: Vec<Arrival>,
    /// Maps in-flight transaction ids to the issuing client slot.
    in_flight: std::collections::HashMap<TxId, usize>,
}

impl ClosedLoopWorkload {
    /// Creates a closed-loop workload with `concurrency` clients.
    pub fn new(concurrency: usize, payload_size: usize, replicas: usize) -> Self {
        Self {
            concurrency,
            payload_size,
            replicas,
            next_seq: 0,
            started: false,
            ready: Vec::new(),
            in_flight: std::collections::HashMap::new(),
        }
    }

    fn issue(&mut self, slot: usize, at: SimTime, rng: &mut SimRng) -> Arrival {
        let client = NodeId(2_000_000 + slot as u64);
        let tx = Transaction::new(client, self.next_seq, self.payload_size, at);
        self.next_seq += 1;
        self.in_flight.insert(tx.id, slot);
        Arrival {
            issued_at: at,
            replica: NodeId(rng.choose_index(self.replicas) as u64),
            transaction: tx,
            signature: None,
        }
    }
}

impl Workload for ClosedLoopWorkload {
    fn arrivals(&mut self, from: SimTime, _to: SimTime, rng: &mut SimRng, out: &mut Vec<Arrival>) {
        if !self.started {
            self.started = true;
            for slot in 0..self.concurrency {
                let arrival = self.issue(slot, from, rng);
                out.push(arrival);
            }
        }
        // Hand over requests whose predecessors have committed; re-stamp the
        // replica choice here so it uses the runner's RNG stream.
        for mut arrival in std::mem::take(&mut self.ready) {
            arrival.replica = NodeId(rng.choose_index(self.replicas) as u64);
            out.push(arrival);
        }
    }

    fn on_commit(&mut self, tx: TxId, at: SimTime) {
        if let Some(slot) = self.in_flight.remove(&tx) {
            let client = NodeId(2_000_000 + slot as u64);
            let next = Transaction::new(client, self.next_seq, self.payload_size, at);
            self.next_seq += 1;
            self.in_flight.insert(next.id, slot);
            self.ready.push(Arrival {
                issued_at: at,
                replica: NodeId(0),
                transaction: next,
                signature: None,
            });
        }
    }

    fn total_issued(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(
        wl: &mut dyn Workload,
        from: SimTime,
        to: SimTime,
        rng: &mut SimRng,
    ) -> Vec<Arrival> {
        let mut out = Vec::new();
        wl.arrivals(from, to, rng, &mut out);
        out
    }

    #[test]
    fn open_loop_rate_is_respected() {
        let mut wl = OpenLoopWorkload::new(10_000.0, 0, 4);
        let mut rng = SimRng::new(1);
        let arrivals = collect(
            &mut wl,
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::from_secs(1),
            &mut rng,
        );
        let n = arrivals.len() as f64;
        assert!((n - 10_000.0).abs() < 500.0, "got {n} arrivals");
        assert_eq!(wl.total_issued(), arrivals.len() as u64);
        // All arrivals are inside the window and target valid replicas.
        for a in &arrivals {
            assert!(a.issued_at < SimTime::ZERO + SimDuration::from_secs(1));
            assert!(a.replica.index() < 4);
        }
    }

    #[test]
    fn open_loop_windows_do_not_lose_or_duplicate_arrivals() {
        let mut whole = OpenLoopWorkload::new(5_000.0, 0, 4);
        let mut split = OpenLoopWorkload::new(5_000.0, 0, 4);
        let mut rng_a = SimRng::new(7);
        let mut rng_b = SimRng::new(7);
        let full = collect(
            &mut whole,
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::from_millis(100),
            &mut rng_a,
        );
        let mut pieces = Vec::new();
        for i in 0..10 {
            split.arrivals(
                SimTime::ZERO + SimDuration::from_millis(i * 10),
                SimTime::ZERO + SimDuration::from_millis((i + 1) * 10),
                &mut rng_b,
                &mut pieces,
            );
        }
        assert_eq!(full.len(), pieces.len());
    }

    #[test]
    fn population_mode_is_window_split_invariant_and_diverse() {
        let build = || OpenLoopWorkload::new(5_000.0, 0, 4).with_population(1_000_000);
        let mut whole = build();
        let mut split = build();
        let mut rng_a = SimRng::new(2021);
        let mut rng_b = SimRng::new(2021);
        let full = collect(
            &mut whole,
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::from_millis(100),
            &mut rng_a,
        );
        let mut pieces = Vec::new();
        for i in 0..20 {
            split.arrivals(
                SimTime::ZERO + SimDuration::from_millis(i * 5),
                SimTime::ZERO + SimDuration::from_millis((i + 1) * 5),
                &mut rng_b,
                &mut pieces,
            );
        }
        assert_eq!(full.len(), pieces.len());
        for (a, b) in full.iter().zip(&pieces) {
            assert_eq!(a.transaction.id, b.transaction.id);
            assert_eq!(a.issued_at, b.issued_at);
            assert_eq!(a.replica, b.replica);
        }
        // A million-client population actually spreads issuers.
        let distinct: std::collections::HashSet<NodeId> =
            full.iter().map(|a| a.transaction.client).collect();
        assert!(distinct.len() > full.len() / 2, "population not diverse");
        for a in &full {
            assert!(a.transaction.client.as_u64() >= CLIENT_ID_BASE);
            assert!(a.transaction.client.as_u64() < CLIENT_ID_BASE + 1_000_000);
        }
    }

    #[test]
    fn signed_arrivals_verify_under_the_issuing_clients_key() {
        let mut wl = OpenLoopWorkload::new(2_000.0, 16, 4)
            .with_population(1_000)
            .with_signing(true);
        let mut rng = SimRng::new(7);
        let arrivals = collect(
            &mut wl,
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::from_millis(50),
            &mut rng,
        );
        assert!(!arrivals.is_empty());
        for a in arrivals {
            let request = a.into_request();
            let key = KeyPair::client_from_seed(request.transaction.client.as_u64()).public_key();
            assert!(request.verify(&key), "arrival must verify at the edge");
        }
    }

    #[test]
    fn payloads_share_one_template_allocation() {
        let mut wl = OpenLoopWorkload::new(5_000.0, 256, 4).with_population(10_000);
        let mut rng = SimRng::new(3);
        let arrivals = collect(
            &mut wl,
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::from_millis(20),
            &mut rng,
        );
        assert!(arrivals.len() > 2);
        let first = arrivals[0].transaction.payload.as_ptr();
        for a in &arrivals {
            assert!(std::ptr::eq(first, a.transaction.payload.as_ptr()));
            assert_eq!(a.transaction.payload.len(), 256);
        }
    }

    #[test]
    fn zero_rate_open_loop_is_silent() {
        let mut wl = OpenLoopWorkload::new(0.0, 0, 4);
        let mut rng = SimRng::new(1);
        assert!(collect(&mut wl, SimTime::ZERO, SimTime(1_000_000_000), &mut rng).is_empty());
    }

    #[test]
    fn closed_loop_keeps_concurrency_in_flight() {
        let mut wl = ClosedLoopWorkload::new(8, 32, 4);
        let mut rng = SimRng::new(2);
        let first = collect(&mut wl, SimTime::ZERO, SimTime(1), &mut rng);
        assert_eq!(first.len(), 8, "one request per client at start");
        // Nothing new until something commits.
        assert!(collect(&mut wl, SimTime(1), SimTime(2), &mut rng).is_empty());
        // Commit two of them: exactly two replacements appear.
        wl.on_commit(first[0].transaction.id, SimTime(500));
        wl.on_commit(first[3].transaction.id, SimTime(600));
        let next = collect(&mut wl, SimTime(700), SimTime(701), &mut rng);
        assert_eq!(next.len(), 2);
        assert_eq!(wl.total_issued(), 10);
        // Unknown commits are ignored.
        wl.on_commit(first[0].transaction.id, SimTime(800));
        assert!(collect(&mut wl, SimTime(900), SimTime(901), &mut rng).is_empty());
    }
}

//! The shared runtime spine of both deployment modes.
//!
//! A [`crate::Replica`] is a pure state machine: it consumes
//! [`ReplicaEvent`]s and returns a [`HandleResult`] describing messages to
//! send, timers to arm and delayed proposals to schedule. Everything that
//! differs between the deterministic simulator and the live threaded cluster
//! is *how* those effects are realised — which is exactly what the
//! [`Transport`] trait captures:
//!
//! * the simulator buffers the effects (via [`BufferedTransport`]) and maps
//!   them onto its discrete-event queue with modelled latency, NIC and CPU
//!   delays,
//! * the threaded runtime pushes messages straight into per-replica channels
//!   and keeps timer deadlines in a thread-local list checked against the
//!   wall clock.
//!
//! The [`NodeHost`] is the common driver: it owns the replica, feeds events
//! into it, routes every effect into the backend's `Transport`, and hands the
//! backend a [`StepReport`] (CPU time consumed plus newly committed blocks)
//! for accounting. Future backends — sharded, async, networked — implement
//! `Transport` and reuse the host unchanged.

use bamboo_types::{
    Config, Message, NodeId, ProtocolKind, SharedBlock, SimDuration, SimTime, View,
};

use crate::replica::{Destination, HandleResult, Replica, ReplicaEvent, ReplicaOptions};

/// Backend-provided effect sink for a single replica.
///
/// All methods are invoked while the replica handles one event; the backend
/// decides delivery timing (immediate for live channels, modelled for the
/// simulator). `deadline`/`at` are absolute times on the backend's clock —
/// simulated time for the simulator, nanoseconds since cluster start for the
/// threaded runtime.
pub trait Transport {
    /// Deliver `message` to a single replica.
    fn unicast(&mut self, to: NodeId, message: Message);

    /// Deliver `message` to every replica except the sender.
    fn broadcast(&mut self, message: Message);

    /// Arm a view timer that must fire at `deadline` unless the view has
    /// advanced past `view` by then.
    fn arm_timer(&mut self, view: View, deadline: SimTime);

    /// Schedule a delayed proposal slot for `view` at time `at` (used by the
    /// non-responsive wait-for-timeout deployment of Fig. 15).
    fn schedule_proposal(&mut self, view: View, at: SimTime);
}

/// What one event step produced, after all effects were routed into the
/// backend's [`Transport`].
#[derive(Debug, Default)]
pub struct StepReport {
    /// CPU time the replica consumed handling the event.
    pub cpu: SimDuration,
    /// Blocks that became committed during the step (oldest first), as
    /// shared handles into the replica's forest/ledger storage.
    pub committed: Vec<SharedBlock>,
}

/// The shared node-host driver: one replica plus the logic that routes its
/// effects into a [`Transport`].
///
/// Both [`crate::SimRunner`] and [`crate::threaded::ThreadedCluster`] drive
/// their replicas exclusively through this type, so the two runtimes cannot
/// drift apart in how replica output is interpreted.
pub struct NodeHost {
    replica: Replica,
}

impl NodeHost {
    /// Creates a host for a fresh replica.
    pub fn new(
        id: NodeId,
        protocol: ProtocolKind,
        config: Config,
        options: ReplicaOptions,
    ) -> Self {
        Self {
            replica: Replica::new(id, protocol, config, options),
        }
    }

    /// Wraps an already-constructed replica.
    pub fn from_replica(replica: Replica) -> Self {
        Self { replica }
    }

    /// The hosted replica.
    pub fn replica(&self) -> &Replica {
        &self.replica
    }

    /// Mutable access to the hosted replica (for run-time reconfiguration
    /// such as timeout changes).
    pub fn replica_mut(&mut self) -> &mut Replica {
        &mut self.replica
    }

    /// Consumes the host and returns the replica (used at shutdown).
    pub fn into_replica(self) -> Replica {
        self.replica
    }

    /// Boots the replica: arms the first view timer and, if it leads the
    /// first view, proposes.
    pub fn start(&mut self, now: SimTime, transport: &mut dyn Transport) -> StepReport {
        let result = self.replica.start(now);
        route(result, transport)
    }

    /// Feeds one event into the replica and routes the produced effects.
    pub fn handle(
        &mut self,
        event: ReplicaEvent,
        now: SimTime,
        transport: &mut dyn Transport,
    ) -> StepReport {
        let result = self.replica.handle(event, now);
        route(result, transport)
    }
}

/// Routes a raw [`HandleResult`] into a transport and condenses the
/// accounting part into a [`StepReport`].
fn route(result: HandleResult, transport: &mut dyn Transport) -> StepReport {
    let HandleResult {
        outbound,
        timers,
        delayed_proposals,
        cpu,
        committed,
    } = result;
    for (view, deadline) in timers {
        transport.arm_timer(view, deadline);
    }
    for (view, at) in delayed_proposals {
        transport.schedule_proposal(view, at);
    }
    for out in outbound {
        match out.to {
            Destination::Node(to) => transport.unicast(to, out.message),
            Destination::AllReplicas => transport.broadcast(out.message),
        }
    }
    StepReport { cpu, committed }
}

/// A [`Transport`] that simply records every effect, in order.
///
/// Backends whose delivery timing depends on the *total* CPU cost of the step
/// (the simulator charges outbound messages only once the sender's CPU is
/// free) buffer effects here and map them onto their event queue afterwards.
/// Also convenient in tests.
#[derive(Debug, Default)]
pub struct BufferedTransport {
    /// Buffered sends; `None` destination means broadcast.
    pub sends: Vec<(Option<NodeId>, Message)>,
    /// Buffered timer arms.
    pub timers: Vec<(View, SimTime)>,
    /// Buffered delayed proposals.
    pub proposals: Vec<(View, SimTime)>,
}

impl BufferedTransport {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Transport for BufferedTransport {
    fn unicast(&mut self, to: NodeId, message: Message) {
        self.sends.push((Some(to), message));
    }

    fn broadcast(&mut self, message: Message) {
        self.sends.push((None, message));
    }

    fn arm_timer(&mut self, view: View, deadline: SimTime) {
        self.timers.push((view, deadline));
    }

    fn schedule_proposal(&mut self, view: View, at: SimTime) {
        self.proposals.push((view, at));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bamboo_types::Transaction;

    fn config(nodes: usize) -> Config {
        Config::builder()
            .nodes(nodes)
            .block_size(10)
            .seed(1)
            .build()
            .unwrap()
    }

    #[test]
    fn host_start_routes_timer_into_transport() {
        let mut host = NodeHost::new(
            NodeId(3),
            ProtocolKind::HotStuff,
            config(4),
            ReplicaOptions::default(),
        );
        let mut transport = BufferedTransport::new();
        let report = host.start(SimTime::ZERO, &mut transport);
        assert!(report.cpu.is_zero());
        assert_eq!(transport.timers.len(), 1);
        assert_eq!(transport.timers[0].0, View(1));
        assert!(transport.sends.is_empty(), "non-leader does not propose");
    }

    #[test]
    fn leader_proposal_is_broadcast_through_transport() {
        let mut host = NodeHost::new(
            NodeId(1),
            ProtocolKind::HotStuff,
            config(4),
            ReplicaOptions::default(),
        );
        let txs: Vec<Transaction> = (0..5)
            .map(|i| Transaction::new(NodeId(9), i, 8, SimTime::ZERO))
            .collect();
        let mut transport = BufferedTransport::new();
        host.handle(
            ReplicaEvent::ClientRequests(txs),
            SimTime::ZERO,
            &mut transport,
        );
        // Node 1 leads view 1.
        let report = host.start(SimTime::ZERO, &mut transport);
        assert!(report.cpu > SimDuration::ZERO, "proposing costs CPU");
        assert!(transport
            .sends
            .iter()
            .any(|(to, m)| to.is_none() && matches!(m, Message::Proposal(_))));
    }

    #[test]
    fn timer_fired_event_produces_timeout_broadcast() {
        let mut host = NodeHost::new(
            NodeId(2),
            ProtocolKind::HotStuff,
            config(4),
            ReplicaOptions::default(),
        );
        let mut transport = BufferedTransport::new();
        host.start(SimTime::ZERO, &mut transport);
        let report = host.handle(
            ReplicaEvent::TimerFired { view: View(1) },
            SimTime(200_000_000),
            &mut transport,
        );
        assert!(report.committed.is_empty());
        assert!(transport
            .sends
            .iter()
            .any(|(to, m)| to.is_none() && matches!(m, Message::Timeout(_))));
    }
}

//! The shared runtime spine of both deployment modes.
//!
//! A [`crate::Replica`] is a pure state machine: it consumes
//! [`ReplicaEvent`]s and returns a [`HandleResult`] describing messages to
//! send, timers to arm and delayed proposals to schedule. Everything that
//! differs between the deterministic simulator and the live threaded cluster
//! is *how* those effects are realised — which is exactly what the
//! [`Transport`] trait captures:
//!
//! * the simulator buffers the effects (via [`BufferedTransport`]) and maps
//!   them onto its discrete-event queue with modelled latency, NIC and CPU
//!   delays,
//! * the threaded runtime pushes messages straight into per-replica channels
//!   and keeps timer deadlines in a thread-local list checked against the
//!   wall clock.
//!
//! The [`NodeHost`] is the common driver: it owns the replica, feeds events
//! into it, routes every effect into the backend's `Transport`, and hands the
//! backend a [`StepReport`] (CPU time consumed plus newly committed blocks)
//! for accounting. Future backends — sharded, async, networked — implement
//! `Transport` and reuse the host unchanged.
//!
//! The host is also the **authenticated ingress stage**: every
//! [`ReplicaEvent::Message`] fed through [`NodeHost::handle`] (or its
//! shared-envelope sibling [`NodeHost::handle_shared`]) is cryptographically
//! verified (signatures, certificate thresholds, block ids) by an
//! [`Authenticator`] *before* the replica state machine sees it; forgeries
//! are dropped and counted. Backends that verify elsewhere — the threaded
//! runtime's [`crate::verify::VerifyPool`] checks messages on worker threads
//! so crypto pipelines with consensus, and the simulator verifies each unique
//! envelope once when it is absorbed and fans the verdict out — hand the
//! resulting [`VerifiedMessage`] proof token to [`NodeHost::handle_verified`]
//! (or book the failure via [`NodeHost::reject_forged`]), which skips the
//! duplicate check. Either way, no unchecked signature can reach
//! [`Replica::handle`].

use bamboo_sim::CpuModel;
use bamboo_types::{
    Authenticator, ClientRequest, Config, Message, NodeId, ProtocolKind, SharedBlock,
    SharedMessage, SimDuration, SimTime, Transaction, VerifiedMessage, View,
};

use crate::replica::{Destination, HandleResult, Replica, ReplicaEvent, ReplicaOptions};

/// Backend-provided effect sink for a single replica.
///
/// All methods are invoked while the replica handles one event; the backend
/// decides delivery timing (immediate for live channels, modelled for the
/// simulator). `deadline`/`at` are absolute times on the backend's clock —
/// simulated time for the simulator, nanoseconds since cluster start for the
/// threaded runtime.
pub trait Transport {
    /// Deliver `message` to a single replica.
    fn unicast(&mut self, to: NodeId, message: Message);

    /// Deliver `message` to every replica except the sender.
    fn broadcast(&mut self, message: Message);

    /// Arm a view timer that must fire at `deadline` unless the view has
    /// advanced past `view` by then.
    fn arm_timer(&mut self, view: View, deadline: SimTime);

    /// Schedule a delayed proposal slot for `view` at time `at` (used by the
    /// non-responsive wait-for-timeout deployment of Fig. 15).
    fn schedule_proposal(&mut self, view: View, at: SimTime);

    /// Arm a sync timer (state-transfer debounce/retry) for `deadline`.
    /// Unlike view timers these carry no view: the replica decides on firing
    /// whether anything is still missing.
    fn arm_sync_timer(&mut self, deadline: SimTime);
}

/// What one event step produced, after all effects were routed into the
/// backend's [`Transport`].
#[derive(Debug, Default)]
pub struct StepReport {
    /// CPU time the replica consumed handling the event.
    pub cpu: SimDuration,
    /// Blocks that became committed during the step (oldest first), as
    /// shared handles into the replica's forest/ledger storage.
    pub committed: Vec<SharedBlock>,
}

/// The shared node-host driver: one replica plus the logic that routes its
/// effects into a [`Transport`].
///
/// Both [`crate::SimRunner`] and [`crate::threaded::ThreadedCluster`] drive
/// their replicas exclusively through this type, so the two runtimes cannot
/// drift apart in how replica output is interpreted.
pub struct NodeHost {
    replica: Replica,
    /// The ingress verifier holding the validator set's public keys.
    authenticator: Authenticator,
    /// Models the CPU cost of *failed* verifications (accepted messages are
    /// charged by the replica itself, whose modeled costs mirror the real
    /// checks performed here).
    cpu: CpuModel,
    /// Messages dropped at ingress because a signature, certificate or block
    /// id failed verification.
    auth_rejections: u64,
    /// Client requests dropped at ingress because their client signature
    /// failed verification (signed-client mode only).
    client_auth_rejections: u64,
}

impl NodeHost {
    /// Creates a host for a fresh replica.
    pub fn new(
        id: NodeId,
        protocol: ProtocolKind,
        config: Config,
        options: ReplicaOptions,
    ) -> Self {
        Self::from_replica(Replica::new(id, protocol, config, options))
    }

    /// Wraps an already-constructed replica.
    pub fn from_replica(replica: Replica) -> Self {
        let config = replica.config();
        let mut authenticator = Authenticator::for_nodes(config.nodes);
        authenticator.set_signed_clients(config.signed_requests);
        // Share the replica's model so per-replica CPU overrides (the
        // heterogeneous-CPU scenario knob) also price rejected messages.
        let cpu = replica.cpu_model();
        Self {
            replica,
            authenticator,
            cpu,
            auth_rejections: 0,
            client_auth_rejections: 0,
        }
    }

    /// The hosted replica.
    pub fn replica(&self) -> &Replica {
        &self.replica
    }

    /// Mutable access to the hosted replica (for run-time reconfiguration
    /// such as timeout changes).
    pub fn replica_mut(&mut self) -> &mut Replica {
        &mut self.replica
    }

    /// Consumes the host and returns the replica (used at shutdown).
    pub fn into_replica(self) -> Replica {
        self.replica
    }

    /// Messages dropped at the ingress stage so far.
    pub fn auth_rejections(&self) -> u64 {
        self.auth_rejections
    }

    /// Client requests dropped at the edge for a bad signature so far.
    pub fn client_auth_rejections(&self) -> u64 {
        self.client_auth_rejections
    }

    /// Boots the replica: arms the first view timer and, if it leads the
    /// first view, proposes.
    pub fn start(&mut self, now: SimTime, transport: &mut dyn Transport) -> StepReport {
        let result = self.replica.start(now);
        route(result, transport)
    }

    /// Feeds one event into the replica and routes the produced effects.
    ///
    /// Message events pass through the ingress verifier first: a forged vote,
    /// QC, timeout or tampered block is dropped here — the replica never sees
    /// it — and the step reports only the (modeled) CPU cost of discovering
    /// the forgery.
    pub fn handle(
        &mut self,
        event: ReplicaEvent,
        now: SimTime,
        transport: &mut dyn Transport,
    ) -> StepReport {
        let event = match event {
            ReplicaEvent::Message { from, message } => {
                let cost =
                    verification_cost(&self.cpu, self.authenticator.signed_clients(), &message);
                if self.authenticator.verify_message(&message).is_err() {
                    return self.reject(cost);
                }
                ReplicaEvent::Message { from, message }
            }
            other => other,
        };
        let result = self.replica.handle(event, now);
        route(result, transport)
    }

    /// Feeds a batch of client requests through the edge verification stage
    /// and into the replica's mempool.
    ///
    /// In unsigned mode the requests are stripped and forwarded as-is. In
    /// signed-client mode the whole batch is first verified through the
    /// 4-wide interleaved path (all client requests sign the same
    /// fixed-length tuple, so the batch runs in `⌈n/4⌉` quad-hash passes,
    /// charged as [`CpuModel::verify_batch`]); if the all-or-nothing batch
    /// check fails, the requests are re-verified one by one — charged as a
    /// second, sequential pass — so forgeries are isolated, dropped and
    /// counted while the honest remainder is still admitted.
    pub fn handle_client_batch(
        &mut self,
        requests: Vec<ClientRequest>,
        now: SimTime,
        transport: &mut dyn Transport,
    ) -> StepReport {
        let offered = requests.len();
        let mut txs: Vec<Transaction> = Vec::with_capacity(offered);
        let mut edge_cpu = SimDuration::ZERO;
        if self.authenticator.signed_clients() {
            edge_cpu = self.cpu.verify_batch(offered);
            if self.authenticator.verify_client_batch(&requests) {
                txs.extend(requests.into_iter().map(|r| r.transaction));
            } else {
                edge_cpu += self.cpu.verify(offered);
                for request in requests {
                    if self.authenticator.verify_client_request(&request).is_ok() {
                        txs.push(request.transaction);
                    } else {
                        self.client_auth_rejections += 1;
                    }
                }
            }
        } else {
            txs.extend(requests.into_iter().map(|r| r.transaction));
        }
        let result = self.replica.handle(ReplicaEvent::ClientRequests(txs), now);
        let mut report = route(result, transport);
        report.cpu += edge_cpu;
        report
    }

    /// Feeds a shared envelope into the replica, verifying it inline first —
    /// [`NodeHost::handle`] for backends that deliver [`SharedMessage`]
    /// handles (the threaded runtime's channels). The sole remaining holder
    /// recovers the owned message without a copy.
    pub fn handle_shared(
        &mut self,
        from: NodeId,
        message: SharedMessage,
        now: SimTime,
        transport: &mut dyn Transport,
    ) -> StepReport {
        let cost = verification_cost(&self.cpu, self.authenticator.signed_clients(), &message);
        match self.authenticator.authenticate_shared(from, message) {
            Ok(verified) => self.handle_verified(verified, now, transport),
            Err(_) => self.reject(cost),
        }
    }

    /// Feeds an already-verified message into the replica, skipping the
    /// inline check. Backends that verify elsewhere — the threaded runtime's
    /// verify pool, the simulator's verify-once broadcast fan-out — use this;
    /// the [`VerifiedMessage`] token can only be minted by an
    /// [`Authenticator`], so the no-unchecked-input invariant holds by
    /// construction.
    pub fn handle_verified(
        &mut self,
        verified: VerifiedMessage,
        now: SimTime,
        transport: &mut dyn Transport,
    ) -> StepReport {
        let (from, message) = verified.into_parts();
        let result = self
            .replica
            .handle(ReplicaEvent::Message { from, message }, now);
        route(result, transport)
    }

    /// Restarts the hosted replica with amnesia (see
    /// [`Replica::amnesia_restart`]) and routes the restart effects — the
    /// fresh view timer and the immediate state-transfer request — into the
    /// backend's transport like any other step.
    pub fn restart_with_amnesia(
        &mut self,
        now: SimTime,
        transport: &mut dyn Transport,
    ) -> StepReport {
        let result = self.replica.amnesia_restart(now);
        route(result, transport)
    }

    /// Restarts the hosted replica from its own durable storage (segment log
    /// plus persisted checkpoint), optionally injecting a crash-point
    /// storage fault first, and routes the recovery effects — the fresh view
    /// timer and the tail-catch-up sync request — into the backend's
    /// transport.
    pub fn restart_durable(
        &mut self,
        now: SimTime,
        fault: Option<crate::storage::StorageFault>,
        transport: &mut dyn Transport,
    ) -> StepReport {
        let result = self.replica.durable_restart(now, fault);
        route(result, transport)
    }

    /// Books a message that failed verification elsewhere (the simulator
    /// verifies each unique envelope once and fans the verdict out): counts
    /// the rejection at this replica and charges the modeled cost of the
    /// verification work that exposed the forgery, exactly as if the check
    /// had run inline here.
    pub fn reject_forged(&mut self, message: &Message) -> StepReport {
        let cost = verification_cost(&self.cpu, self.authenticator.signed_clients(), message);
        self.reject(cost)
    }

    /// Books a rejected message: counts it and charges the modeled cost of
    /// the verification work that exposed the forgery (a flood of forgeries
    /// is not free to fend off — it consumes the target's CPU budget, which
    /// is exactly how the paper's model would account it).
    fn reject(&mut self, cost: SimDuration) -> StepReport {
        self.auth_rejections += 1;
        StepReport {
            cpu: cost,
            committed: Vec::new(),
        }
    }
}

/// The modeled `t_CPU` cost of the verification work that exposes a
/// forgery, mirroring what the replica would have been charged had the
/// message been accepted: proposals use the paper's flat aggregate-check
/// charge (Eq. 4, see `CpuModel::process_proposal` for the rationale),
/// pacemaker certificates are charged per signer. Used for rejected
/// messages only — the replica's own modeled costs cover accepted ones.
fn verification_cost(cpu: &CpuModel, signed_clients: bool, message: &Message) -> SimDuration {
    let signatures = match message {
        Message::Proposal(_) | Message::ProposalEcho(_) => 2,
        Message::Vote(_) | Message::VoteEcho(_) => 1,
        Message::Timeout(tv) => 1 + tv.high_qc.signer_count(),
        Message::TimeoutCertMsg(tc) => tc.signer_count() + tc.high_qc.signer_count(),
        Message::NewView(qc) => qc.signer_count().max(1),
        // A lone network-path client request is checked individually when
        // clients sign (batched arrivals go through the cheaper
        // `CpuModel::verify_batch` path in `handle_client_batch`).
        Message::Request(_) => usize::from(signed_clients),
        Message::Response(_) => 0,
        Message::SyncRequest(_) => 1,
        // Per-block id/justify checks plus the aggregate high-QC check — the
        // same work the replica is charged for an accepted response.
        Message::SyncResponse(resp) => 2 * resp.blocks.len() + resp.high_qc.signer_count().max(1),
    };
    cpu.verify(signatures)
}

/// Routes a raw [`HandleResult`] into a transport and condenses the
/// accounting part into a [`StepReport`].
fn route(result: HandleResult, transport: &mut dyn Transport) -> StepReport {
    let HandleResult {
        outbound,
        timers,
        delayed_proposals,
        sync_timers,
        cpu,
        committed,
    } = result;
    for (view, deadline) in timers {
        transport.arm_timer(view, deadline);
    }
    for (view, at) in delayed_proposals {
        transport.schedule_proposal(view, at);
    }
    for deadline in sync_timers {
        transport.arm_sync_timer(deadline);
    }
    for out in outbound {
        match out.to {
            Destination::Node(to) => transport.unicast(to, out.message),
            Destination::AllReplicas => transport.broadcast(out.message),
        }
    }
    StepReport { cpu, committed }
}

/// A [`Transport`] that simply records every effect, in order.
///
/// Backends whose delivery timing depends on the *total* CPU cost of the step
/// (the simulator charges outbound messages only once the sender's CPU is
/// free) buffer effects here and map them onto their event queue afterwards.
/// Each message is wrapped into its [`SharedMessage`] envelope exactly once
/// here, so a backend fanning a broadcast out to `n − 1` recipients schedules
/// pointer bumps, not envelope copies. Also convenient in tests.
#[derive(Debug, Default)]
pub struct BufferedTransport {
    /// Buffered sends; `None` destination means broadcast.
    pub sends: Vec<(Option<NodeId>, SharedMessage)>,
    /// Buffered timer arms.
    pub timers: Vec<(View, SimTime)>,
    /// Buffered delayed proposals.
    pub proposals: Vec<(View, SimTime)>,
    /// Buffered sync-timer arms.
    pub sync_timers: Vec<SimTime>,
}

impl BufferedTransport {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empties the buffer, keeping its allocations. Backends that absorb one
    /// event at a time (the sharded simulator) keep a single transport per
    /// shard and clear it between events instead of reallocating.
    pub fn clear(&mut self) {
        self.sends.clear();
        self.timers.clear();
        self.proposals.clear();
        self.sync_timers.clear();
    }
}

impl Transport for BufferedTransport {
    fn unicast(&mut self, to: NodeId, message: Message) {
        self.sends.push((Some(to), SharedMessage::new(message)));
    }

    fn broadcast(&mut self, message: Message) {
        self.sends.push((None, SharedMessage::new(message)));
    }

    fn arm_timer(&mut self, view: View, deadline: SimTime) {
        self.timers.push((view, deadline));
    }

    fn schedule_proposal(&mut self, view: View, at: SimTime) {
        self.proposals.push((view, at));
    }

    fn arm_sync_timer(&mut self, deadline: SimTime) {
        self.sync_timers.push(deadline);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bamboo_types::Transaction;

    fn config(nodes: usize) -> Config {
        Config::builder()
            .nodes(nodes)
            .block_size(10)
            .seed(1)
            .build()
            .unwrap()
    }

    #[test]
    fn host_start_routes_timer_into_transport() {
        let mut host = NodeHost::new(
            NodeId(3),
            ProtocolKind::HotStuff,
            config(4),
            ReplicaOptions::default(),
        );
        let mut transport = BufferedTransport::new();
        let report = host.start(SimTime::ZERO, &mut transport);
        assert!(report.cpu.is_zero());
        assert_eq!(transport.timers.len(), 1);
        assert_eq!(transport.timers[0].0, View(1));
        assert!(transport.sends.is_empty(), "non-leader does not propose");
    }

    #[test]
    fn leader_proposal_is_broadcast_through_transport() {
        let mut host = NodeHost::new(
            NodeId(1),
            ProtocolKind::HotStuff,
            config(4),
            ReplicaOptions::default(),
        );
        let txs: Vec<Transaction> = (0..5)
            .map(|i| Transaction::new(NodeId(9), i, 8, SimTime::ZERO))
            .collect();
        let mut transport = BufferedTransport::new();
        host.handle(
            ReplicaEvent::ClientRequests(txs),
            SimTime::ZERO,
            &mut transport,
        );
        // Node 1 leads view 1.
        let report = host.start(SimTime::ZERO, &mut transport);
        assert!(report.cpu > SimDuration::ZERO, "proposing costs CPU");
        assert!(transport
            .sends
            .iter()
            .any(|(to, m)| to.is_none() && matches!(**m, Message::Proposal(_))));
    }

    #[test]
    fn timer_fired_event_produces_timeout_broadcast() {
        let mut host = NodeHost::new(
            NodeId(2),
            ProtocolKind::HotStuff,
            config(4),
            ReplicaOptions::default(),
        );
        let mut transport = BufferedTransport::new();
        host.start(SimTime::ZERO, &mut transport);
        let report = host.handle(
            ReplicaEvent::TimerFired { view: View(1) },
            SimTime(200_000_000),
            &mut transport,
        );
        assert!(report.committed.is_empty());
        assert!(transport
            .sends
            .iter()
            .any(|(to, m)| to.is_none() && matches!(**m, Message::Timeout(_))));
    }
}

//! The replica node: Bamboo's `Replica` assembled from the shared modules.
//!
//! A [`Replica`] is a pure state machine. It consumes [`ReplicaEvent`]s
//! (delivered messages, timer expirations, client requests) and returns a
//! [`HandleResult`] describing what should happen next: messages to send,
//! timers to arm, CPU time consumed, and blocks that became committed. All
//! time, networking and randomness live in the runner, which is what makes the
//! same replica code usable both on the deterministic simulator and on the
//! threaded runtime.

use std::collections::HashMap;

use bamboo_crypto::KeyPair;
use bamboo_forest::{
    decode_committed_record, decode_qc_record, encode_committed_record, encode_qc_record,
    BlockForest, ForestError, Ledger, Snapshot,
};
use bamboo_mempool::{Mempool, MempoolStats};
use bamboo_pacemaker::{LeaderElection, Pacemaker, PacemakerAction};
use bamboo_protocols::{make_safety, ProposalInput, Safety, VoteDestination};
use bamboo_sim::CpuModel;
use bamboo_types::{
    BlockId, Bytes, Config, Height, Message, NodeId, ProtocolKind, QuorumCert, SharedBlock,
    SimDuration, SimTime, SyncRequest, SyncResponse, TimeoutCert, Transaction, View, Vote,
};

use crate::quorum::QuorumTracker;
use crate::storage::{self, RecordKind, SegmentLog, StorageFault};

/// Where an outbound message should be delivered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Destination {
    /// A single replica.
    Node(NodeId),
    /// Every replica except the sender.
    AllReplicas,
}

/// An outbound message produced by a replica.
#[derive(Clone, Debug)]
pub struct Outbound {
    /// Where to send it.
    pub to: Destination,
    /// The message.
    pub message: Message,
}

/// Events consumed by a replica.
#[derive(Clone, Debug)]
pub enum ReplicaEvent {
    /// A message delivered by the network.
    Message {
        /// The sending node.
        from: NodeId,
        /// The delivered message.
        message: Message,
    },
    /// A previously armed view timer fired.
    TimerFired {
        /// The view the timer was armed for.
        view: View,
    },
    /// A delayed proposal slot arrived (used when the protocol waits for the
    /// timeout after a view change, Fig. 15's second setting).
    ProposeNow {
        /// The view the proposal was scheduled for.
        view: View,
    },
    /// A batch of client transactions arrived at this replica.
    ClientRequests(Vec<Transaction>),
    /// A previously armed sync timer fired (gap-detection debounce or a
    /// retry deadline for an outstanding state-transfer request).
    SyncTimer,
}

/// Everything a replica wants done after handling one event.
#[derive(Debug, Default)]
pub struct HandleResult {
    /// Messages to put on the network.
    pub outbound: Vec<Outbound>,
    /// View timers to arm: `(view, absolute deadline)`.
    pub timers: Vec<(View, SimTime)>,
    /// Delayed proposals to schedule: `(view, absolute time)`.
    pub delayed_proposals: Vec<(View, SimTime)>,
    /// Sync timers to arm (absolute deadlines). Distinct from view timers:
    /// firing one must never trigger view-change logic.
    pub sync_timers: Vec<SimTime>,
    /// CPU time consumed handling the event.
    pub cpu: SimDuration,
    /// Blocks that became committed while handling the event (oldest first).
    /// Shared handles — the payload lives once, in the forest/ledger.
    pub committed: Vec<SharedBlock>,
}

impl HandleResult {
    fn send(&mut self, to: Destination, message: Message) {
        self.outbound.push(Outbound { to, message });
    }
}

/// Per-replica behavioural options that are not part of the shared [`Config`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ReplicaOptions {
    /// After a timeout-driven view change, wait for the view timeout before
    /// proposing instead of proposing as soon as the TC arrives. This models
    /// the non-responsive deployment of Fig. 15 ("t100" setting).
    pub wait_for_timeout_on_view_change: bool,
    /// From this simulated time on, the replica withholds every proposal (used
    /// to crash a node mid-run in the responsiveness experiment).
    pub silence_from: Option<SimTime>,
    /// Overrides the shared `t_CPU` (`Config::cpu_delay`) for this replica —
    /// the scenario engine's heterogeneous-CPU knob: a cluster can mix fast
    /// and slow machines while every node still shares one [`Config`].
    pub cpu_delay_override: Option<SimDuration>,
    /// Model synchronous epochs faithfully for epoch-based protocols
    /// (Streamlet): a leader entering an epoch proposes only half a view
    /// timeout after entry (the epoch length `2Δ̂`, with the timeout playing
    /// `4Δ̂`), instead of as soon as the previous epoch certifies. Off by
    /// default — the responsive approximation the rest of the benchmarks
    /// use; WAN scenarios switch it on to expose the synchrony cost of
    /// heterogeneous delays.
    pub synchronous_epochs: bool,
}

/// Maximum number of ledger blocks shipped in one [`SyncResponse`]. A lagging
/// replica that is further behind than this converges over several
/// request/response rounds rather than in one unboundedly large message.
const SYNC_BATCH: usize = 256;

/// Counters and timestamps describing checkpointing and state transfer on one
/// replica. Exposed to the runners so crash-recovery experiments can report
/// how long catch-up took and what it cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Checkpoints taken by this replica.
    pub checkpoints_taken: u64,
    /// Sync requests this replica sent while catching up.
    pub sync_requests_sent: u64,
    /// Sync responses this replica served to lagging peers.
    pub sync_responses_served: u64,
    /// Total wire bytes of sync responses this replica received.
    pub sync_bytes_received: u64,
    /// Snapshots installed wholesale (replacing local forest + ledger).
    pub snapshots_installed: u64,
    /// Blocks received through state transfer (excludes snapshot contents).
    pub blocks_synced: u64,
    /// When this replica last restarted with amnesia, if ever.
    pub restarted_at: Option<SimTime>,
    /// When the last catch-up episode finished (orphan-free after a sync
    /// install). Cleared whenever a new episode begins, so after the run it
    /// marks the end of the final episode.
    pub caught_up_at: Option<SimTime>,
    /// Durable restarts this replica performed (replaying its own log).
    pub durable_restarts: u64,
    /// Log records successfully replayed across durable restarts.
    pub records_replayed: u64,
    /// Log records discarded as corrupt (torn, CRC-failed, or off the
    /// recovered chain) across durable restarts.
    pub corrupt_records_discarded: u64,
    /// Modeled time spent replaying the durable log, in nanoseconds (an
    /// integer so the stats stay `Eq` and fingerprint-comparable).
    pub log_replay_nanos: u64,
}

/// A Bamboo replica.
pub struct Replica {
    id: NodeId,
    protocol: ProtocolKind,
    config: Config,
    options: ReplicaOptions,
    keypair: KeyPair,
    election: LeaderElection,
    forest: BlockForest,
    mempool: Mempool,
    pacemaker: Pacemaker,
    safety: Box<dyn Safety>,
    quorum: QuorumTracker,
    ledger: Ledger,
    cpu: CpuModel,
    /// Last view in which this replica proposed (guards double proposing).
    proposed_in_view: View,
    /// QCs whose block has not arrived yet.
    pending_qcs: HashMap<BlockId, QuorumCert>,
    /// A leader's proposal waiting for the block of a pending QC: entering a
    /// view off votes alone (they can outrun the proposal broadcast on slow
    /// or heterogeneous links) must not fork from a stale high-QC.
    deferred_proposal: Option<View>,
    /// Conflicting-commit events observed (must stay zero in a correct run).
    safety_violations: u64,
    /// Serialized snapshot from the last checkpoint — the only state that
    /// survives an amnesia restart (it models the durable disk image).
    latest_checkpoint: Option<Bytes>,
    /// Committed ledger length at the time of the last checkpoint.
    checkpoint_height: u64,
    /// True while this replica is actively state-transferring. A syncing
    /// replica neither votes nor proposes: it cannot evaluate the safety
    /// rules against a chain it does not yet have.
    syncing: bool,
    /// Whether a sync timer (debounce or retry) is currently armed; keeps the
    /// timer traffic to at most one outstanding deadline.
    sync_timer_armed: bool,
    /// Consecutive sync attempts in the current episode (drives backoff and
    /// deterministic peer rotation).
    sync_attempts: u64,
    /// Recovery bookkeeping for the metrics layer.
    recovery: RecoveryStats,
    /// The durable segment log (`Config::durable_log`). The simulator runs
    /// it over the deterministic in-memory backend; the threaded cluster
    /// swaps in real temp-dir files via [`Replica::set_storage`].
    storage: Option<SegmentLog>,
    /// The vote watermark restored by the last durable restart — the bound
    /// the no-double-vote assertion checks every later vote against.
    restored_voted_view: Option<View>,
}

impl Replica {
    /// Creates a replica. Byzantine behaviour is selected from the config: if
    /// `config.is_byzantine(id)` the configured strategy wraps the protocol.
    pub fn new(
        id: NodeId,
        protocol: ProtocolKind,
        config: Config,
        options: ReplicaOptions,
    ) -> Self {
        let strategy = if config.is_byzantine(id) {
            config.byzantine_strategy
        } else {
            bamboo_types::ByzantineStrategy::Honest
        };
        let safety = make_safety(protocol, strategy, config.nodes);
        let election = LeaderElection::new(config.nodes, config.leader_policy);
        let cpu_delay = options.cpu_delay_override.unwrap_or(config.cpu_delay);
        let cpu = CpuModel::new(cpu_delay).with_per_tx(SimDuration::from_nanos(400));
        let storage = config
            .durable_log
            .then(|| SegmentLog::in_memory(config.segment_bytes, config.fsync_interval));
        Self {
            id,
            protocol,
            keypair: KeyPair::from_seed(id.as_u64()),
            election,
            forest: BlockForest::new(),
            mempool: Mempool::with_shards(config.mempool_size, config.mempool_shards),
            pacemaker: Pacemaker::new(id, config.nodes, config.timeout),
            safety,
            quorum: QuorumTracker::new(config.nodes),
            ledger: Ledger::new(),
            cpu,
            proposed_in_view: View::GENESIS,
            pending_qcs: HashMap::new(),
            deferred_proposal: None,
            safety_violations: 0,
            latest_checkpoint: None,
            checkpoint_height: 0,
            syncing: false,
            sync_timer_armed: false,
            sync_attempts: 0,
            recovery: RecoveryStats::default(),
            storage,
            restored_voted_view: None,
            config,
            options,
        }
    }

    /// The replica's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The configuration the replica was built with.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// The CPU cost model this replica charges its work against (the shared
    /// `t_CPU` unless [`ReplicaOptions::cpu_delay_override`] replaced it).
    pub fn cpu_model(&self) -> CpuModel {
        self.cpu
    }

    /// The replica's current view.
    pub fn current_view(&self) -> View {
        self.pacemaker.current_view()
    }

    /// The committed ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// The block forest (exposed for metrics and tests).
    pub fn forest(&self) -> &BlockForest {
        &self.forest
    }

    /// Number of transactions waiting in the mempool.
    pub fn mempool_len(&self) -> usize {
        self.mempool.len()
    }

    /// Mempool admission/flow counters (accepted, rejected, requeued,
    /// dispatched, pending) — the run report folds these across replicas so
    /// admission-control backpressure is never silent.
    pub fn mempool_stats(&self) -> MempoolStats {
        self.mempool.stats()
    }

    /// Number of timeout-driven view changes so far.
    pub fn timeout_view_changes(&self) -> u64 {
        self.pacemaker.timeout_view_changes()
    }

    /// Number of conflicting-commit events observed (0 in a correct run).
    pub fn safety_violations(&self) -> u64 {
        self.safety_violations
    }

    /// Changes the pacemaker timeout at run time.
    pub fn set_timeout(&mut self, timeout: SimDuration) {
        self.pacemaker.set_timeout(timeout);
    }

    /// Whether the protocol run by this replica is optimistically responsive.
    pub fn is_responsive(&self) -> bool {
        self.safety.is_responsive()
    }

    /// Checkpoint and state-transfer counters for the metrics layer.
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.recovery
    }

    /// True while the replica is catching up via state transfer (voting and
    /// proposing are suspended).
    pub fn is_syncing(&self) -> bool {
        self.syncing
    }

    /// The serialized snapshot from the most recent checkpoint, if any.
    pub fn latest_checkpoint(&self) -> Option<&Bytes> {
        self.latest_checkpoint.as_ref()
    }

    /// Replaces the durable storage backend. The threaded cluster points
    /// replicas at real temp-dir files with this; under `Config::durable_log`
    /// the default is the deterministic in-memory backend.
    pub fn set_storage(&mut self, storage: SegmentLog) {
        self.storage = Some(storage);
    }

    /// The durable segment log, when one is attached.
    pub fn storage(&self) -> Option<&SegmentLog> {
        self.storage.as_ref()
    }

    /// The vote watermark restored by the last durable restart, if any —
    /// every vote after recovery must be strictly above it.
    pub fn restored_voted_view(&self) -> Option<View> {
        self.restored_voted_view
    }

    /// Starts the replica: arms the first view timer and, if it leads view 1,
    /// proposes the first block.
    pub fn start(&mut self, now: SimTime) -> HandleResult {
        let mut out = HandleResult::default();
        self.apply_pacemaker_action(self.pacemaker.arm_timer(now), now, &mut out);
        if self.election.is_leader(self.id, self.current_view()) {
            self.do_propose(self.current_view(), now, &mut out);
        }
        out
    }

    /// Handles one event.
    pub fn handle(&mut self, event: ReplicaEvent, now: SimTime) -> HandleResult {
        let mut out = HandleResult::default();
        match event {
            ReplicaEvent::ClientRequests(txs) => {
                self.mempool.push_batch(txs);
            }
            ReplicaEvent::TimerFired { view } => {
                let actions =
                    self.pacemaker
                        .on_timer(view, self.forest.high_qc().clone(), &self.keypair);
                out.cpu += self.cpu.sign();
                for action in actions {
                    self.apply_pacemaker_action(action, now, &mut out);
                }
            }
            ReplicaEvent::ProposeNow { view } => {
                if view == self.current_view() && self.proposed_in_view < view {
                    if self.high_qc_is_pending() {
                        // The block behind our newest QC is still in flight —
                        // the same stale-parent fork the QC-driven path
                        // defers on can reach a paced (epoch/timeout-waited)
                        // proposal slot too. Wait for the block instead.
                        self.deferred_proposal = Some(view);
                    } else {
                        self.do_propose(view, now, &mut out);
                    }
                }
            }
            ReplicaEvent::Message { from: _, message } => match message {
                Message::Proposal(block) => self.on_proposal(block, false, now, &mut out),
                Message::ProposalEcho(block) => self.on_proposal(block, true, now, &mut out),
                Message::Vote(vote) => self.on_vote(vote, false, now, &mut out),
                Message::VoteEcho(vote) => self.on_vote(vote, true, now, &mut out),
                Message::Timeout(tv) => {
                    // One signature for the timeout vote itself plus one per
                    // signer of the embedded high-QC: the ingress stage really
                    // checks both, and the paper's cost model charges `t_CPU`
                    // per signature verified.
                    out.cpu += self.cpu.verify(1 + tv.high_qc.signer_count());
                    self.register_qc(tv.high_qc.clone(), now, &mut out);
                    let actions = self.pacemaker.on_timeout_vote(tv, now);
                    for action in actions {
                        self.apply_pacemaker_action(action, now, &mut out);
                    }
                }
                Message::TimeoutCertMsg(tc) => {
                    // Per-signer cost for the TC aggregate plus the embedded
                    // high-QC it carries, mirroring the real ingress checks.
                    out.cpu += self
                        .cpu
                        .verify(tc.signer_count() + tc.high_qc.signer_count());
                    self.register_qc(tc.high_qc.clone(), now, &mut out);
                    let actions = self.pacemaker.on_timeout_cert(tc, now);
                    for action in actions {
                        self.apply_pacemaker_action(action, now, &mut out);
                    }
                }
                Message::NewView(qc) => {
                    out.cpu += self.cpu.verify(qc.signer_count());
                    self.register_qc(qc, now, &mut out);
                }
                Message::Request(req) => {
                    self.mempool.push(req.transaction);
                }
                Message::Response(_) => {}
                Message::SyncRequest(req) => self.on_sync_request(req, &mut out),
                Message::SyncResponse(resp) => self.on_sync_response(resp, now, &mut out),
            },
            ReplicaEvent::SyncTimer => self.on_sync_timer(now, &mut out),
        }
        out
    }

    // ---- internal handlers --------------------------------------------

    fn on_proposal(
        &mut self,
        block: SharedBlock,
        echoed: bool,
        now: SimTime,
        out: &mut HandleResult,
    ) {
        // Flat aggregate charge for the justify QC: the happy-path block
        // service time follows the paper's Eq. 4 (see
        // `CpuModel::process_proposal` for the rationale); pacemaker
        // certificates below are charged per signer because Eq. 4 does not
        // cover them.
        out.cpu += self.cpu.process_proposal(block.len());
        // Id integrity is enforced at ingress (NodeHost / the verify pool)
        // before any block reaches this point; re-hashing the full payload
        // here would double the real cost of every delivery.
        debug_assert!(block.verify_id(), "unverified block reached the replica");
        let justify = block.justify.clone();
        let block_id = block.id;
        let block_view = block.view;

        // Echo the proposal once (Streamlet's O(n^3) behaviour). The echo
        // shares the same allocation as the stored block — a pointer bump.
        if self.safety.echo_messages() && !echoed && !self.forest.contains(block_id) {
            out.send(
                Destination::AllReplicas,
                Message::ProposalEcho(block.clone()),
            );
        }

        // Store the block (orphans are buffered inside the forest). Inserting
        // the shared handle keeps the payload un-copied.
        match self.forest.insert(block.clone()) {
            Ok(()) => {
                if let Some(qc) = self.pending_qcs.remove(&block_id) {
                    self.register_qc(qc, now, out);
                }
            }
            Err(ForestError::Duplicate(_)) => {}
            Err(_) => {
                // Unknown parent (buffered as orphan) or stale: still process
                // the carried QC so the pacemaker keeps moving.
            }
        }

        // The QC carried by the proposal is new information.
        self.register_qc(justify, now, out);

        // Gap detection: a proposal whose ancestry we cannot resolve sits in
        // the orphan buffer. Arm a debounced sync timer rather than firing a
        // request immediately — on a healthy network the missing parent is
        // usually just reordered and arrives before the debounce expires, in
        // which case the timer fires as a strict no-op (no CPU, no sends).
        if self.forest.orphan_count() > 0 && !self.sync_timer_armed {
            self.sync_timer_armed = true;
            out.sync_timers.push(now + self.pacemaker.timeout() / 4);
        }

        // Voting rule. A syncing replica never votes: it cannot evaluate the
        // safety rules against ancestry it does not have yet.
        if !self.syncing
            && self.forest.contains(block_id)
            && self.safety.should_vote(&block, &self.forest)
        {
            // A recovered replica must never double-vote: `should_vote` just
            // advanced the protocol's watermark to this block, which must sit
            // strictly above whatever the durable restart restored.
            debug_assert!(
                self.restored_voted_view
                    .map_or(true, |restored| self.safety.voted_view() > restored),
                "vote at or below the restored voted-view watermark"
            );
            if let Some(log) = self.storage.as_mut() {
                // WAL rule: the watermark (and the QC backing it) must be
                // durable before the vote can reach the wire — flushed
                // immediately, never batched.
                let high_qc = self.forest.high_qc();
                let payload = storage::encode_safety_record(
                    self.safety.voted_view(),
                    (!high_qc.is_genesis()).then_some(high_qc),
                );
                let written = log.append_synced(RecordKind::SafetyRecord, &payload);
                out.cpu += self.cpu.disk_io(written as usize);
            }
            out.cpu += self.cpu.sign();
            let vote = Vote::new(block_id, block_view, self.id, &self.keypair);
            // A signature-forging attacker replaces its outbound votes; the
            // honest vote is still processed locally either way, so forging
            // can only corrupt what goes on the wire — where the receivers'
            // ingress verification catches it.
            let outbound = self.safety.forged_votes(&vote);
            match self.safety.vote_destination() {
                VoteDestination::NextLeader => {
                    let next_leader = self.election.leader_of(block_view.next());
                    if next_leader == self.id {
                        self.on_vote(vote, true, now, out);
                    } else {
                        match outbound {
                            Some(forged) => {
                                for fake in forged {
                                    out.send(Destination::Node(next_leader), Message::Vote(fake));
                                }
                            }
                            None => out.send(Destination::Node(next_leader), Message::Vote(vote)),
                        }
                    }
                }
                VoteDestination::Broadcast => {
                    match outbound {
                        Some(forged) => {
                            for fake in forged {
                                out.send(Destination::AllReplicas, Message::Vote(fake));
                            }
                        }
                        None => {
                            out.send(Destination::AllReplicas, Message::Vote(vote.clone()));
                        }
                    }
                    // Count our own (honest) vote locally.
                    self.on_vote(vote, true, now, out);
                }
            }
        }

        // A proposal deferred on a pending QC can go out once the missing
        // block (usually this very proposal) has been stored.
        self.maybe_release_deferred(now, out);
    }

    /// `already_local` is true when the vote is our own or an echo — those are
    /// not echoed again.
    fn on_vote(&mut self, vote: Vote, already_local: bool, now: SimTime, out: &mut HandleResult) {
        out.cpu += self.cpu.verify(1);
        if self.safety.echo_messages() && !already_local {
            out.send(Destination::AllReplicas, Message::VoteEcho(vote.clone()));
        }
        if let Some(qc) = self.quorum.add_vote(vote) {
            // Assembling the QC from votes that were each already verified
            // (and charged) on arrival is pure aggregation — no additional
            // signature check happens, so no additional `t_CPU` is charged.
            // The seed double-charged here.
            self.register_qc(qc, now, out);
        }
    }

    /// Registers a QC everywhere it matters: forest, safety state, commit
    /// rule, pacemaker.
    fn register_qc(&mut self, qc: QuorumCert, now: SimTime, out: &mut HandleResult) {
        if qc.is_genesis() {
            return;
        }
        match self.forest.register_qc(qc.clone()) {
            Ok(()) => {}
            Err(ForestError::UnknownBlock(_)) => {
                self.pending_qcs.insert(qc.block, qc.clone());
            }
            Err(_) => {}
        }

        self.safety.update_state(&qc, &self.forest);
        if let Some(commit_id) = self.safety.try_commit(&qc, &self.forest) {
            // The commit is learned in the view after the certifying QC's view
            // (that is when the QC reaches the replicas), which is the
            // convention behind the paper's block-interval metric.
            let learned_in = qc.view.next().max(self.current_view());
            self.commit(commit_id, learned_in, now, out);
        }

        let actions = self.pacemaker.on_qc(&qc, now);
        for action in actions {
            self.apply_pacemaker_action(action, now, out);
        }
    }

    fn apply_pacemaker_action(
        &mut self,
        action: PacemakerAction,
        now: SimTime,
        out: &mut HandleResult,
    ) {
        match action {
            PacemakerAction::ScheduleTimer { view, deadline } => {
                out.timers.push((view, deadline));
            }
            PacemakerAction::BroadcastTimeout(tv) => {
                out.send(Destination::AllReplicas, Message::Timeout(tv.clone()));
                // Our own timeout vote counts towards our own TC.
                let actions = self.pacemaker.on_timeout_vote(tv, now);
                for action in actions {
                    self.apply_pacemaker_action(action, now, out);
                }
            }
            PacemakerAction::NewView { new_view, tc } => {
                self.enter_view(new_view, tc, now, out);
            }
        }
    }

    fn enter_view(
        &mut self,
        view: View,
        tc: Option<TimeoutCert>,
        now: SimTime,
        out: &mut HandleResult,
    ) {
        let via_timeout = tc.is_some();
        if let Some(tc) = tc {
            // Forward the TC to the new leader so it can adopt the highest QC
            // even if it did not form the TC itself.
            let leader = self.election.leader_of(view);
            if leader != self.id {
                out.send(Destination::Node(leader), Message::TimeoutCertMsg(tc));
            }
        }
        if self.election.is_leader(self.id, view) && self.proposed_in_view < view {
            if via_timeout && self.options.wait_for_timeout_on_view_change {
                out.delayed_proposals
                    .push((view, now + self.pacemaker.timeout()));
            } else if self.options.synchronous_epochs && self.safety.epoch_based() {
                // Synchronous epochs: the proposal goes out at the epoch
                // boundary (half the view timeout, so the liveness timer at
                // the full timeout still backstops a lost proposal), not as
                // soon as the previous epoch certifies.
                out.delayed_proposals
                    .push((view, now + self.pacemaker.timeout() / 2));
            } else if self.high_qc_is_pending() {
                // The certification that advanced us refers to a block still
                // in flight (on slow links, votes can outrun the proposal
                // broadcast to the next leader). Proposing now would fork
                // from a stale parent — a wasted view under one-chain locks
                // like 2CHS, which refuse the fork. Wait for the block; the
                // view timer still bounds the wait, so liveness is untouched.
                self.deferred_proposal = Some(view);
            } else {
                self.do_propose(view, now, out);
            }
        }
        // Keep the quorum tracker bounded.
        if view.as_u64() > 64 {
            self.quorum.prune_below(View(view.as_u64() - 64));
        }
    }

    /// True when a quorum certificate newer than anything in the forest is
    /// parked in `pending_qcs` — i.e. we know of a certification whose block
    /// has not arrived, so our high-QC is stale.
    fn high_qc_is_pending(&self) -> bool {
        let registered = self.forest.high_qc().view;
        self.pending_qcs.values().any(|qc| qc.view > registered)
    }

    /// Releases a deferred leader proposal once the block behind the pending
    /// QC has arrived (or drops it if the view has passed).
    fn maybe_release_deferred(&mut self, now: SimTime, out: &mut HandleResult) {
        let Some(view) = self.deferred_proposal else {
            return;
        };
        if view < self.current_view() {
            self.deferred_proposal = None;
            return;
        }
        if self.proposed_in_view < view && !self.high_qc_is_pending() {
            self.deferred_proposal = None;
            self.do_propose(view, now, out);
        }
    }

    fn do_propose(&mut self, view: View, now: SimTime, out: &mut HandleResult) {
        if self.syncing {
            // A catching-up leader proposing would fork from stale state; the
            // view timer moves leadership on without it.
            return;
        }
        if let Some(from) = self.options.silence_from {
            if now >= from {
                return;
            }
        }
        self.proposed_in_view = view;
        let payload = self.mempool.next_batch(self.config.block_size);
        let payload_len = payload.len();
        let input = ProposalInput {
            view,
            proposer: self.id,
            payload,
        };
        match self.safety.propose(&input, &self.forest) {
            Some(block) => {
                out.cpu += self.cpu.assemble_block(payload_len);
                // Wrap the block in its shared handle exactly once; the
                // broadcast clone and the local store below are pointer bumps.
                let block = SharedBlock::new(block);
                out.send(Destination::AllReplicas, Message::Proposal(block.clone()));
                self.on_proposal(block, true, now, out);
            }
            None => {
                // Silence attack (or no proposal possible): give the batch
                // back so the transactions are not lost.
                self.mempool.requeue_front(input.payload);
            }
        }
    }

    fn commit(
        &mut self,
        id: BlockId,
        committed_in_view: View,
        now: SimTime,
        out: &mut HandleResult,
    ) {
        match self.forest.commit(id) {
            Ok(newly) => {
                if newly.is_empty() {
                    return;
                }
                self.ledger.append(newly.clone(), committed_in_view, now);
                // Drop committed transactions we might still hold, and recover
                // transactions from forked branches that lost.
                for block in &newly {
                    self.mempool
                        .remove_committed(block.payload.iter().map(|tx| &tx.id));
                }
                let forked = self.forest.prune_to_committed();
                let recovered: Vec<Transaction> = forked
                    .into_iter()
                    .filter(|b| b.proposer == self.id)
                    .flat_map(|b| match SharedBlock::try_unwrap(b) {
                        // Sole owner (the common case once the forest dropped
                        // its handle): move the transactions out.
                        Ok(block) => block.payload,
                        // Still aliased elsewhere (e.g. by a peer's forest in
                        // the threaded runtime): fall back to a copy. Forked
                        // blocks are rare — this is the attack path only.
                        Err(shared) => shared.payload.clone(),
                    })
                    .collect();
                if !recovered.is_empty() {
                    self.mempool.requeue_front(recovered);
                }
                let committed_len = newly.len();
                out.committed.extend(newly);
                if let Some(log) = self.storage.as_mut() {
                    // Log the new committed entries (with their commit
                    // metadata, straight from the ledger tail) plus the QC
                    // state that drove them. Batched per `fsync_interval`.
                    let start = self.ledger.len() - committed_len;
                    let payloads: Vec<Vec<u8>> = self
                        .ledger
                        .iter()
                        .skip(start)
                        .map(encode_committed_record)
                        .collect();
                    let high_qc = encode_qc_record(self.forest.high_qc());
                    let mut written = 0u64;
                    for payload in &payloads {
                        written += log.append(RecordKind::CommittedBlock, payload);
                    }
                    written += log.append(RecordKind::Qc, &high_qc);
                    out.cpu += self.cpu.disk_io(written as usize);
                }
                self.maybe_checkpoint(out);
            }
            Err(ForestError::ConflictingCommit { .. }) => {
                self.safety_violations += 1;
            }
            Err(_) => {}
        }
    }

    // ---- checkpointing and state transfer ------------------------------

    /// Takes a checkpoint when the committed ledger has grown by at least
    /// `checkpoint_interval` blocks since the last one. Off (`None`) by
    /// default, so runs without the knob are byte-identical to before.
    fn maybe_checkpoint(&mut self, out: &mut HandleResult) {
        let Some(interval) = self.config.checkpoint_interval else {
            return;
        };
        let len = self.ledger.len() as u64;
        if len < self.checkpoint_height + interval {
            return;
        }
        let bytes = Snapshot::encode(&self.forest, &self.ledger);
        out.cpu += self.cpu.snapshot(bytes.len());
        self.checkpoint_height = len;
        self.recovery.checkpoints_taken += 1;
        if let Some(log) = self.storage.as_mut() {
            // Persist the image and cut the log over to it: older segments
            // are subsumed and pruned.
            let written = log.install_checkpoint(len, &bytes);
            out.cpu += self.cpu.disk_io(written as usize);
        }
        self.latest_checkpoint = Some(Bytes::from(bytes));
    }

    /// Debounce/retry timer. If the gap healed through live traffic before
    /// the deadline this is a strict no-op (zero CPU, zero sends), so healthy
    /// runs are unperturbed by the detection machinery.
    fn on_sync_timer(&mut self, now: SimTime, out: &mut HandleResult) {
        self.sync_timer_armed = false;
        if !self.syncing && self.forest.orphan_count() == 0 {
            return;
        }
        self.send_sync_request(now, out);
    }

    /// Starts (or retries) a catch-up episode: sends a signed request for our
    /// missing suffix to a deterministically chosen peer and arms a retry
    /// timer with linear backoff.
    fn send_sync_request(&mut self, now: SimTime, out: &mut HandleResult) {
        if self.config.nodes <= 1 {
            // No peers to sync from.
            self.syncing = false;
            return;
        }
        if !self.syncing {
            // A new episode begins: the previous caught-up mark no longer
            // describes the final state.
            self.recovery.caught_up_at = None;
        }
        self.syncing = true;
        let target = self.sync_target();
        self.sync_attempts += 1;
        self.recovery.sync_requests_sent += 1;
        out.cpu += self.cpu.sign();
        let request = SyncRequest::new(
            self.id,
            self.ledger.head(),
            Height(self.ledger.len() as u64),
            &self.keypair,
        );
        out.send(Destination::Node(target), Message::SyncRequest(request));
        // Linear backoff, capped: a lost response costs one more round trip.
        let backoff = SimDuration::from_nanos(
            self.pacemaker.timeout().as_nanos() * self.sync_attempts.min(8),
        );
        self.sync_timer_armed = true;
        out.sync_timers.push(now + backoff);
    }

    /// Deterministic peer choice: the first attempt asks the proposer of the
    /// oldest buffered orphan (it certainly holds the missing ancestry);
    /// retries rotate through the validator set, skipping ourselves.
    fn sync_target(&self) -> NodeId {
        if self.sync_attempts == 0 {
            if let Some(orphan) = self.forest.oldest_orphan() {
                if orphan.proposer != self.id {
                    return orphan.proposer;
                }
            }
        }
        let n = self.config.nodes as u64;
        let mut candidate = (self.id.as_u64() + 1 + self.sync_attempts) % n;
        if candidate == self.id.as_u64() {
            candidate = (candidate + 1) % n;
        }
        NodeId(candidate)
    }

    /// Serves a state-transfer request from local state. If the requester is
    /// behind our latest checkpoint (or on a chain we do not recognise), the
    /// response leads with the snapshot; the committed suffix above it and the
    /// uncommitted main path follow, capped at [`SYNC_BATCH`] blocks.
    fn on_sync_request(&mut self, req: SyncRequest, out: &mut HandleResult) {
        out.cpu += self.cpu.verify(1);
        if req.requester == self.id {
            return;
        }
        self.recovery.sync_responses_served += 1;
        // Where in our ledger does the requester's claimed head sit?
        let claimed = req.height.as_u64() as usize;
        let on_our_chain = claimed == 0
            || (claimed <= self.ledger.len()
                && self.ledger.get(claimed - 1).map(|c| c.block.id) == Some(req.head));
        let mut start = if on_our_chain { claimed } else { 0 };
        let mut snapshot = None;
        if let Some(bytes) = &self.latest_checkpoint {
            if (start as u64) < self.checkpoint_height {
                out.cpu += self.cpu.snapshot(bytes.len());
                snapshot = Some(bytes.clone());
                start = self.checkpoint_height as usize;
            }
        }
        let mut blocks: Vec<SharedBlock> = self
            .ledger
            .iter()
            .skip(start)
            .take(SYNC_BATCH)
            .map(|c| c.block.clone())
            .collect();
        if blocks.len() < SYNC_BATCH {
            // Room left in the batch: append the uncommitted main path so the
            // requester can rejoin live consensus immediately.
            let head = self.forest.committed_head().id;
            let tip = self.forest.highest_certified_block().id;
            if let Some(path) = self.forest.shared_path_from(head, tip) {
                blocks.extend(path.into_iter().take(SYNC_BATCH - blocks.len()).cloned());
            }
        }
        let response = SyncResponse {
            responder: self.id,
            snapshot,
            blocks,
            high_qc: self.forest.high_qc().clone(),
        };
        out.send(
            Destination::Node(req.requester),
            Message::SyncResponse(response),
        );
    }

    /// Installs a state-transfer response: adopt the snapshot if it is ahead
    /// of everything we have, then replay the block suffix through the normal
    /// insert/QC path so commits fire through the protocol's own commit rule.
    fn on_sync_response(&mut self, resp: SyncResponse, now: SimTime, out: &mut HandleResult) {
        if !self.syncing {
            // Unsolicited or duplicate response after we already caught up.
            return;
        }
        self.recovery.sync_bytes_received += resp.wire_size() as u64;
        if let Some(bytes) = &resp.snapshot {
            out.cpu += self.cpu.snapshot(bytes.len());
            if let Ok(snap) = Snapshot::decode(bytes) {
                if snap.ledger.len() > self.ledger.len() {
                    self.forest = snap.forest;
                    self.ledger = snap.ledger;
                    self.pending_qcs.clear();
                    self.deferred_proposal = None;
                    self.recovery.snapshots_installed += 1;
                }
            }
        }
        self.recovery.blocks_synced += resp.blocks.len() as u64;
        for block in resp.blocks {
            out.cpu += self.cpu.process_proposal(block.len());
            let justify = block.justify.clone();
            // Duplicates and orphans are handled inside the forest; either
            // way the carried QC is registered below.
            let _ = self.forest.insert(block);
            self.register_qc(justify, now, out);
        }
        self.register_qc(resp.high_qc, now, out);
        if self.forest.orphan_count() == 0 {
            // Nothing unresolvable remains: the episode is over. If we are
            // still behind the live tip, the next proposal will orphan and
            // re-arm the machinery with a fresher head.
            self.syncing = false;
            self.sync_attempts = 0;
            self.recovery.caught_up_at = Some(now);
        }
    }

    /// Restarts this replica with amnesia: every in-memory structure is
    /// discarded and rebuilt from the latest checkpoint (or from genesis when
    /// none was taken) — modelling a crashed process that comes back with
    /// only its durable disk image. Returns the combined effects of the
    /// restart: the fresh view timer, and an immediate state-transfer request
    /// for the history lost since the checkpoint.
    pub fn amnesia_restart(&mut self, now: SimTime) -> HandleResult {
        let mut out = HandleResult::default();
        let restored = self
            .latest_checkpoint
            .as_ref()
            .and_then(|bytes| {
                out.cpu += self.cpu.snapshot(bytes.len());
                Snapshot::decode(bytes).ok()
            })
            .map(|snap| (snap.forest, snap.ledger));
        let (forest, ledger) = restored.unwrap_or_else(|| (BlockForest::new(), Ledger::new()));
        self.forest = forest;
        self.ledger = ledger;
        self.checkpoint_height = self.ledger.len() as u64;
        let strategy = if self.config.is_byzantine(self.id) {
            self.config.byzantine_strategy
        } else {
            bamboo_types::ByzantineStrategy::Honest
        };
        self.safety = make_safety(self.protocol, strategy, self.config.nodes);
        self.mempool = Mempool::with_shards(self.config.mempool_size, self.config.mempool_shards);
        self.pacemaker = Pacemaker::new(self.id, self.config.nodes, self.config.timeout);
        self.quorum = QuorumTracker::new(self.config.nodes);
        self.proposed_in_view = View::GENESIS;
        self.pending_qcs.clear();
        self.deferred_proposal = None;
        self.syncing = false;
        self.sync_timer_armed = false;
        self.sync_attempts = 0;
        self.recovery.restarted_at = Some(now);
        self.recovery.caught_up_at = None;
        // Ask for the missing history first (this marks us as syncing, which
        // suppresses proposing from stale state), then arm the view timer.
        self.send_sync_request(now, &mut out);
        let startup = self.start(now);
        out.cpu += startup.cpu;
        out.outbound.extend(startup.outbound);
        out.timers.extend(startup.timers);
        out.delayed_proposals.extend(startup.delayed_proposals);
        out.sync_timers.extend(startup.sync_timers);
        out.committed.extend(startup.committed);
        out
    }

    /// Restarts this replica from its own durable storage: process death is
    /// simulated against the segment log (buffered writes lost, the optional
    /// crash-point `fault` mauling the durable image), then forest and ledger
    /// are rebuilt from the persisted checkpoint plus the log's longest valid
    /// record prefix, and the voted-view/locked-QC safety state is restored
    /// so the recovered replica can never double-vote. Network sync covers
    /// only the tail missed while down. A replica without storage degrades to
    /// [`Replica::amnesia_restart`].
    pub fn durable_restart(&mut self, now: SimTime, fault: Option<StorageFault>) -> HandleResult {
        if self.storage.is_none() {
            return self.amnesia_restart(now);
        }
        let replay = {
            let log = self.storage.as_mut().expect("checked above");
            if let Some(fault) = fault {
                log.schedule_fault(fault);
            }
            log.crash();
            log.replay()
        };

        // Fresh volatile state, exactly as in an amnesia restart — but
        // everything below is then rebuilt from the local durable image.
        self.forest = BlockForest::new();
        self.ledger = Ledger::new();
        self.latest_checkpoint = None;
        self.checkpoint_height = 0;
        let strategy = if self.config.is_byzantine(self.id) {
            self.config.byzantine_strategy
        } else {
            bamboo_types::ByzantineStrategy::Honest
        };
        self.safety = make_safety(self.protocol, strategy, self.config.nodes);
        self.mempool = Mempool::with_shards(self.config.mempool_size, self.config.mempool_shards);
        self.pacemaker = Pacemaker::new(self.id, self.config.nodes, self.config.timeout);
        self.quorum = QuorumTracker::new(self.config.nodes);
        self.proposed_in_view = View::GENESIS;
        self.pending_qcs.clear();
        self.deferred_proposal = None;
        self.syncing = false;
        self.sync_timer_armed = false;
        self.sync_attempts = 0;
        self.recovery.restarted_at = Some(now);
        self.recovery.caught_up_at = None;
        self.recovery.durable_restarts += 1;

        let mut out = HandleResult::default();
        // The modeled disk read: replay cost scales with bytes scanned, so
        // recovery latency is a deterministic simulator output.
        let replay_cost = self.cpu.disk_io(replay.bytes_read as usize);
        out.cpu += replay_cost;
        self.recovery.log_replay_nanos += replay_cost.as_nanos();
        self.recovery.corrupt_records_discarded += replay.corrupt_records_discarded;

        if let Some((_, image)) = &replay.checkpoint {
            out.cpu += self.cpu.snapshot(image.len());
            if let Ok(snap) = Snapshot::decode(image) {
                self.forest = snap.forest;
                self.ledger = snap.ledger;
                self.checkpoint_height = self.ledger.len() as u64;
                self.latest_checkpoint = Some(Bytes::from(image.clone()));
            }
        }

        let mut voted = View::GENESIS;
        let mut locked_qc: Option<QuorumCert> = None;
        let mut replayed = 0u64;
        let mut broken = false;
        for (kind, payload) in &replay.records {
            if broken {
                self.recovery.corrupt_records_discarded += 1;
                continue;
            }
            let applied = match kind {
                RecordKind::CommittedBlock => self.replay_committed(payload),
                RecordKind::Qc => match decode_qc_record(payload) {
                    Ok(qc) => {
                        self.replay_qc(qc);
                        true
                    }
                    Err(_) => false,
                },
                RecordKind::CheckpointMarker => storage::decode_checkpoint_marker(payload).is_ok(),
                RecordKind::SafetyRecord => match storage::decode_safety_record(payload) {
                    Ok((view, qc)) => {
                        voted = voted.max(view);
                        if qc.is_some() {
                            locked_qc = qc;
                        }
                        true
                    }
                    Err(_) => false,
                },
            };
            if applied {
                replayed += 1;
            } else {
                // A record that frames but does not apply — decode failure,
                // or a chain gap left by a dropped fsync — ends replay:
                // everything after it is off the recovered chain.
                broken = true;
                self.recovery.corrupt_records_discarded += 1;
            }
        }
        self.recovery.records_replayed += replayed;

        // Restore the safety-critical state: re-derive the lock through the
        // protocol's own state-updating rule, then clamp the vote watermark.
        if let Some(qc) = locked_qc {
            self.replay_qc(qc);
        }
        self.safety.restore_voted_view(voted);
        self.restored_voted_view = Some(self.safety.voted_view());

        // Fall back to network sync for the tail missed while down, then
        // rejoin live consensus.
        self.send_sync_request(now, &mut out);
        let startup = self.start(now);
        out.cpu += startup.cpu;
        out.outbound.extend(startup.outbound);
        out.timers.extend(startup.timers);
        out.delayed_proposals.extend(startup.delayed_proposals);
        out.sync_timers.extend(startup.sync_timers);
        out.committed.extend(startup.committed);
        out
    }

    /// Re-applies one durable committed-block record. Returns false when the
    /// record does not extend the recovered chain — the replay-ending signal.
    fn replay_committed(&mut self, payload: &[u8]) -> bool {
        let Ok(committed) = decode_committed_record(payload) else {
            return false;
        };
        let height = committed.block.height.as_u64();
        if height <= self.ledger.len() as u64 {
            // Already covered by the checkpoint image: the image subsumes
            // every record logged before its marker.
            return true;
        }
        if height != self.ledger.len() as u64 + 1 {
            // A hole (dropped fsync) or a record from a divergent history.
            return false;
        }
        let id = committed.block.id;
        match self.forest.insert(committed.block.clone()) {
            Ok(()) | Err(ForestError::Duplicate(_)) => {}
            Err(_) => return false,
        }
        if !committed.block.justify.is_genesis() {
            let justify = committed.block.justify.clone();
            self.replay_qc(justify);
        }
        match self.forest.commit(id) {
            Ok(newly) => {
                self.ledger
                    .append(newly, committed.committed_in_view, committed.committed_at);
                self.forest.prune_to_committed();
                true
            }
            Err(_) => false,
        }
    }

    /// Re-registers a replayed QC: forest certification plus the protocol's
    /// state-updating rule, with no pacemaker or commit side effects — the
    /// commits come from their own records.
    fn replay_qc(&mut self, qc: QuorumCert) {
        if qc.is_genesis() {
            return;
        }
        if self.forest.register_qc(qc.clone()).is_err() {
            self.forest.observe_qc(qc.clone());
        }
        self.safety.update_state(&qc, &self.forest);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bamboo_types::SimTime;

    fn config(nodes: usize) -> Config {
        Config::builder()
            .nodes(nodes)
            .block_size(10)
            .seed(1)
            .build()
            .unwrap()
    }

    fn txs(n: u64, client: u64) -> Vec<Transaction> {
        (0..n)
            .map(|i| Transaction::new(NodeId(client), i, 16, SimTime::ZERO))
            .collect()
    }

    /// Drives a 4-replica in-memory cluster with zero network delay by
    /// delivering every outbound message immediately, for `steps` rounds.
    fn drive(protocol: ProtocolKind, views: u64) -> Vec<Replica> {
        let cfg = config(4);
        let mut replicas: Vec<Replica> = (0..4)
            .map(|i| Replica::new(NodeId(i), protocol, cfg.clone(), ReplicaOptions::default()))
            .collect();
        // Seed every replica's mempool.
        for (i, replica) in replicas.iter_mut().enumerate() {
            replica.handle(
                ReplicaEvent::ClientRequests(txs(200, 100 + i as u64)),
                SimTime::ZERO,
            );
        }
        let mut inbox: Vec<(NodeId, ReplicaEvent)> = Vec::new();
        let mut now = SimTime::ZERO;
        let mut startup: Vec<(NodeId, HandleResult)> = Vec::new();
        for replica in replicas.iter_mut() {
            let result = replica.start(now);
            startup.push((replica.id(), result));
        }
        let route =
            |from: NodeId, result: HandleResult, inbox: &mut Vec<(NodeId, ReplicaEvent)>| {
                for outbound in result.outbound {
                    match outbound.to {
                        Destination::Node(node) => inbox.push((
                            node,
                            ReplicaEvent::Message {
                                from,
                                message: outbound.message.clone(),
                            },
                        )),
                        Destination::AllReplicas => {
                            for node in 0..4u64 {
                                if NodeId(node) != from {
                                    inbox.push((
                                        NodeId(node),
                                        ReplicaEvent::Message {
                                            from,
                                            message: outbound.message.clone(),
                                        },
                                    ));
                                }
                            }
                        }
                    }
                }
            };
        for (from, result) in startup {
            route(from, result, &mut inbox);
        }
        // Round-based delivery until enough views pass.
        for _ in 0..(views * 40) {
            if inbox.is_empty() {
                break;
            }
            now += bamboo_types::SimDuration::from_micros(100);
            let batch = std::mem::take(&mut inbox);
            for (to, event) in batch {
                let result = replicas[to.index()].handle(event, now);
                route(to, result, &mut inbox);
            }
            if replicas.iter().all(|r| r.current_view().as_u64() >= views) {
                break;
            }
        }
        replicas
    }

    #[test]
    fn hotstuff_cluster_commits_blocks_and_agrees() {
        let replicas = drive(ProtocolKind::HotStuff, 12);
        for replica in &replicas {
            assert_eq!(replica.safety_violations(), 0);
            assert!(replica.ledger().verify_chain());
            assert!(
                replica.ledger().len() > 3,
                "replica {} committed only {} blocks",
                replica.id(),
                replica.ledger().len()
            );
        }
        for pair in replicas.windows(2) {
            assert!(pair[0].ledger().consistent_with(pair[1].ledger()));
        }
    }

    #[test]
    fn two_chain_hotstuff_cluster_commits() {
        let replicas = drive(ProtocolKind::TwoChainHotStuff, 12);
        assert!(replicas.iter().all(|r| r.ledger().len() > 3));
        assert!(replicas.iter().all(|r| r.safety_violations() == 0));
    }

    #[test]
    fn streamlet_cluster_commits() {
        let replicas = drive(ProtocolKind::Streamlet, 12);
        assert!(replicas.iter().all(|r| r.ledger().len() > 2));
        assert!(replicas.iter().all(|r| r.safety_violations() == 0));
        for pair in replicas.windows(2) {
            assert!(pair[0].ledger().consistent_with(pair[1].ledger()));
        }
    }

    #[test]
    fn client_requests_land_in_mempool_and_blocks() {
        let cfg = config(4);
        let mut replica = Replica::new(
            NodeId(1),
            ProtocolKind::HotStuff,
            cfg,
            ReplicaOptions::default(),
        );
        replica.handle(ReplicaEvent::ClientRequests(txs(25, 7)), SimTime::ZERO);
        assert_eq!(replica.mempool_len(), 25);
        // Node 1 leads view 1: starting it proposes a block with 10 txs.
        let result = replica.start(SimTime::ZERO);
        assert_eq!(replica.mempool_len(), 15);
        let proposal = result
            .outbound
            .iter()
            .find_map(|o| match &o.message {
                Message::Proposal(b) => Some(b.clone()),
                _ => None,
            })
            .expect("leader proposed");
        assert_eq!(proposal.len(), 10);
    }

    #[test]
    fn non_leader_start_only_arms_timer() {
        let cfg = config(4);
        let mut replica = Replica::new(
            NodeId(3),
            ProtocolKind::HotStuff,
            cfg,
            ReplicaOptions::default(),
        );
        let result = replica.start(SimTime::ZERO);
        assert!(result.outbound.is_empty());
        assert_eq!(result.timers.len(), 1);
        assert_eq!(result.timers[0].0, View(1));
    }

    #[test]
    fn timer_expiry_produces_timeout_broadcast() {
        let cfg = config(4);
        let mut replica = Replica::new(
            NodeId(2),
            ProtocolKind::HotStuff,
            cfg,
            ReplicaOptions::default(),
        );
        replica.start(SimTime::ZERO);
        let result = replica.handle(
            ReplicaEvent::TimerFired { view: View(1) },
            SimTime(200_000_000),
        );
        assert!(result
            .outbound
            .iter()
            .any(|o| matches!(o.message, Message::Timeout(_))));
    }

    #[test]
    fn silence_from_option_mutes_proposals() {
        let cfg = config(4);
        let mut replica = Replica::new(
            NodeId(1),
            ProtocolKind::HotStuff,
            cfg,
            ReplicaOptions {
                silence_from: Some(SimTime::ZERO),
                ..Default::default()
            },
        );
        replica.handle(ReplicaEvent::ClientRequests(txs(25, 7)), SimTime::ZERO);
        let result = replica.start(SimTime::ZERO);
        assert!(result.outbound.is_empty(), "silenced leader never proposes");
        assert_eq!(replica.mempool_len(), 25, "batch returned to the pool");
    }
}

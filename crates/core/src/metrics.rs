//! Benchmark metrics: throughput, latency, chain growth rate, block interval.
//!
//! These are the four metrics of §IV-B of the paper. Latency is measured from
//! the moment the client issues a transaction until the commit confirmation
//! would reach it (client RTT is added by the runner, matching the model's
//! `t_L` term). Chain growth rate and block interval are the two micro-metrics
//! introduced for the Byzantine experiments.

use bamboo_mempool::MempoolStats;
use bamboo_types::{Json, ProtocolKind, SimDuration, SimTime, ToJson};

/// A latency distribution summary in milliseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: u64,
    /// Mean latency (ms).
    pub mean_ms: f64,
    /// Median latency (ms).
    pub p50_ms: f64,
    /// 99th-percentile latency (ms).
    pub p99_ms: f64,
    /// Maximum observed latency (ms).
    pub max_ms: f64,
}

/// One point of the throughput time series (used by the responsiveness
/// experiment, Fig. 15).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ThroughputSample {
    /// Start of the bucket.
    pub at: SimTime,
    /// Committed transactions per second during the bucket.
    pub tx_per_sec: f64,
}

/// Mempool admission/flow counters of one run, summed across all replicas.
///
/// `rejected` is the admission-control backpressure signal of the client
/// pipeline (DESIGN.md §7): transactions turned away because the owning
/// mempool shard was full (or the id was a duplicate). Every offered
/// transaction is either accepted or rejected — nothing is dropped silently.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MempoolTotals {
    /// Transactions admitted into a mempool.
    pub accepted: u64,
    /// Transactions rejected at admission (shard full or duplicate).
    pub rejected: u64,
    /// Transactions re-queued from forked blocks.
    pub requeued: u64,
    /// Transactions handed out in proposal batches.
    pub dispatched: u64,
}

impl ToJson for MempoolTotals {
    fn to_json(&self) -> Json {
        Json::obj([
            ("accepted", Json::from(self.accepted)),
            ("rejected", Json::from(self.rejected)),
            ("requeued", Json::from(self.requeued)),
            ("dispatched", Json::from(self.dispatched)),
        ])
    }
}

/// Running metric accumulator owned by the runner.
#[derive(Clone, Debug)]
pub struct Metrics {
    latencies_ms: Vec<f64>,
    /// Client-observed submit→commit latencies (no response leg; see
    /// [`Metrics::record_commit`]).
    client_latencies_ms: Vec<f64>,
    committed_txs: u64,
    committed_blocks: u64,
    bucket: SimDuration,
    buckets: Vec<u64>,
    /// Messages sent over the network, by coarse count.
    messages_sent: u64,
    /// Total bytes sent over the network.
    bytes_sent: u64,
    /// Mempool admission counters folded in at the end of a run.
    mempool: MempoolTotals,
}

impl Metrics {
    /// Creates an accumulator with the given time-series bucket width.
    pub fn new(bucket: SimDuration) -> Self {
        Self {
            latencies_ms: Vec::new(),
            client_latencies_ms: Vec::new(),
            committed_txs: 0,
            committed_blocks: 0,
            bucket,
            buckets: Vec::new(),
            messages_sent: 0,
            bytes_sent: 0,
            mempool: MempoolTotals::default(),
        }
    }

    /// Records the commit of a transaction issued at `issued_at`, committed by
    /// the observer replica at `committed_at`, and confirmed (at the client,
    /// after the response leg) at `confirmed_at`.
    ///
    /// Two distributions are kept: the paper's end-to-end latency
    /// (issue → confirmation, including the client response delay, the `t_L`
    /// term) and the client-observed submit→commit latency
    /// (issue → commit instant), which is what a saturation sweep watches
    /// collapse as offered load passes capacity.
    pub fn record_commit(
        &mut self,
        issued_at: SimTime,
        committed_at: SimTime,
        confirmed_at: SimTime,
    ) {
        self.committed_txs += 1;
        let latency = confirmed_at.since(issued_at).as_millis_f64();
        self.latencies_ms.push(latency);
        self.client_latencies_ms
            .push(committed_at.since(issued_at).as_millis_f64());
        let idx = (confirmed_at.as_nanos() / self.bucket.as_nanos().max(1)) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
    }

    /// Folds one replica's mempool admission counters into the run totals
    /// (called once per replica when the report is assembled).
    pub fn record_mempool(&mut self, stats: &MempoolStats) {
        self.mempool.accepted += stats.accepted;
        self.mempool.rejected += stats.rejected;
        self.mempool.requeued += stats.requeued;
        self.mempool.dispatched += stats.dispatched;
    }

    /// The accumulated mempool admission counters.
    pub fn mempool_totals(&self) -> MempoolTotals {
        self.mempool
    }

    /// Records a committed block (counted once, at a designated observer
    /// replica).
    pub fn record_block(&mut self) {
        self.committed_blocks += 1;
    }

    /// Records a message of `bytes` put on the wire.
    pub fn record_message(&mut self, bytes: usize) {
        self.messages_sent += 1;
        self.bytes_sent += bytes as u64;
    }

    /// Number of committed transactions so far.
    pub fn committed_txs(&self) -> u64 {
        self.committed_txs
    }

    /// Summarises the end-to-end latency distribution (issue → confirmation).
    pub fn latency(&self) -> LatencyStats {
        summarise(&self.latencies_ms)
    }

    /// Summarises the client-observed submit→commit latency distribution.
    pub fn client_latency(&self) -> LatencyStats {
        summarise(&self.client_latencies_ms)
    }

    /// Produces the committed-throughput time series.
    pub fn throughput_series(&self) -> Vec<ThroughputSample> {
        let bucket_secs = self.bucket.as_secs_f64();
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, count)| ThroughputSample {
                at: SimTime(i as u64 * self.bucket.as_nanos()),
                tx_per_sec: *count as f64 / bucket_secs,
            })
            .collect()
    }

    /// Network counters: `(messages, bytes)`.
    pub fn network_counters(&self) -> (u64, u64) {
        (self.messages_sent, self.bytes_sent)
    }

    /// Folds another accumulator into this one — the sharded engine keeps one
    /// accumulator per shard and merges them at the end of the run. Latency
    /// samples concatenate (the summary sorts internally, so sample order is
    /// irrelevant), time-series buckets add elementwise, counters add.
    pub fn merge(&mut self, other: Metrics) {
        self.latencies_ms.extend(other.latencies_ms);
        self.client_latencies_ms.extend(other.client_latencies_ms);
        self.committed_txs += other.committed_txs;
        self.committed_blocks += other.committed_blocks;
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (bucket, count) in self.buckets.iter_mut().zip(&other.buckets) {
            *bucket += count;
        }
        self.messages_sent += other.messages_sent;
        self.bytes_sent += other.bytes_sent;
        self.mempool.accepted += other.mempool.accepted;
        self.mempool.rejected += other.mempool.rejected;
        self.mempool.requeued += other.mempool.requeued;
        self.mempool.dispatched += other.mempool.dispatched;
    }
}

/// Sorts a copy of the samples and summarises count/mean/p50/p99/max.
fn summarise(samples: &[f64]) -> LatencyStats {
    if samples.is_empty() {
        return LatencyStats::default();
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let pct = |q: f64| -> f64 {
        let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
        sorted[idx]
    };
    LatencyStats {
        count: sorted.len() as u64,
        mean_ms: sorted.iter().sum::<f64>() / sorted.len() as f64,
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
        max_ms: *sorted.last().expect("non-empty"),
    }
}

/// Checkpoint, state-transfer and crash-recovery metrics of one run, summed
/// across all replicas (durations are worst-case over the recovered ones).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RecoveryReport {
    /// Checkpoints taken across all replicas.
    pub checkpoints_taken: u64,
    /// State-transfer requests sent.
    pub sync_requests: u64,
    /// State-transfer responses served.
    pub sync_responses: u64,
    /// Wire bytes received in state-transfer responses.
    pub sync_bytes: u64,
    /// Snapshots installed wholesale by catching-up replicas.
    pub snapshots_installed: u64,
    /// Blocks received through state transfer.
    pub blocks_synced: u64,
    /// Orphans evicted from bounded forest buffers.
    pub orphans_evicted: u64,
    /// Replicas that restarted with amnesia during the run.
    pub amnesia_recoveries: u64,
    /// Whether every amnesia-recovered replica caught back up: its committed
    /// chain reached the length of the never-crashed honest minimum with an
    /// identical chain fingerprint over that prefix. Vacuously `true` when no
    /// amnesia recovery happened.
    pub recovered_caught_up: bool,
    /// Worst-case catch-up duration (restart to orphan-free) over the
    /// amnesia-recovered replicas, in milliseconds; `0` when none recovered.
    pub recovery_time_ms: f64,
    /// Replicas that restarted from their durable segment log during the run.
    pub durable_restarts: u64,
    /// Log records successfully replayed across all durable restarts.
    pub records_replayed: u64,
    /// Log records discarded as corrupt (torn tail, bad CRC, broken chain
    /// linkage) across all durable restarts.
    pub corrupt_records_discarded: u64,
    /// Worst-case log-replay duration over the durable restarts, in
    /// milliseconds of modeled CPU time; `0` when none restarted.
    pub log_replay_ms: f64,
}

impl Default for RecoveryReport {
    fn default() -> Self {
        Self {
            checkpoints_taken: 0,
            sync_requests: 0,
            sync_responses: 0,
            sync_bytes: 0,
            snapshots_installed: 0,
            blocks_synced: 0,
            orphans_evicted: 0,
            amnesia_recoveries: 0,
            recovered_caught_up: true,
            recovery_time_ms: 0.0,
            durable_restarts: 0,
            records_replayed: 0,
            corrupt_records_discarded: 0,
            log_replay_ms: 0.0,
        }
    }
}

impl ToJson for RecoveryReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("checkpoints_taken", Json::from(self.checkpoints_taken)),
            ("sync_requests", Json::from(self.sync_requests)),
            ("sync_responses", Json::from(self.sync_responses)),
            ("sync_bytes", Json::from(self.sync_bytes)),
            ("snapshots_installed", Json::from(self.snapshots_installed)),
            ("blocks_synced", Json::from(self.blocks_synced)),
            ("orphans_evicted", Json::from(self.orphans_evicted)),
            ("amnesia_recoveries", Json::from(self.amnesia_recoveries)),
            ("recovered_caught_up", Json::from(self.recovered_caught_up)),
            ("recovery_time_ms", Json::from(self.recovery_time_ms)),
            ("durable_restarts", Json::from(self.durable_restarts)),
            ("records_replayed", Json::from(self.records_replayed)),
            (
                "corrupt_records_discarded",
                Json::from(self.corrupt_records_discarded),
            ),
            ("log_replay_ms", Json::from(self.log_replay_ms)),
        ])
    }
}

/// The final report of one simulation run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Protocol under test.
    pub protocol: ProtocolKind,
    /// Number of replicas.
    pub nodes: usize,
    /// Number of Byzantine replicas.
    pub byz_nodes: usize,
    /// Simulated duration of the measurement window (seconds).
    pub duration_secs: f64,
    /// Committed transactions per second (measured on the observer replica).
    pub throughput_tx_per_sec: f64,
    /// End-to-end latency statistics.
    pub latency: LatencyStats,
    /// Client-observed submit→commit latency statistics (no response leg) —
    /// the distribution a saturation sweep watches collapse.
    pub client_latency: LatencyStats,
    /// Total committed transactions.
    pub committed_txs: u64,
    /// Total committed blocks.
    pub committed_blocks: u64,
    /// Highest view reached by the observer replica.
    pub views_advanced: u64,
    /// Chain growth rate: committed blocks per view (§IV-B1).
    pub chain_growth_rate: f64,
    /// Average block interval in views (§IV-B2).
    pub block_interval: f64,
    /// Number of view changes caused by timeouts.
    pub timeout_view_changes: u64,
    /// Messages sent over the network.
    pub messages_sent: u64,
    /// Bytes sent over the network.
    pub bytes_sent: u64,
    /// Committed-throughput time series (bucketed).
    pub throughput_series: Vec<ThroughputSample>,
    /// Number of detected safety violations (conflicting commits). Must be 0.
    pub safety_violations: u64,
    /// Messages rejected at the authenticated ingress stage (forged or
    /// malformed signatures/certificates), summed over all replicas. Zero in
    /// a run without signature-forging Byzantine nodes.
    pub rejected_messages: u64,
    /// Client requests rejected at the replica edge because their signature
    /// failed to verify (signed-client mode only; zero otherwise).
    pub client_auth_rejections: u64,
    /// Mempool admission counters summed across all replicas. The `rejected`
    /// field is the admission-control backpressure counter: transactions
    /// turned away because the owning mempool shard was full.
    pub mempool: MempoolTotals,
    /// Transactions still waiting (not committed) at the end of the run.
    pub pending_txs: u64,
    /// Simulation events processed by the engine loop (the denominator of
    /// the engine's events/sec figure).
    pub events_processed: u64,
    /// Total events ever scheduled on the event queue.
    pub events_scheduled: u64,
    /// Highest number of simultaneously pending events — the engine's memory
    /// high-water mark, so sweep memory use is observable per run. Under the
    /// sharded engine this is the **sum** of the per-shard queue high-water
    /// marks (at `threads = 1` there is one shard, so the value keeps its
    /// single-queue meaning; workload ticks are generated at the barrier and
    /// no longer occupy a queue slot).
    pub queue_peak_len: u64,
    /// Largest single-shard queue high-water mark. Equal to
    /// [`RunReport::queue_peak_len`] at `threads = 1`; under sharding it
    /// exposes the worst per-worker memory footprint.
    pub max_shard_queue_peak: u64,
    /// Number of engine shards (worker threads) the run executed on.
    pub threads: usize,
    /// Hex fingerprint of the observer replica's committed ledger (every
    /// block id, view and payload transaction id, in order). Two runs with
    /// the same configuration must produce identical fingerprints — the
    /// golden-replay tests pin engine rewrites against recorded values.
    pub ledger_fingerprint: String,
    /// Checkpointing and crash-recovery metrics (all zero/vacuous in runs
    /// without checkpoints or amnesia faults).
    pub recovery: RecoveryReport,
}

impl RunReport {
    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{} n={} byz={}: {:.0} tx/s, latency mean {:.2} ms (p99 {:.2}), CGR {:.2}, BI {:.2}",
            self.protocol,
            self.nodes,
            self.byz_nodes,
            self.throughput_tx_per_sec,
            self.latency.mean_ms,
            self.latency.p99_ms,
            self.chain_growth_rate,
            self.block_interval
        )
    }
}

impl ToJson for LatencyStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::from(self.count)),
            ("mean_ms", Json::from(self.mean_ms)),
            ("p50_ms", Json::from(self.p50_ms)),
            ("p99_ms", Json::from(self.p99_ms)),
            ("max_ms", Json::from(self.max_ms)),
        ])
    }
}

impl ToJson for ThroughputSample {
    fn to_json(&self) -> Json {
        Json::obj([
            ("at_ms", Json::from(self.at.as_millis_f64())),
            ("tx_per_sec", Json::from(self.tx_per_sec)),
        ])
    }
}

impl ToJson for RunReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("protocol", Json::from(self.protocol.label())),
            ("nodes", Json::from(self.nodes)),
            ("byz_nodes", Json::from(self.byz_nodes)),
            ("duration_secs", Json::from(self.duration_secs)),
            (
                "throughput_tx_per_sec",
                Json::from(self.throughput_tx_per_sec),
            ),
            ("latency", self.latency.to_json()),
            ("client_latency", self.client_latency.to_json()),
            ("committed_txs", Json::from(self.committed_txs)),
            ("committed_blocks", Json::from(self.committed_blocks)),
            ("views_advanced", Json::from(self.views_advanced)),
            ("chain_growth_rate", Json::from(self.chain_growth_rate)),
            ("block_interval", Json::from(self.block_interval)),
            (
                "timeout_view_changes",
                Json::from(self.timeout_view_changes),
            ),
            ("messages_sent", Json::from(self.messages_sent)),
            ("bytes_sent", Json::from(self.bytes_sent)),
            ("throughput_series", self.throughput_series.to_json()),
            ("safety_violations", Json::from(self.safety_violations)),
            ("rejected_messages", Json::from(self.rejected_messages)),
            (
                "client_auth_rejections",
                Json::from(self.client_auth_rejections),
            ),
            ("mempool", self.mempool.to_json()),
            ("pending_txs", Json::from(self.pending_txs)),
            ("events_processed", Json::from(self.events_processed)),
            ("events_scheduled", Json::from(self.events_scheduled)),
            ("queue_peak_len", Json::from(self.queue_peak_len)),
            (
                "max_shard_queue_peak",
                Json::from(self.max_shard_queue_peak),
            ),
            ("threads", Json::from(self.threads)),
            (
                "ledger_fingerprint",
                Json::from(self.ledger_fingerprint.as_str()),
            ),
            ("recovery", self.recovery.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_percentiles_are_ordered() {
        let mut m = Metrics::new(SimDuration::from_secs(1));
        for i in 1..=100u64 {
            // Committed at half the confirmation delay: the client-observed
            // distribution excludes the response leg.
            m.record_commit(SimTime::ZERO, SimTime(i * 500_000), SimTime(i * 1_000_000));
        }
        let stats = m.latency();
        assert_eq!(stats.count, 100);
        assert!(stats.p50_ms <= stats.p99_ms);
        assert!(stats.p99_ms <= stats.max_ms);
        assert!((stats.mean_ms - 50.5).abs() < 1.0);
        assert!((stats.max_ms - 100.0).abs() < 1e-9);
        let client = m.client_latency();
        assert_eq!(client.count, 100);
        assert!((client.mean_ms * 2.0 - stats.mean_ms).abs() < 1e-9);
        assert!((client.max_ms - 50.0).abs() < 1e-9);
    }

    #[test]
    fn empty_metrics_are_zeroed() {
        let m = Metrics::new(SimDuration::from_secs(1));
        assert_eq!(m.latency(), LatencyStats::default());
        assert!(m.throughput_series().is_empty());
        assert_eq!(m.committed_txs(), 0);
    }

    #[test]
    fn throughput_series_buckets_commits() {
        let mut m = Metrics::new(SimDuration::from_secs(1));
        // 10 commits in second 0, 20 commits in second 2.
        for _ in 0..10 {
            m.record_commit(SimTime::ZERO, SimTime(400_000_000), SimTime(500_000_000));
        }
        for _ in 0..20 {
            m.record_commit(
                SimTime::ZERO,
                SimTime(2_400_000_000),
                SimTime(2_500_000_000),
            );
        }
        let series = m.throughput_series();
        assert_eq!(series.len(), 3);
        assert!((series[0].tx_per_sec - 10.0).abs() < 1e-9);
        assert!((series[1].tx_per_sec - 0.0).abs() < 1e-9);
        assert!((series[2].tx_per_sec - 20.0).abs() < 1e-9);
    }

    #[test]
    fn merge_folds_samples_buckets_and_counters() {
        let mut a = Metrics::new(SimDuration::from_secs(1));
        a.record_commit(SimTime::ZERO, SimTime(450_000_000), SimTime(500_000_000));
        a.record_block();
        a.record_message(100);
        a.record_mempool(&MempoolStats {
            pending: 3,
            accepted: 10,
            rejected: 2,
            requeued: 1,
            dispatched: 7,
        });
        let mut b = Metrics::new(SimDuration::from_secs(1));
        b.record_commit(
            SimTime::ZERO,
            SimTime(1_400_000_000),
            SimTime(1_500_000_000),
        );
        b.record_commit(
            SimTime::ZERO,
            SimTime(1_500_000_000),
            SimTime(1_600_000_000),
        );
        b.record_message(50);
        b.record_mempool(&MempoolStats {
            pending: 0,
            accepted: 5,
            rejected: 1,
            requeued: 0,
            dispatched: 5,
        });
        a.merge(b);
        assert_eq!(a.committed_txs(), 3);
        assert_eq!(a.latency().count, 3);
        assert_eq!(a.client_latency().count, 3);
        assert_eq!(a.network_counters(), (2, 150));
        assert_eq!(
            a.mempool_totals(),
            MempoolTotals {
                accepted: 15,
                rejected: 3,
                requeued: 1,
                dispatched: 12,
            }
        );
        let series = a.throughput_series();
        assert_eq!(series.len(), 2);
        assert!((series[0].tx_per_sec - 1.0).abs() < 1e-9);
        assert!((series[1].tx_per_sec - 2.0).abs() < 1e-9);
    }

    #[test]
    fn network_counters_accumulate() {
        let mut m = Metrics::new(SimDuration::from_secs(1));
        m.record_message(100);
        m.record_message(250);
        assert_eq!(m.network_counters(), (2, 350));
    }

    #[test]
    fn report_summary_mentions_protocol_and_throughput() {
        let report = RunReport {
            protocol: ProtocolKind::HotStuff,
            nodes: 4,
            byz_nodes: 0,
            duration_secs: 10.0,
            throughput_tx_per_sec: 1234.0,
            latency: LatencyStats::default(),
            client_latency: LatencyStats::default(),
            committed_txs: 12340,
            committed_blocks: 100,
            views_advanced: 120,
            chain_growth_rate: 0.83,
            block_interval: 2.0,
            timeout_view_changes: 0,
            messages_sent: 0,
            bytes_sent: 0,
            throughput_series: vec![],
            safety_violations: 0,
            rejected_messages: 0,
            client_auth_rejections: 0,
            mempool: MempoolTotals::default(),
            pending_txs: 0,
            events_processed: 0,
            events_scheduled: 0,
            queue_peak_len: 0,
            max_shard_queue_peak: 0,
            threads: 1,
            ledger_fingerprint: String::new(),
            recovery: RecoveryReport::default(),
        };
        let s = report.summary();
        assert!(s.contains("HS"));
        assert!(s.contains("1234"));
    }
}

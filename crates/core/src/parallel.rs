//! A bounded std-thread pool for independent simulation jobs.
//!
//! Sweep points are embarrassingly parallel: each [`crate::SimRunner`] is
//! self-contained (own RNG, own replicas, own event queue) and deterministic,
//! so running them concurrently changes nothing about any individual result.
//! [`run_ordered`] executes a batch of closures on a bounded pool of plain
//! `std::thread`s (the workspace takes no external dependencies) and returns
//! the results **in input order**, so JSON artifacts assembled from a
//! parallel sweep are byte-identical to a sequential one.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads [`run_ordered`] uses by default: the machine's
/// available parallelism, leaving the caller's thread free to join.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs every job on a pool of at most `max_workers` threads and returns the
/// results in input order. With one worker (or one job) everything runs on
/// the calling thread — no spawn overhead for the degenerate cases.
///
/// # Panics
///
/// Panics if a job panics (the panic is propagated to the caller).
pub fn run_ordered<T, F>(jobs: Vec<F>, max_workers: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let total = jobs.len();
    let workers = max_workers.max(1).min(total);
    if workers <= 1 {
        return jobs.into_iter().map(|job| job()).collect();
    }

    // Work-stealing by atomic index: jobs are handed out in order, results
    // land in their input slot. `Mutex<Option<F>>` cells let worker threads
    // take `FnOnce` jobs without consuming the vector.
    let jobs: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..total).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= total {
                    break;
                }
                let job = jobs[index]
                    .lock()
                    .expect("job cell poisoned")
                    .take()
                    .expect("each job is taken exactly once");
                let result = job();
                *results[index].lock().expect("result cell poisoned") = Some(result);
            });
        }
    });

    results
        .into_iter()
        .map(|cell| {
            cell.into_inner()
                .expect("result cell poisoned")
                .expect("every job ran")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let jobs: Vec<_> = (0..64u64)
            .map(|i| {
                move || {
                    // Stagger finish order: later jobs finish earlier.
                    std::thread::sleep(std::time::Duration::from_micros(64 - i));
                    i * 2
                }
            })
            .collect();
        let results = run_ordered(jobs, 8);
        assert_eq!(results, (0..64u64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_runs_inline() {
        let results = run_ordered((0..5).map(|i| move || i).collect::<Vec<_>>(), 1);
        assert_eq!(results, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_job_list_is_fine() {
        let results: Vec<u32> = run_ordered(Vec::<fn() -> u32>::new(), 4);
        assert!(results.is_empty());
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }
}
